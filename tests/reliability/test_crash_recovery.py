"""Crash recovery end-to-end: kill workers mid-sweep, resume, compare.

The reliability layer's headline guarantee: a sweep whose workers are
killed outright (``os._exit`` at a trace site — indistinguishable from
``kill -9``) and then resumed from its checkpoint produces results
*and* merged obs counters bit-identical to an uninterrupted serial
run.  These are the paper-table stakes: an interrupted experiment
must never change the numbers.
"""

import pytest

from repro.experiments.parallel import (
    merge_cell_counters,
    solve_cells,
    solve_cells_resilient,
    sweep_cells,
)
from repro.obs import OBS
from repro.reliability import FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


GRID = sweep_cells([10, 14], [0, 1], side=3.2)

#: Kills the worker inside greedy's phase 2 for every seed-1 cell —
#: half the grid dies mid-computation, after partial work.
KILL_PLAN = FaultPlan(
    specs=(FaultSpec(site="greedy.phase2", action="kill", scope="*seed=1*"),)
)


class TestCrashRecovery:
    def test_killed_sweep_resumes_bit_identical(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")

        # The ground truth: uninterrupted, serial, no reliability layer.
        serial = solve_cells(GRID, algorithm="greedy", jobs=1)

        # Interrupted run: two cells die mid-phase-2 (hard os._exit,
        # no cleanup), the other two complete and are journalled.
        crashed = solve_cells_resilient(
            GRID, algorithm="greedy", jobs=2,
            faults=KILL_PLAN, checkpoint=path,
        )
        assert not crashed.ok
        assert {f.kind for f in crashed.failures} == {"crash"}
        assert {f.exitcode for f in crashed.failures} == {137}
        assert [o.ok for o in crashed.outcomes] == [True, False, True, False]

        # Resume without the faults: only the two dead cells re-run.
        resumed = solve_cells_resilient(
            GRID, algorithm="greedy", jobs=2, checkpoint=path, resume=True,
        )
        assert resumed.ok
        assert resumed.resumed == 2

        # Results bit-identical to the uninterrupted serial sweep —
        # including each cell's full counter dict.
        assert resumed.results == serial

        # And the merged obs counters of the whole sweep agree exactly.
        assert merge_cell_counters(resumed.results) == merge_cell_counters(serial)

    def test_double_interruption_still_converges(self, tmp_path):
        """Kill → resume with kills still active → resume clean."""
        path = str(tmp_path / "sweep.jsonl")
        serial = solve_cells(GRID, algorithm="greedy", jobs=1)

        first = solve_cells_resilient(
            GRID, algorithm="greedy", jobs=2, faults=KILL_PLAN, checkpoint=path,
        )
        assert not first.ok
        # Second run resumes *and* still injects: the dead cells die
        # again deterministically, the completed ones are not re-run.
        second = solve_cells_resilient(
            GRID, algorithm="greedy", jobs=2,
            faults=KILL_PLAN, checkpoint=path, resume=True,
        )
        assert not second.ok
        assert second.resumed == 2
        assert [o.ok for o in second.outcomes] == [o.ok for o in first.outcomes]

        final = solve_cells_resilient(
            GRID, algorithm="greedy", jobs=1, checkpoint=path, resume=True,
        )
        assert final.ok
        assert final.results == serial
        assert merge_cell_counters(final.results) == merge_cell_counters(serial)

    def test_jobs_width_invisible_in_resumed_results(self, tmp_path):
        serial = solve_cells(GRID, algorithm="greedy", jobs=1)
        for jobs in (1, 3):
            path = str(tmp_path / f"sweep-{jobs}.jsonl")
            solve_cells_resilient(
                GRID, algorithm="greedy", jobs=jobs,
                faults=KILL_PLAN, checkpoint=path,
            )
            resumed = solve_cells_resilient(
                GRID, algorithm="greedy", jobs=jobs, checkpoint=path, resume=True,
            )
            assert resumed.results == serial
