"""The ``sweep`` CLI mode and the experiments-mode reliability flags."""

import json

import pytest

from repro.cli import main
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def sweep(*extra):
    return main(["sweep", "--ns", "10,12", "--seeds", "0:2", *extra])


class TestSweepMode:
    def test_basic_grid(self, capsys):
        assert sweep() == 0
        out = capsys.readouterr().out
        assert "sweep: greedy" in out
        assert "4/4 cell(s) ok" in out

    def test_jobs_output_identical_to_serial(self, capsys):
        assert sweep() == 0
        serial = capsys.readouterr().out
        assert sweep("--jobs", "2") == 0
        assert capsys.readouterr().out == serial

    def test_checkpoint_resume_reprints_same_table(self, tmp_path, capsys):
        path = str(tmp_path / "c.jsonl")
        assert sweep("--checkpoint", path) == 0
        first = capsys.readouterr().out
        assert sweep("--checkpoint", path, "--resume") == 0
        resumed = capsys.readouterr().out

        def table(text):
            return [ln for ln in text.splitlines() if ln and "cell(s)" not in ln]

        assert table(resumed) == table(first)
        assert "(4 resumed" in resumed

    @pytest.mark.parametrize("kernel", ["bitset", "array"])
    def test_kernel_pinning(self, kernel, capsys):
        assert sweep("--algorithm", "waf", "--kernel", kernel) == 0
        assert f"kernel={kernel}" in capsys.readouterr().out

    def test_inject_fault_fails_matching_cells_only(self, capsys):
        code = sweep(
            "--inject-fault", "site=greedy.phase2;action=raise;scope=*seed=1*"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "2/4 cell(s) ok" in captured.out
        assert "2 of 4 cell(s) failed" in captured.err
        assert "InjectedFault" in captured.err

    def test_trace_reports_merged_and_reliability_counters(self, capsys):
        assert sweep("--trace") == 0
        out = capsys.readouterr().out
        assert "reliability.cells.completed" in out
        assert "mis.selected" in out  # per-cell solver counters merged

    def test_stats_out_writes_record(self, tmp_path, capsys):
        path = tmp_path / "rec.json"
        assert sweep("--stats-out", str(path)) == 0
        record = json.loads(path.read_text())
        assert record["algorithm"] == "sweep:greedy"
        assert record["instance"]["cells"] == 4
        assert record["results"]["ok"] == 4

    def test_resume_requires_checkpoint(self, capsys):
        assert sweep("--resume") == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_bad_grid_spec(self, capsys):
        assert main(["sweep", "--ns", "abc"]) == 2
        assert "--ns" in capsys.readouterr().err

    def test_bad_fault_spec(self, capsys):
        assert sweep("--inject-fault", "action=raise") == 2
        assert "site" in capsys.readouterr().err

    def test_checkpoint_grid_mismatch(self, tmp_path, capsys):
        path = str(tmp_path / "c.jsonl")
        assert sweep("--checkpoint", path) == 0
        capsys.readouterr()
        code = main(
            ["sweep", "--ns", "10", "--seeds", "0",
             "--checkpoint", path, "--resume"]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err


class TestExperimentsReliabilityFlags:
    CHEAP = ["F1F2", "T6"]

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        path = str(tmp_path / "exps.jsonl")
        assert main([*self.CHEAP, "--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert main([*self.CHEAP, "--checkpoint", path, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "all 2 experiment(s) passed" in first
        # Resumed run replays the journalled tables byte-identically.
        assert [
            ln for ln in resumed.splitlines() if ln.startswith(("==", "["))
        ] == [ln for ln in first.splitlines() if ln.startswith(("==", "["))]

    def test_resilient_output_matches_plain_run(self, capsys):
        assert main(self.CHEAP) == 0
        plain = capsys.readouterr().out
        assert main([*self.CHEAP, "--retries", "1"]) == 0
        assert capsys.readouterr().out == plain

    def test_injected_fault_isolates_one_experiment(self, capsys):
        code = main(
            [*self.CHEAP, "--jobs", "2",
             "--inject-fault", "site=*;action=raise;scope=*T6*"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "[F1F2]" in captured.out  # the healthy experiment completed
        assert "1 of 2 cell(s) failed" in captured.err

    def test_resume_requires_checkpoint(self, capsys):
        assert main([*self.CHEAP, "--resume"]) == 2
