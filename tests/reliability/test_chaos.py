"""Chaos suite: seeded faults across solvers and kernels.

Every cell of a chaotic sweep must end in exactly one of
``{result, CellFailure}`` — never both, never neither, never a hung or
crashed sweep — and the ``reliability.*`` counters must replay exactly
per fault seed.  The quick drills below run in CI on every push; the
long soak is ``@pytest.mark.slow`` (the repo's scaling-tier lane).
"""

import pytest

from repro.experiments.parallel import solve_cells_resilient, sweep_cells
from repro.obs import OBS
from repro.reliability import FAILURE_KINDS, FaultPlan, FaultSpec, RetryPolicy


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


GRID = sweep_cells([10, 13], [0, 1], side=3.2)

#: Solver × kernel combinations under chaos (kernel=None for the
#: non-kernelized steiner solver; waf/greedy pin both kernels).
COMBOS = [
    ("waf", "indexed"),
    ("waf", "bitset"),
    ("greedy", "indexed"),
    ("greedy", "bitset"),
    ("steiner", None),
]

#: A mixed storm: partial-rate raises anywhere, plus deterministic
#: kills of one cell's UDG build.
STORM = FaultPlan(
    seed=42,
    specs=(
        FaultSpec(site="*", action="raise", rate=0.08),
        FaultSpec(site="udg.grid.build", action="kill", scope="*n=13*seed=1*"),
    ),
)


def run_chaos(algorithm, kernel, plan, jobs=2, retries=0):
    return solve_cells_resilient(
        GRID, algorithm=algorithm, jobs=jobs, kernel=kernel,
        faults=plan, policy=RetryPolicy(retries=retries, seed=plan.seed),
    )


def outcome_signature(report):
    """What must replay exactly: per-cell fate + failure classification."""
    return [
        (o.key, o.ok, o.attempts,
         None if o.ok else (o.failure.kind, o.failure.error_type))
        for o in report.outcomes
    ]


class TestChaosInvariants:
    @pytest.mark.parametrize("algorithm,kernel", COMBOS)
    def test_every_cell_ends_in_exactly_one_state(self, algorithm, kernel):
        report = run_chaos(algorithm, kernel, STORM)
        assert len(report.outcomes) == len(GRID)
        for outcome in report.outcomes:
            has_result = outcome.result is not None
            has_failure = outcome.failure is not None
            assert has_result != has_failure  # exactly one of the two
            assert outcome.attempts >= 1
            if has_failure:
                assert outcome.failure.kind in FAILURE_KINDS
        # The kill spec guarantees at least one crash in every combo.
        assert any(f.kind == "crash" for f in report.failures)

    @pytest.mark.parametrize("algorithm,kernel", COMBOS[:2] + COMBOS[-1:])
    def test_outcomes_deterministic_per_seed(self, algorithm, kernel):
        first = run_chaos(algorithm, kernel, STORM, jobs=2)
        again = run_chaos(algorithm, kernel, STORM, jobs=1)  # width invisible
        assert outcome_signature(first) == outcome_signature(again)
        assert first.results == again.results

    def test_different_seed_different_storm(self):
        a = run_chaos("greedy", "indexed", STORM)
        b = run_chaos(
            "greedy", "indexed",
            FaultPlan(seed=43, specs=STORM.specs),
        )
        assert outcome_signature(a) != outcome_signature(b)

    def test_reliability_counters_deterministic_per_seed(self):
        def counters_for(run):
            OBS.reset()
            OBS.enable()
            run()
            counters = OBS.counters()
            OBS.disable()
            return {
                name: value
                for name, value in counters.items()
                if name.startswith("reliability.")
            }

        first = counters_for(
            lambda: run_chaos("greedy", "indexed", STORM, jobs=2, retries=1)
        )
        again = counters_for(
            lambda: run_chaos("greedy", "indexed", STORM, jobs=1, retries=1)
        )
        assert first == again
        assert first["reliability.failures"] == first.get(
            "reliability.failures.exception", 0
        ) + first.get("reliability.failures.crash", 0) + first.get(
            "reliability.failures.timeout", 0
        )

    def test_surviving_results_match_clean_run(self):
        clean = solve_cells_resilient(GRID, algorithm="greedy", kernel="indexed")
        chaotic = run_chaos("greedy", "indexed", STORM)
        clean_by_key = {o.key: o.result for o in clean.outcomes}
        for outcome in chaotic.outcomes:
            if outcome.ok:
                assert outcome.result == clean_by_key[outcome.key]


@pytest.mark.slow
class TestChaosSoak:
    """Long-running storm across a larger grid and every combo."""

    SOAK_GRID = sweep_cells([20, 30, 40], [0, 1, 2], side=None)

    @pytest.mark.parametrize("algorithm,kernel", COMBOS)
    def test_soak_storm_replays_exactly(self, algorithm, kernel):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(site="*", action="raise", rate=0.05),
                FaultSpec(site="mis.first_fit", action="kill", scope="*seed=2*"),
                FaultSpec(site="*.phase2", action="raise", rate=0.3),
            ),
        )

        def run():
            return solve_cells_resilient(
                self.SOAK_GRID, algorithm=algorithm, jobs=4, kernel=kernel,
                faults=plan, policy=RetryPolicy(retries=2, seed=plan.seed),
            )

        first, again = run(), run()
        assert outcome_signature(first) == outcome_signature(again)
        assert first.results == again.results
        assert first.retries == again.retries
        for outcome in first.outcomes:
            assert (outcome.result is None) != (outcome.failure is None)
