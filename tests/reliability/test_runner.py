"""run_cells: fault isolation, retries, timeouts, resume — the contract."""

import time

import pytest

from repro.obs import OBS
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    run_cells,
)


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def double(x):
    return x * 2


def fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x * 2


def sleep_on_two(x):
    if x == 2:
        time.sleep(5.0)
    return x


_FLAKY_CALLS = {"count": 0}


def flaky_twice(x):
    """Fails the first two calls, then succeeds (inline engine only)."""
    _FLAKY_CALLS["count"] += 1
    if _FLAKY_CALLS["count"] <= 2:
        raise RuntimeError("transient")
    return x


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)

    def test_delay_schedule_is_deterministic_and_exponential(self):
        policy = RetryPolicy(retries=3, backoff=0.1, seed=5)
        d1, d2 = policy.delay("cell", 1), policy.delay("cell", 2)
        assert policy.delay("cell", 1) == d1  # replays exactly
        assert 0.05 <= d1 < 0.15  # base * jitter in [0.5, 1.5)
        assert 0.10 <= d2 < 0.30  # doubled
        assert policy.delay("other-cell", 1) != d1

    def test_zero_backoff_means_no_delay(self):
        assert RetryPolicy(retries=2).delay("cell", 1) == 0.0


class TestIsolatedEngine:
    def test_results_in_input_order(self):
        report = run_cells(double, [3, 1, 2], jobs=2)
        assert report.ok
        assert report.results == [6, 2, 4]
        assert [o.attempts for o in report.outcomes] == [1, 1, 1]

    def test_empty_grid(self):
        report = run_cells(double, [])
        assert report.ok and report.outcomes == []

    def test_exception_fails_only_that_cell(self):
        report = run_cells(fail_on_odd, [0, 1, 2, 3], jobs=2)
        assert not report.ok
        assert [o.ok for o in report.outcomes] == [True, False, True, False]
        assert report.results == [0, 4]
        (f1, f3) = report.failures
        assert f1.kind == "exception" and f1.error_type == "ValueError"
        assert "odd input 1" in f1.message
        assert "fail_on_odd" in f1.traceback  # worker-side traceback crossed
        assert "1 attempt(s)" in report.render_failures()

    def test_timeout_kills_overdue_worker(self):
        t0 = time.monotonic()
        report = run_cells(
            sleep_on_two, [1, 2, 3], jobs=3, policy=RetryPolicy(timeout=0.5)
        )
        assert time.monotonic() - t0 < 4.0  # did not wait out the sleep
        assert [o.ok for o in report.outcomes] == [True, False, True]
        assert report.failures[0].kind == "timeout"

    def test_kill_fault_recorded_as_crash(self):
        plan = FaultPlan(specs=(FaultSpec(site="boom", action="kill"),))
        report = run_cells(_traced_boom, [1, 2], jobs=2, faults=plan)
        assert not report.ok
        assert {f.kind for f in report.failures} == {"crash"}
        assert {f.exitcode for f in report.failures} == {137}

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate cell key"):
            run_cells(double, [1, 1])

    def test_retries_recover_scoped_faults(self):
        # The fault fires only on the first occurrence of the site per
        # attempt-injector, so a retried cell succeeds.
        plan = FaultPlan(
            specs=(FaultSpec(site="boom", action="raise", scope="*2*", max_fires=1),)
        )
        clean = run_cells(_traced_boom, [1, 2, 3], faults=None)
        report = run_cells(
            _traced_boom, [1, 2, 3], jobs=2, faults=plan, policy=RetryPolicy(retries=1)
        )
        # max_fires counts per injector and each attempt gets a fresh
        # injector, so the fault fires again: the cell stays failed but
        # the retry was attempted and counted.
        assert report.retries == 1
        assert report.outcomes[1].attempts == 2
        assert [o.result for o in report.outcomes if o.ok] == [
            o.result for o in clean.outcomes if o.item != 2
        ]


def _traced_boom(x):
    from repro.obs import OBS

    with OBS.time("boom"):
        return x * 10


class TestInlineEngine:
    def test_matches_isolated_semantics(self):
        isolated = run_cells(fail_on_odd, [0, 1, 2, 3], jobs=2)
        inline = run_cells(fail_on_odd, [0, 1, 2, 3], isolate=False)
        assert [o.ok for o in inline.outcomes] == [o.ok for o in isolated.outcomes]
        assert inline.results == isolated.results

    def test_retry_until_success(self):
        _FLAKY_CALLS["count"] = 0
        report = run_cells(
            flaky_twice, [7], isolate=False, policy=RetryPolicy(retries=3)
        )
        assert report.ok and report.results == [7]
        assert report.retries == 2
        assert report.outcomes[0].attempts == 3

    def test_rejects_timeout_without_isolation(self):
        with pytest.raises(ValueError, match="isolate=True"):
            run_cells(double, [1], isolate=False, policy=RetryPolicy(timeout=1.0))

    def test_rejects_kill_plans_without_isolation(self):
        plan = FaultPlan(specs=(FaultSpec(site="*", action="kill"),))
        with pytest.raises(ValueError, match="isolate=True"):
            run_cells(double, [1], isolate=False, faults=plan)


class TestCheckpointIntegration:
    def test_journal_then_resume_runs_only_missing(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        plan = FaultPlan(specs=(FaultSpec(site="boom", action="raise", scope="*2*"),))
        first = run_cells(_traced_boom, [1, 2, 3], faults=plan, checkpoint=path)
        assert [o.ok for o in first.outcomes] == [True, False, True]
        resumed = run_cells(_traced_boom, [1, 2, 3], checkpoint=path, resume=True)
        assert resumed.ok
        assert resumed.results == [10, 20, 30]
        assert [o.resumed for o in resumed.outcomes] == [True, False, True]
        assert resumed.resumed == 2

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.jsonl")
        report = run_cells(double, [1, 2], checkpoint=path, resume=True)
        assert report.ok and report.resumed == 0

    def test_resume_wrong_grid_refused(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        run_cells(double, [1, 2], checkpoint=path)
        with pytest.raises(ValueError, match="does not match"):
            run_cells(double, [1, 2, 3], checkpoint=path, resume=True)

    def test_encode_decode_round_trip(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        run_cells(
            double, [1, 2], checkpoint=path,
            encode=lambda r: {"doubled": r},
        )
        resumed = run_cells(
            double, [1, 2], checkpoint=path, resume=True,
            decode=lambda payload: payload["doubled"],
        )
        assert resumed.results == [2, 4] and resumed.resumed == 2


class TestObsEmission:
    def test_counters_and_notes_when_enabled(self):
        from repro.obs.events import EventLog

        OBS.reset()
        OBS.enable()
        log = EventLog(OBS)
        OBS.add_hook(log)
        try:
            report = run_cells(
                fail_on_odd, [0, 1, 2, 3], isolate=False,
                policy=RetryPolicy(retries=1),
            )
        finally:
            OBS.remove_hook(log)
        counters = OBS.counters()
        assert counters["reliability.cells.completed"] == 2
        assert counters["reliability.failures"] == 2
        assert counters["reliability.failures.exception"] == 2
        assert counters["reliability.retries"] == 2
        notes = [e for e in log.events if e["type"] == "note"]
        assert {n["name"] for n in notes} == {
            "reliability.retry", "reliability.failure",
        }
        failure_notes = [n for n in notes if n["name"] == "reliability.failure"]
        assert {n["data"]["kind"] for n in failure_notes} == {"exception"}
        assert not report.ok

    def test_silent_when_disabled(self):
        run_cells(fail_on_odd, [0, 1], isolate=False)
        assert "reliability.failures" not in OBS.counters()

    def test_resumed_counter(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        run_cells(double, [1, 2], checkpoint=path)
        OBS.reset()
        OBS.enable()
        run_cells(double, [1, 2], checkpoint=path, resume=True)
        assert OBS.counters()["reliability.cells.resumed"] == 2
