"""Deterministic fault injection: every decision replays exactly."""

import pytest

from repro.obs import Registry
from repro.reliability import (
    FAULT_ACTIONS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    det_unit,
    parse_fault_spec,
)


class TestDetUnit:
    def test_range_and_determinism(self):
        values = [det_unit(seed, "scope", "site", i) for seed in (0, 1, 7) for i in range(50)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert det_unit(3, "a", "b", 0) == det_unit(3, "a", "b", 0)

    def test_sensitive_to_every_part(self):
        base = det_unit(0, "cell", "waf.phase1", 0)
        assert det_unit(1, "cell", "waf.phase1", 0) != base
        assert det_unit(0, "other", "waf.phase1", 0) != base
        assert det_unit(0, "cell", "waf.phase2", 0) != base
        assert det_unit(0, "cell", "waf.phase1", 1) != base

    def test_roughly_uniform(self):
        hits = sum(det_unit(0, "u", i) < 0.3 for i in range(1000))
        assert 200 < hits < 400


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="delay", delay=-1.0)

    def test_actions_closed_set(self):
        assert set(FAULT_ACTIONS) == {"raise", "delay", "kill"}

    def test_has_kill(self):
        assert FaultPlan(specs=(FaultSpec(site="*", action="kill"),)).has_kill
        assert not FaultPlan(specs=(FaultSpec(site="*", action="raise"),)).has_kill


class TestParseFaultSpec:
    def test_full_form(self):
        spec = parse_fault_spec(
            "site=greedy.phase2;action=kill;scope=*seed=1*;rate=0.5;"
            "at=0,2;delay=0.1;max_fires=3"
        )
        assert spec == FaultSpec(
            site="greedy.phase2", action="kill", scope="*seed=1*",
            rate=0.5, at=(0, 2), delay=0.1, max_fires=3,
        )

    def test_minimal_form(self):
        spec = parse_fault_spec("site=waf.*;action=raise")
        assert spec.site == "waf.*" and spec.action == "raise"
        assert spec.rate == 1.0 and spec.scope == "*"

    def test_scope_value_may_contain_equals(self):
        assert parse_fault_spec("site=x;action=raise;scope=*seed=3*").scope == "*seed=3*"

    @pytest.mark.parametrize(
        "text",
        ["", "action=raise", "site=x;action=raise;bogus=1", "site=x;action=raise;rate=no"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)


def _trace(injector: FaultInjector, names: list[str]) -> list:
    """Drive the injector through a span-name sequence, collecting fires."""
    reg = Registry(enabled=True)
    reg.add_hook(injector)
    for name in names:
        try:
            with reg.time(name):
                pass
        except InjectedFault:
            pass
    return list(injector.fired)


class TestFaultInjector:
    NAMES = ["udg.grid.build", "waf.phase1", "waf.phase2", "waf.phase1"]

    def test_site_pattern_matching(self):
        plan = FaultPlan(specs=(FaultSpec(site="waf.*", action="raise"),))
        fired = _trace(plan.injector("cell"), self.NAMES)
        assert [f[0] for f in fired] == ["waf.phase1", "waf.phase2", "waf.phase1"]

    def test_scope_restricts_cells(self):
        plan = FaultPlan(specs=(FaultSpec(site="*", action="raise", scope="*seed=1*"),))
        assert _trace(plan.injector("n=10;seed=1"), self.NAMES)
        assert not _trace(plan.injector("n=10;seed=2"), self.NAMES)

    def test_at_selects_occurrences(self):
        plan = FaultPlan(specs=(FaultSpec(site="waf.phase1", action="raise", at=(1,)),))
        fired = _trace(plan.injector("c"), self.NAMES)
        assert fired == [("waf.phase1", 1, "raise")]

    def test_max_fires_caps_hits(self):
        plan = FaultPlan(specs=(FaultSpec(site="*", action="raise", max_fires=2),))
        assert len(_trace(plan.injector("c"), self.NAMES)) == 2

    def test_raise_action_raises(self):
        reg = Registry(enabled=True)
        plan = FaultPlan(specs=(FaultSpec(site="boom", action="raise"),))
        reg.add_hook(plan.injector("c"))
        with pytest.raises(InjectedFault):
            with reg.time("boom"):
                pass

    def test_rate_decisions_replay_exactly(self):
        plan = FaultPlan(seed=11, specs=(FaultSpec(site="*", action="raise", rate=0.4),))
        names = [f"site.{i % 3}" for i in range(60)]
        first = _trace(plan.injector("cell-A"), names)
        again = _trace(plan.injector("cell-A"), names)
        assert first == again
        assert 0 < len(first) < len(names)  # partial, not all-or-nothing

    def test_cells_fail_independently(self):
        plan = FaultPlan(seed=11, specs=(FaultSpec(site="*", action="raise", rate=0.4),))
        names = [f"site.{i}" for i in range(40)]
        assert _trace(plan.injector("cell-A"), names) != _trace(
            plan.injector("cell-B"), names
        )

    def test_seed_changes_decisions(self):
        names = [f"site.{i}" for i in range(40)]
        fired = [
            _trace(
                FaultPlan(
                    seed=seed, specs=(FaultSpec(site="*", action="raise", rate=0.5),)
                ).injector("c"),
                names,
            )
            for seed in (0, 1)
        ]
        assert fired[0] != fired[1]

    def test_fresh_injector_resets_occurrences(self):
        plan = FaultPlan(specs=(FaultSpec(site="waf.phase1", action="raise", at=(0,)),))
        assert _trace(plan.injector("c"), self.NAMES) == _trace(
            plan.injector("c"), self.NAMES
        )
