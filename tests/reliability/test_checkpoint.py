"""The checkpoint ledger: durable, schema-checked, crash-tolerant."""

import json

import pytest

from repro.reliability import (
    CHECKPOINT_SCHEMA_ID,
    CellFailure,
    CheckpointWriter,
    grid_fingerprint,
    read_checkpoint,
    repair_trailing_line,
    validate_checkpoint_lines,
)

KEYS = ["n=10;seed=0", "n=10;seed=1", "n=20;seed=0"]


def write_ledger(path, cells=2, label="sweep"):
    with CheckpointWriter(path, keys=KEYS, label=label) as writer:
        for key in KEYS[:cells]:
            writer.record_cell(key, {"value": key}, attempts=1)
    return path


class TestGridFingerprint:
    def test_stable(self):
        assert grid_fingerprint(KEYS, "a") == grid_fingerprint(list(KEYS), "a")

    def test_sensitive_to_label_keys_and_order(self):
        base = grid_fingerprint(KEYS, "a")
        assert grid_fingerprint(KEYS, "b") != base
        assert grid_fingerprint(KEYS[:2], "a") != base
        assert grid_fingerprint(list(reversed(KEYS)), "a") != base


class TestWriterAndReader:
    def test_round_trip(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        ledger = read_checkpoint(path)
        assert ledger.header["schema"] == CHECKPOINT_SCHEMA_ID
        assert ledger.label == "sweep"
        assert ledger.fingerprint == grid_fingerprint(KEYS, "sweep")
        assert set(ledger.cells) == set(KEYS[:2])
        assert ledger.result(KEYS[0]) == {"value": KEYS[0]}
        assert ledger.attempts(KEYS[0]) == 1
        assert not ledger.truncated

    def test_missing_is_resume_set_in_grid_order(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl", cells=1)
        assert read_checkpoint(path).missing(KEYS) == KEYS[1:]

    def test_check_grid_refuses_other_sweep(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        ledger = read_checkpoint(path)
        ledger.check_grid(KEYS, "sweep")  # matching grid: fine
        with pytest.raises(ValueError, match="does not match"):
            ledger.check_grid(KEYS, "other-label")
        with pytest.raises(ValueError, match="does not match"):
            ledger.check_grid(KEYS + ["n=30;seed=0"], "sweep")

    def test_failures_recorded_and_read_back(self, tmp_path):
        path = tmp_path / "c.jsonl"
        failure = CellFailure(
            key=KEYS[0], kind="timeout", attempts=2,
            error_type="TimeoutError", message="too slow",
        )
        with CheckpointWriter(path, keys=KEYS, label="sweep") as writer:
            writer.record_failure(failure)
        ledger = read_checkpoint(path)
        assert ledger.failures == [failure]
        assert ledger.missing(KEYS) == KEYS  # failures re-run on resume

    def test_resume_mode_appends_marker(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl", cells=1)
        with CheckpointWriter(
            path, keys=KEYS, label="sweep", resume=True, completed=1
        ) as writer:
            writer.record_cell(KEYS[1], {"value": KEYS[1]}, attempts=1)
        ledger = read_checkpoint(path)
        assert ledger.resumes == 1
        assert set(ledger.cells) == set(KEYS[:2])

    def test_fresh_mode_truncates_existing(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        with CheckpointWriter(path, keys=KEYS, label="sweep"):
            pass
        assert read_checkpoint(path).cells == {}


class TestCrashTolerance:
    def test_partial_trailing_line_dropped(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        complete = read_checkpoint(path)
        with open(path, "a") as fh:
            fh.write('{"type": "cell", "key": "n=20;se')  # mid-write kill
        ledger = read_checkpoint(path)
        assert ledger.truncated
        assert ledger.cells == complete.cells

    def test_repair_truncates_partial_tail(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        size = path.stat().st_size
        with open(path, "a") as fh:
            fh.write('{"type": "cel')
        assert repair_trailing_line(path)
        assert path.stat().st_size == size
        assert not read_checkpoint(path).truncated

    def test_repair_noop_on_clean_file(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        assert not repair_trailing_line(path)

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl")
        lines = path.read_text().splitlines()
        lines[1] = "NOT JSON"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_checkpoint(path)

    def test_duplicate_cell_key_raises(self, tmp_path):
        path = write_ledger(tmp_path / "c.jsonl", cells=1)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(ValueError, match="duplicate key"):
            read_checkpoint(path)


class TestValidation:
    def header(self):
        return {
            "schema": CHECKPOINT_SCHEMA_ID, "type": "sweep",
            "label": "s", "fingerprint": "f", "cells": 3,
        }

    def test_clean_lines_pass(self):
        lines = [
            self.header(),
            {"type": "cell", "key": "a", "attempts": 1, "result": 1},
            {"type": "resume", "completed": 1},
        ]
        assert validate_checkpoint_lines(lines) == []

    def test_empty_and_headerless(self):
        assert validate_checkpoint_lines([]) != []
        assert any(
            "header" in e
            for e in validate_checkpoint_lines([{"type": "cell", "key": "a"}])
        )

    def test_wrong_schema(self):
        header = dict(self.header(), schema="something/v9")
        assert any("schema" in e for e in validate_checkpoint_lines([header]))

    def test_cell_shape_violations(self):
        bad = [
            {"type": "cell", "attempts": 1, "result": 1},  # no key
            {"type": "cell", "key": "a", "result": 1},  # no attempts
            {"type": "cell", "key": "b", "attempts": 0, "result": 1},
            {"type": "cell", "key": "c", "attempts": 1},  # no result
            {"type": "wat"},
        ]
        errors = validate_checkpoint_lines([self.header()] + bad)
        assert len(errors) == len(bad)
