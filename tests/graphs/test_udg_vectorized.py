"""The vectorized UDG builder must be bit-identical to the grid builder.

``unit_disk_graph_vectorized`` replays the grid builder's exact edge
emission order from numpy-discovered candidate pairs, so the resulting
graphs match *including insertion order* — node order, edge order, and
every per-node adjacency list.  That is the property these tests pin,
as a hypothesis property over arbitrary point clouds plus seeded
uniform deployments on both accel paths, with the kdtree fast path
skip-marked when scipy is absent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import _optional
from repro._optional import MissingDependencyError
from repro.geometry import Point
from repro.graphs.udg import (
    GRID_SMALL_N,
    GRID_VECTOR_N,
    unit_disk_graph,
    unit_disk_graph_naive,
    unit_disk_graph_vectorized,
)
from repro.graphs.generators import uniform_points
from repro.obs import OBS

HAVE_SCIPY = _optional.optional_module("scipy.spatial") is not None

coords = st.floats(min_value=0.0, max_value=9.0, allow_nan=False)
point_lists = st.lists(
    st.builds(Point, coords, coords), min_size=0, max_size=70, unique=True
)


def assert_same_graph_ordered(a, b):
    """Equality including every insertion order the builders produce."""
    assert list(a.nodes()) == list(b.nodes())
    assert a.edges() == b.edges()
    for v in a.nodes():
        assert a.neighbors(v) == b.neighbors(v)


class TestGridEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(point_lists)
    def test_matches_grid_builder_hypothesis(self, pts):
        grid = unit_disk_graph(pts)
        vector = unit_disk_graph_vectorized(pts, accel="numpy")
        assert_same_graph_ordered(grid, vector)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("radius", (1.0, 1.7))
    def test_matches_grid_builder_uniform(self, seed, radius):
        import random

        pts = uniform_points(320, 11.0, random.Random(seed))
        grid = unit_disk_graph(pts, radius=radius)
        vector = unit_disk_graph_vectorized(pts, radius=radius, accel="numpy")
        assert_same_graph_ordered(grid, vector)

    def test_exact_boundary_distances(self):
        # Integer grid points sit at exactly radius 1.0 from their
        # axis neighbors: the boundary tolerance must agree everywhere.
        pts = [Point(float(x), float(y)) for x in range(9) for y in range(7)]
        assert len(pts) > GRID_SMALL_N
        grid = unit_disk_graph(pts)
        vector = unit_disk_graph_vectorized(pts, accel="numpy")
        assert_same_graph_ordered(grid, vector)
        assert grid.edge_count() == 9 * 6 + 8 * 7  # rook moves only

    def test_matches_naive_builder(self):
        import random

        pts = uniform_points(120, 6.0, random.Random(3))
        naive = unit_disk_graph_naive(pts)
        vector = unit_disk_graph_vectorized(pts, accel="numpy")
        assert {frozenset(e) for e in naive.edges()} == {
            frozenset(e) for e in vector.edges()
        }

    def test_default_builder_dispatches_at_vector_n(self, monkeypatch):
        # Above GRID_VECTOR_N, unit_disk_graph IS the vectorized path.
        import repro.graphs.udg as udg

        monkeypatch.setattr(udg, "GRID_VECTOR_N", 64)
        import random

        pts = uniform_points(100, 6.0, random.Random(1))
        assert_same_graph_ordered(
            unit_disk_graph(pts), unit_disk_graph_vectorized(pts)
        )
        assert GRID_VECTOR_N == 20000  # the committed threshold


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")
class TestKDTreePath:
    @pytest.mark.parametrize("seed", range(4))
    def test_kdtree_matches_numpy_path(self, seed):
        import random

        pts = uniform_points(280, 10.0, random.Random(50 + seed))
        a = unit_disk_graph_vectorized(pts, accel="numpy")
        b = unit_disk_graph_vectorized(pts, accel="kdtree")
        assert_same_graph_ordered(a, b)

    def test_counters_identical_across_paths(self):
        import random

        pts = uniform_points(200, 8.0, random.Random(9))
        with OBS.capture() as reg:
            unit_disk_graph_vectorized(pts, accel="numpy")
            numpy_counters = dict(reg.counters())
        with OBS.capture() as reg:
            unit_disk_graph_vectorized(pts, accel="kdtree")
            kdtree_counters = dict(reg.counters())
        assert numpy_counters == kdtree_counters
        assert numpy_counters.get("udg.vector.pairs_tested", 0) > 0
        assert numpy_counters.get("udg.vector.edges_emitted", 0) > 0


class TestValidationAndGating:
    def test_unknown_accel_rejected(self):
        with pytest.raises(ValueError, match="unknown accel"):
            unit_disk_graph_vectorized([Point(0, 0)], accel="gpu")

    def test_duplicate_points_rejected(self):
        pts = [Point(1.0, 2.0), Point(1.0, 2.0)]
        with pytest.raises(ValueError, match="duplicate"):
            unit_disk_graph_vectorized(pts)

    def test_kdtree_without_scipy_raises_missing_dependency(self, monkeypatch):
        monkeypatch.setitem(_optional._CACHE, "scipy.spatial", None)
        pts = [Point(float(i), 0.0) for i in range(GRID_SMALL_N + 1)]
        with pytest.raises(MissingDependencyError, match="scipy"):
            unit_disk_graph_vectorized(pts, accel="kdtree")

    def test_auto_without_scipy_degrades_to_numpy(self, monkeypatch):
        monkeypatch.setitem(_optional._CACHE, "scipy.spatial", None)
        import random

        pts = uniform_points(150, 7.0, random.Random(4))
        grid = unit_disk_graph(pts)
        vector = unit_disk_graph_vectorized(pts, accel="auto")
        assert_same_graph_ordered(grid, vector)

    def test_empty_and_single(self):
        assert len(unit_disk_graph_vectorized([])) == 0
        g = unit_disk_graph_vectorized([Point(2.0, 3.0)])
        assert list(g.nodes()) == [Point(2.0, 3.0)]
        assert g.edge_count() == 0

    def test_nonpositive_radius(self):
        pts = [Point(0.0, 0.0), Point(0.5, 0.0)]
        g = unit_disk_graph_vectorized(pts, radius=0.0)
        assert g.edge_count() == 0
        assert list(g.nodes()) == pts
