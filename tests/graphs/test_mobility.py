"""Tests for the mobility models and position-driven maintenance."""

import pytest

from repro.cds import DynamicCDS
from repro.geometry import Point
from repro.graphs import random_connected_udg, unit_disk_graph
from repro.graphs.mobility import RandomWalk, RandomWaypoint, topology_events


def start_positions(n=12, side=4.0, seed=0):
    import random

    rng = random.Random(seed)
    return {
        i: Point(rng.uniform(0, side), rng.uniform(0, side)) for i in range(n)
    }


class TestRandomWaypoint:
    def test_stays_in_field(self):
        model = RandomWaypoint(start_positions(), side=4.0, seed=1)
        for snap in model.snapshots(50):
            for p in snap.values():
                assert 0.0 <= p.x <= 4.0 and 0.0 <= p.y <= 4.0

    def test_deterministic(self):
        a = RandomWaypoint(start_positions(), side=4.0, seed=2)
        b = RandomWaypoint(start_positions(), side=4.0, seed=2)
        for snap_a, snap_b in zip(a.snapshots(20), b.snapshots(20)):
            assert snap_a == snap_b

    def test_nodes_actually_move(self):
        model = RandomWaypoint(start_positions(), side=4.0, seed=3)
        first = dict(model.positions)
        for _ in model.snapshots(30):
            pass
        moved = sum(1 for n in first if first[n] != model.positions[n])
        assert moved >= len(first) // 2

    def test_speed_bound_respected(self):
        model = RandomWaypoint(
            start_positions(), side=4.0, speed_range=(0.1, 0.2), seed=4
        )
        prev = dict(model.positions)
        for snap in model.snapshots(25):
            for node in snap:
                assert prev[node].distance_to(snap[node]) <= 0.2 + 1e-9
            prev = snap

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RandomWaypoint(start_positions(), side=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(start_positions(), side=4.0, speed_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            RandomWaypoint({0: Point(9, 9)}, side=4.0)


class TestRandomWalk:
    def test_stays_in_field(self):
        model = RandomWalk(start_positions(), side=4.0, seed=5)
        for snap in model.snapshots(60):
            for p in snap.values():
                assert 0.0 <= p.x <= 4.0 and 0.0 <= p.y <= 4.0

    def test_step_size_respected(self):
        model = RandomWalk(start_positions(), side=4.0, step_size=0.15, seed=6)
        prev = dict(model.positions)
        for snap in model.snapshots(20):
            for node in snap:
                # Reflection can shorten but never lengthen a step.
                assert prev[node].distance_to(snap[node]) <= 0.15 + 1e-9
            prev = snap

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            RandomWalk(start_positions(), side=4.0, step_size=0.0)


class TestTopologyEvents:
    def test_detects_appearance_and_disappearance(self):
        before = {0: Point(0, 0), 1: Point(2, 0), 2: Point(0.5, 0)}
        after = {0: Point(0, 0), 1: Point(0.9, 0), 2: Point(5, 0)}
        appeared, disappeared = topology_events(before, after)
        assert (0, 1) in appeared
        assert (0, 2) in disappeared

    def test_no_change(self):
        snap = {0: Point(0, 0), 1: Point(0.5, 0)}
        assert topology_events(snap, snap) == ([], [])

    def test_mismatched_nodes_rejected(self):
        with pytest.raises(ValueError):
            topology_events({0: Point(0, 0)}, {1: Point(0, 0)})


class TestMoveNode:
    def test_move_keeps_cds_valid(self, small_udg):
        pts, g = small_udg
        d = DynamicCDS(g)
        # Move a node next to a far node (if it keeps connectivity).
        nodes = sorted(g.nodes())
        mover, anchor = nodes[0], nodes[-1]
        new_neighbors = [anchor] + [
            v for v in g.neighbors(anchor) if v != mover
        ]
        try:
            stats = d.move_node(mover, new_neighbors)
        except ValueError:
            return  # this instance disconnects; nothing to assert
        assert d.is_valid()

    def test_move_unknown_rejected(self, path5):
        with pytest.raises(ValueError):
            DynamicCDS(path5).move_node(42, [0])

    def test_disconnecting_move_rejected(self, path5):
        d = DynamicCDS(path5)
        with pytest.raises(ValueError):
            d.move_node(2, [])  # path splits

    def test_mobility_driven_maintenance(self):
        # Full pipeline: random-walk motion, per-tick move_node repairs.
        positions = start_positions(n=16, side=3.2, seed=7)
        from repro.graphs import Graph, is_connected

        # Build an id-keyed graph from the initial positions.
        g = Graph(nodes=positions.keys())
        nodes = sorted(positions)
        for i in nodes:
            for j in nodes:
                if i < j and positions[i].distance_to(positions[j]) <= 1.0:
                    g.add_edge(i, j)
        if not is_connected(g):
            pytest.skip("unlucky start layout")
        d = DynamicCDS(g)
        model = RandomWalk(positions, side=3.2, step_size=0.12, seed=8)
        applied = 0
        for snap in model.snapshots(25):
            for node in nodes:
                new_nbrs = [
                    v
                    for v in nodes
                    if v != node and snap[node].distance_to(snap[v]) <= 1.0
                ]
                try:
                    d.move_node(node, new_nbrs)
                    applied += 1
                except ValueError:
                    continue  # motion would disconnect; radio keeps old link set
                assert d.is_valid()
        assert applied > 0
