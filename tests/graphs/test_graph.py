"""Unit tests for repro.graphs.graph."""

import pytest

from repro.graphs import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert len(g) == 0
        assert g.nodes() == []
        assert g.edges() == []

    def test_from_edges_and_nodes(self):
        g = Graph(edges=[(1, 2)], nodes=[3])
        assert set(g.nodes()) == {1, 2, 3}
        assert g.edge_count() == 1

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_edge(1, 2)
        g.add_node(1)
        assert g.degree(1) == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.edge_count() == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)


class TestRemoval:
    def test_remove_node_removes_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.edge_count() == 0
        assert g.degree(1) == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_node(1)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert 1 in g  # endpoints stay

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)


class TestQueries:
    def test_neighbors_order_is_insertion_order(self):
        g = Graph()
        g.add_edge(0, 3)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.neighbors(0) == [3, 1, 2]

    def test_neighbors_missing_raises(self):
        with pytest.raises(KeyError):
            Graph().neighbors(0)

    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 5
        assert star_graph.degree(1) == 1

    def test_max_degree(self, star_graph):
        assert star_graph.max_degree() == 5

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_closed_neighborhood(self, path5):
        assert path5.closed_neighborhood(1) == {0, 1, 2}

    def test_neighbor_set(self, path5):
        assert path5.neighbor_set(2) == {1, 3}

    def test_edges_each_once(self, cycle6):
        edges = cycle6.edges()
        assert len(edges) == 6
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == 6

    def test_iteration(self, path5):
        assert list(path5) == [0, 1, 2, 3, 4]

    def test_contains(self, path5):
        assert 3 in path5
        assert 9 not in path5

    def test_repr(self, path5):
        assert "5" in repr(path5) and "4" in repr(path5)


class TestDerived:
    def test_subgraph_induced(self, cycle6):
        sub = cycle6.subgraph([0, 1, 2])
        assert set(sub.nodes()) == {0, 1, 2}
        assert sub.edge_count() == 2  # 0-1 and 1-2, not 2-0

    def test_subgraph_ignores_unknown(self, path5):
        sub = path5.subgraph([0, 1, 99])
        assert set(sub.nodes()) == {0, 1}

    def test_subgraph_preserves_outer_order(self, path5):
        sub = path5.subgraph([4, 0, 2])
        assert sub.nodes() == [0, 2, 4]

    def test_copy_is_independent(self, path5):
        dup = path5.copy()
        dup.remove_node(0)
        assert 0 in path5
        assert 0 not in dup

    def test_copy_equal_structure(self, cycle6):
        dup = cycle6.copy()
        assert set(map(frozenset, dup.edges())) == set(map(frozenset, cycle6.edges()))
