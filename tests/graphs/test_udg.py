"""Unit tests for the unit-disk-graph builders."""

import pytest

from repro.geometry import Point
from repro.graphs import (
    communication_radius_graph,
    quasi_unit_disk_graph,
    unit_disk_graph,
    unit_disk_graph_naive,
    uniform_points,
)


def edge_set(graph):
    return {frozenset(e) for e in graph.edges()}


class TestUnitDiskGraph:
    def test_edge_iff_distance_at_most_one(self):
        a, b, c = Point(0, 0), Point(1, 0), Point(2.5, 0)
        g = unit_disk_graph([a, b, c])
        assert g.has_edge(a, b)  # distance exactly 1: edge
        assert not g.has_edge(b, c)
        assert not g.has_edge(a, c)

    def test_matches_naive_on_random_points(self):
        for seed in range(5):
            pts = uniform_points(60, 5.0, seed=seed)
            fast = unit_disk_graph(pts)
            slow = unit_disk_graph_naive(pts)
            assert edge_set(fast) == edge_set(slow)

    def test_matches_naive_other_radius(self):
        pts = uniform_points(40, 5.0, seed=3)
        assert edge_set(unit_disk_graph(pts, radius=1.7)) == edge_set(
            unit_disk_graph_naive(pts, radius=1.7)
        )

    def test_cross_bucket_edges_found(self):
        # Points in adjacent grid buckets, still within distance 1.
        a, b = Point(0.99, 0.5), Point(1.01, 0.5)
        g = unit_disk_graph([a, b])
        assert g.has_edge(a, b)

    def test_diagonal_bucket_edges_found(self):
        a, b = Point(0.99, 0.99), Point(1.01, 1.01)
        g = unit_disk_graph([a, b])
        assert g.has_edge(a, b)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            unit_disk_graph([Point(0, 0), Point(0, 0)])

    def test_duplicate_points_rejected_by_naive_too(self):
        # The builders promise identical behaviour on every input —
        # including erroneous ones (docs/usage.md §1).
        with pytest.raises(ValueError):
            unit_disk_graph_naive([Point(0, 0), Point(0, 0)])

    def test_builders_agree_on_duplicate_contract(self):
        pts = uniform_points(10, 3.0, seed=4)
        dupes = pts + [pts[0]]
        for builder in (unit_disk_graph, unit_disk_graph_naive):
            with pytest.raises(ValueError, match="duplicate"):
                builder(dupes)

    def test_empty(self):
        g = unit_disk_graph([])
        assert len(g) == 0

    def test_singleton(self):
        g = unit_disk_graph([Point(0, 0)])
        assert len(g) == 1 and g.edge_count() == 0

    def test_nodes_are_the_points(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        g = unit_disk_graph(pts)
        assert set(g.nodes()) == set(pts)

    def test_zero_radius(self):
        g = unit_disk_graph([Point(0, 0), Point(1, 1)], radius=0.0)
        assert g.edge_count() == 0


class TestGridSmallNDispatch:
    def test_small_n_adjacency_is_bit_identical_to_naive(self):
        # Below GRID_SMALL_N the grid builder runs the shared all-pairs
        # scan, so not just edge sets but adjacency *insertion order*
        # matches the naive builder (downstream BFS order depends on it).
        from repro.graphs.udg import GRID_SMALL_N

        for seed in range(3):
            pts = uniform_points(GRID_SMALL_N - 1, 4.5, seed=seed)
            grid = unit_disk_graph(pts)
            naive = unit_disk_graph_naive(pts)
            for p in pts:
                assert grid.neighbors(p) == naive.neighbors(p)

    def test_small_n_counters_are_truthful_all_pairs(self):
        from repro.obs import OBS

        pts = uniform_points(20, 3.8, seed=1)
        with OBS.capture() as reg:
            g = unit_disk_graph(pts)
            counters = reg.counters()
        assert counters["udg.grid.pairs_tested"] == 20 * 19 // 2
        assert counters["udg.grid.edges_emitted"] == g.edge_count()

    def test_large_n_still_prunes_pairs(self):
        from repro.graphs.udg import GRID_SMALL_N
        from repro.obs import OBS

        n = 2 * GRID_SMALL_N
        pts = uniform_points(n, 6.5, seed=2)
        with OBS.capture() as reg:
            unit_disk_graph(pts)
            counters = reg.counters()
        assert counters["udg.grid.pairs_tested"] < n * (n - 1) // 2


class TestCommunicationRadius:
    def test_scaled_radius(self):
        pts = [Point(0, 0), Point(30, 0), Point(70, 0)]
        g = communication_radius_graph(pts, radius=40.0)
        assert g.has_edge(pts[0], pts[1])
        assert g.has_edge(pts[1], pts[2])
        assert not g.has_edge(pts[0], pts[2])


class TestQuasiUDG:
    def test_inner_edges_always_present(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        g = quasi_unit_disk_graph(pts, inner_radius=0.75)
        assert g.has_edge(pts[0], pts[1])

    def test_outer_edges_never_present(self):
        pts = [Point(0, 0), Point(1.2, 0)]
        g = quasi_unit_disk_graph(pts)
        assert not g.has_edge(pts[0], pts[1])

    def test_deterministic_per_seed(self):
        pts = uniform_points(40, 4.0, seed=1)
        g1 = quasi_unit_disk_graph(pts, seed=5)
        g2 = quasi_unit_disk_graph(pts, seed=5)
        assert edge_set(g1) == edge_set(g2)

    def test_subgraph_of_udg(self):
        pts = uniform_points(40, 4.0, seed=2)
        quasi = quasi_unit_disk_graph(pts)
        full = unit_disk_graph(pts)
        assert edge_set(quasi) <= edge_set(full)

    def test_supergraph_of_inner_udg(self):
        pts = uniform_points(40, 4.0, seed=2)
        quasi = quasi_unit_disk_graph(pts, inner_radius=0.75)
        inner = unit_disk_graph(pts, radius=0.75)
        assert edge_set(inner) <= edge_set(quasi)

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            quasi_unit_disk_graph([], inner_radius=1.5, outer_radius=1.0)

    def test_duplicate_points_rejected_like_exact_builders(self):
        # docs/usage.md §1: all builders share the input contract.
        with pytest.raises(ValueError, match="duplicate"):
            quasi_unit_disk_graph([Point(0, 0), Point(0, 0)])

    def test_counters_report_all_pairs(self):
        from repro.obs import OBS

        pts = uniform_points(15, 3.0, seed=6)
        with OBS.capture() as reg:
            g = quasi_unit_disk_graph(pts)
            counters = reg.counters()
        assert counters["udg.quasi.pairs_tested"] == 15 * 14 // 2
        assert counters["udg.quasi.edges_emitted"] == g.edge_count()
