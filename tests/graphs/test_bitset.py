"""Unit tests for the bitset neighborhood kernel (repro.graphs.bitset)."""

import random

import pytest

from repro.geometry import Point
from repro.graphs import Graph, random_connected_udg
from repro.graphs.array import ArrayGraph
from repro.graphs.bitset import (
    ARRAY_AUTO_N,
    BITSET_AUTO_N,
    KERNELS,
    BitsetGraph,
    DominationTracker,
    bit_indices,
    build_kernel,
    choose_kernel,
    iter_bits,
    mask_of,
    popcount,
    value_sort_keys,
)
from repro.graphs.indexed import IndexedGraph


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestBitPrimitives:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 500) | 1) == 2

    def test_mask_of_roundtrip(self):
        ids = [0, 3, 64, 129, 1000]
        assert bit_indices(mask_of(ids, 1001)) == sorted(ids)

    def test_mask_of_empty(self):
        assert mask_of([], 10) == 0

    def test_bit_indices_sparse_path(self):
        # Few bits over a wide range: the lsb-drain branch.
        mask = (1 << 900) | (1 << 5) | 1
        assert bit_indices(mask) == [0, 5, 900]

    def test_bit_indices_dense_path(self):
        # A solid run of bits: the byte-scan branch.
        mask = (1 << 200) - 1
        assert bit_indices(mask) == list(range(200))

    def test_bit_indices_agree_across_densities(self):
        rng = random.Random(7)
        for density in (0.01, 0.2, 0.5, 0.95):
            ids = [i for i in range(300) if rng.random() < density]
            mask = mask_of(ids, 300)
            assert bit_indices(mask) == ids
            assert list(iter_bits(mask)) == ids

    def test_bit_indices_zero(self):
        assert bit_indices(0) == []


class TestValueSortKeys:
    def test_points_get_tuple_keys(self):
        nodes = (Point(2.0, 1.0), Point(0.5, 3.0))
        keys = value_sort_keys(nodes)
        assert keys == [(2.0, 1.0), (0.5, 3.0)]

    def test_key_order_matches_node_order(self):
        rng = random.Random(3)
        nodes = [Point(rng.random(), rng.random()) for _ in range(100)]
        keys = value_sort_keys(nodes)
        by_key = sorted(range(100), key=keys.__getitem__)
        by_node = sorted(range(100), key=nodes.__getitem__)
        assert by_key == by_node

    def test_non_point_sequences_unchanged(self):
        nodes = (3, 1, 2)
        assert value_sort_keys(nodes) is nodes

    def test_mixed_sequence_unchanged(self):
        nodes = (Point(0, 0), "x")
        assert value_sort_keys(nodes) is nodes


class TestBitsetGraphEquivalence:
    """The mask view must agree with the dict graph on every neighborhood."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graph_neighborhoods(self, seed):
        g = _random_graph(60, 0.15, seed)
        index = IndexedGraph.from_graph(g)
        bitset = BitsetGraph.from_indexed(index)
        for node in g:
            i = index.id_of(node)
            expected = {index.id_of(u) for u in g.neighbors(node)}
            assert set(bit_indices(bitset.neighbor_mask(i))) == expected
            assert bitset.neighbor_mask(i).bit_count() == g.degree(node)
            assert bitset.closed_mask(i) == bitset.neighbor_mask(i) | (1 << i)

    @pytest.mark.parametrize("seed", range(6))
    def test_udg_neighborhoods_and_popcounts(self, seed):
        _, g = random_connected_udg(80, 6.5, seed=seed)
        index = IndexedGraph.from_graph(g)
        bitset = BitsetGraph.from_indexed(index)
        masks = bitset.neighbor_masks
        assert len(masks) == len(g)
        for node in g:
            i = index.id_of(node)
            expected = {index.id_of(u) for u in g.neighbors(node)}
            assert set(bit_indices(masks[i])) == expected
            assert masks[i].bit_count() == g.degree(node)

    def test_bulk_and_on_demand_rows_agree(self):
        _, g = random_connected_udg(50, 5.0, seed=9)
        index = IndexedGraph.from_graph(g)
        on_demand = BitsetGraph.from_indexed(index)
        rows = [on_demand.neighbor_mask(i) for i in range(len(g))]
        bulk = BitsetGraph.from_indexed(index)
        assert bulk.neighbor_masks == rows

    def test_self_bit_never_set(self):
        g = _random_graph(40, 0.3, seed=1)
        bitset = BitsetGraph.from_indexed(IndexedGraph.from_graph(g))
        for i, mask in enumerate(bitset.neighbor_masks):
            assert not mask >> i & 1

    def test_adjacency_count(self):
        g = Graph()
        for v in "abcd":
            g.add_node(v)
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        bitset = BitsetGraph.from_indexed(IndexedGraph.from_graph(g))
        a = bitset.id_of("a")
        everyone = bitset.full_mask
        assert bitset.adjacency_count(a, everyone) == 2
        assert bitset.adjacency_count(a, 1 << bitset.id_of("d")) == 0


class TestDominationTracker:
    def test_cover_progression(self):
        g = _random_graph(30, 0.2, seed=4)
        bitset = BitsetGraph.from_indexed(IndexedGraph.from_graph(g))
        tracker = DominationTracker(bitset)
        assert tracker.uncovered_count == 30
        covered = set()
        for i in range(30):
            newly = tracker.cover(i)
            expected_new = ({i} | set(bit_indices(bitset.neighbor_mask(i)))) - covered
            assert newly == len(expected_new)
            covered |= expected_new
            assert set(tracker.uncovered_ids()) == set(range(30)) - covered
        assert tracker.all_covered

    def test_flags_match_mask(self):
        _, g = random_connected_udg(40, 4.5, seed=2)
        bitset = BitsetGraph.from_indexed(IndexedGraph.from_graph(g))
        tracker = DominationTracker(bitset)
        tracker.cover(0)
        tracker.cover(5)
        uncovered = set(bit_indices(tracker.uncovered_mask))
        for i in range(len(g)):
            assert tracker.is_uncovered(i) == (i in uncovered)
            assert bool(tracker.covered_flags[i]) == (i not in uncovered)


class TestKernelSelection:
    def test_explicit_names_honored(self):
        assert choose_kernel(10, "bitset") == "bitset"
        assert choose_kernel(10**6, "indexed") == "indexed"

    def test_auto_threshold(self):
        assert choose_kernel(BITSET_AUTO_N - 1, "auto") == "indexed"
        assert choose_kernel(BITSET_AUTO_N, "auto") == "bitset"
        assert choose_kernel(ARRAY_AUTO_N - 1, "auto") == "bitset"
        assert choose_kernel(ARRAY_AUTO_N, "auto") == "array"

    def test_auto_bitset_false_pins_csr(self):
        assert choose_kernel(BITSET_AUTO_N, "auto", auto_bitset=False) == "indexed"
        assert choose_kernel(ARRAY_AUTO_N, "auto", auto_bitset=False) == "indexed"
        # Explicit requests still win.
        assert choose_kernel(10, "bitset", auto_bitset=False) == "bitset"
        assert choose_kernel(10, "array", auto_bitset=False) == "array"

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            choose_kernel(10, "numpy")

    def test_build_kernel_types(self):
        _, g = random_connected_udg(20, 3.8, seed=1)
        assert isinstance(build_kernel(g, "indexed"), IndexedGraph)
        assert isinstance(build_kernel(g, "bitset"), BitsetGraph)
        assert isinstance(build_kernel(g, "array"), ArrayGraph)
        assert isinstance(build_kernel(g, "auto"), IndexedGraph)

    def test_kernels_constant(self):
        assert KERNELS == ("auto", "indexed", "bitset", "array")
