"""Unit tests for the deployment generators."""

import pytest

from repro.geometry import Point
from repro.graphs import (
    chain_points,
    clustered_points,
    corridor_points,
    is_connected,
    largest_component_udg,
    perturbed_grid_points,
    random_connected_udg,
    uniform_disk_points,
    uniform_points,
    unit_disk_graph,
)


class TestPointGenerators:
    def test_uniform_count_and_bounds(self):
        pts = uniform_points(50, 3.0, seed=1)
        assert len(pts) == 50
        assert all(0 <= p.x <= 3 and 0 <= p.y <= 3 for p in pts)

    def test_uniform_deterministic(self):
        assert uniform_points(10, 3.0, seed=9) == uniform_points(10, 3.0, seed=9)

    def test_uniform_seeds_differ(self):
        assert uniform_points(10, 3.0, seed=1) != uniform_points(10, 3.0, seed=2)

    def test_disk_points_inside(self):
        pts = uniform_disk_points(100, 2.0, seed=0)
        assert all(p.norm() <= 2.0 + 1e-9 for p in pts)

    def test_clustered_count(self):
        pts = clustered_points(30, 5.0, clusters=3, seed=0)
        assert len(pts) == 30

    def test_clustered_needs_cluster(self):
        with pytest.raises(ValueError):
            clustered_points(10, 5.0, clusters=0)

    def test_corridor_bounds(self):
        pts = corridor_points(40, 10.0, 1.0, seed=0)
        assert all(0 <= p.x <= 10 and 0 <= p.y <= 1 for p in pts)

    def test_perturbed_grid_count(self):
        pts = perturbed_grid_points(3, 4, spacing=1.0, jitter=0.1, seed=0)
        assert len(pts) == 12

    def test_perturbed_grid_zero_jitter_is_grid(self):
        pts = perturbed_grid_points(2, 2, spacing=2.0, jitter=0.0, seed=0)
        assert set(pts) == {Point(0, 0), Point(2, 0), Point(0, 2), Point(2, 2)}

    def test_chain_points(self):
        pts = chain_points(4, spacing=1.0)
        assert pts == [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]

    def test_chain_udg_is_path(self):
        g = unit_disk_graph(chain_points(5, 1.0))
        assert g.edge_count() == 4
        assert is_connected(g)


class TestConnectedUDG:
    def test_returns_connected(self):
        for seed in range(4):
            pts, g = random_connected_udg(15, 3.0, seed=seed)
            assert is_connected(g)
            assert len(pts) == 15

    def test_deterministic(self):
        p1, _ = random_connected_udg(12, 3.0, seed=5)
        p2, _ = random_connected_udg(12, 3.0, seed=5)
        assert p1 == p2

    def test_impossible_density_raises(self):
        with pytest.raises(ValueError):
            random_connected_udg(5, 100.0, seed=0, max_attempts=5)


class TestLargestComponent:
    def test_keeps_giant_component(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(0.9, 0), Point(10, 10)]
        kept, graph = largest_component_udg(pts)
        assert len(kept) == 3
        assert is_connected(graph)
        assert Point(10, 10) not in graph

    def test_empty(self):
        kept, graph = largest_component_udg([])
        assert kept == [] and len(graph) == 0

    def test_already_connected_unchanged(self):
        pts = chain_points(4, 0.9)
        kept, graph = largest_component_udg(pts)
        assert kept == pts
        assert len(graph) == 4
