"""Unit tests for the union-finds (hash-based and dense-integer)."""

import random

from repro.graphs import IntUnionFind, UnionFind


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.set_count == 3
        assert len(uf) == 3

    def test_union_merges(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2)
        assert uf.set_count == 2
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_union_same_set_returns_false(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.set_count == 1

    def test_find_adds_lazily(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.set_count == 1

    def test_set_size(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(3) == 1

    def test_sets_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        sets = uf.sets()
        assert sorted(sorted(s) for s in sets) == [[0, 1], [2, 3, 4], [5]]

    def test_long_chain_path_compression(self):
        uf = UnionFind(range(3000))
        for i in range(2999):
            uf.union(i, i + 1)
        # find on the far end must not blow the stack and must be fast.
        assert uf.connected(0, 2999)
        assert uf.set_count == 1

    def test_contains(self):
        uf = UnionFind([1])
        assert 1 in uf
        assert 2 not in uf

    def test_transitivity(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)


class TestIntUnionFind:
    def test_initial_singletons(self):
        uf = IntUnionFind(4)
        assert len(uf) == 4
        assert uf.set_count == 4
        assert all(uf.find(i) == i for i in range(4))

    def test_union_merges_and_reports(self):
        uf = IntUnionFind(3)
        assert uf.union(0, 1)
        assert uf.set_count == 2
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)

    def test_redundant_unions_keep_count_invariant(self):
        # count must equal n minus the number of *successful* unions,
        # no matter how many redundant ones are interleaved.
        uf = IntUnionFind(6)
        merges = 0
        for a, b in [(0, 1), (1, 0), (2, 3), (0, 1), (3, 2), (1, 2), (0, 3)]:
            merges += uf.union(a, b)
        assert merges == 3
        assert uf.set_count == 6 - merges

    def test_path_compression_flattens_chains(self):
        n = 5000
        uf = IntUnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        root = uf.find(0)
        # After one find, every node on the walked path points at the
        # root directly.
        assert uf._parent[0] == root
        assert uf.find(n - 1) == root
        assert uf.set_count == 1

    def test_union_by_size_attaches_small_under_large(self):
        uf = IntUnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)  # {0,1,2} with some root r
        big_root = uf.find(0)
        uf.union(3, 4)  # {3,4}
        uf.union(2, 3)
        # The larger set's root survives the merge.
        assert uf.find(3) == big_root

    def test_matches_hash_union_find_on_random_operations(self):
        rng = random.Random(42)
        n = 60
        dense, hashed = IntUnionFind(n), UnionFind(range(n))
        for _ in range(300):
            a, b = rng.randrange(n), rng.randrange(n)
            assert dense.union(a, b) == hashed.union(a, b)
            assert dense.set_count == hashed.set_count
        for i in range(n):
            for j in range(i + 1, i + 4):
                if j < n:
                    assert dense.connected(i, j) == hashed.connected(i, j)
