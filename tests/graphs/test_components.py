"""Unit tests for the union-find."""

from repro.graphs import UnionFind


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.set_count == 3
        assert len(uf) == 3

    def test_union_merges(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2)
        assert uf.set_count == 2
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_union_same_set_returns_false(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.set_count == 1

    def test_find_adds_lazily(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.set_count == 1

    def test_set_size(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(3) == 1

    def test_sets_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        sets = uf.sets()
        assert sorted(sorted(s) for s in sets) == [[0, 1], [2, 3, 4], [5]]

    def test_long_chain_path_compression(self):
        uf = UnionFind(range(3000))
        for i in range(2999):
            uf.union(i, i + 1)
        # find on the far end must not blow the stack and must be fast.
        assert uf.connected(0, 2999)
        assert uf.set_count == 1

    def test_contains(self):
        uf = UnionFind([1])
        assert 1 in uf
        assert 2 not in uf

    def test_transitivity(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)
