"""Unit tests for BFS trees, components and distances."""

import pytest

from repro.graphs import (
    Graph,
    bfs_order,
    bfs_tree,
    connected_components,
    eccentricity,
    induced_is_connected,
    is_connected,
    shortest_path_lengths,
)


class TestBFSTree:
    def test_order_starts_at_root(self, path5):
        tree = bfs_tree(path5, 2)
        assert tree.order[0] == 2

    def test_levels(self, path5):
        tree = bfs_tree(path5, 0)
        assert tree.depth == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_parents_point_toward_root(self, path5):
        tree = bfs_tree(path5, 0)
        for child, parent in tree.parent.items():
            assert tree.depth[parent] == tree.depth[child] - 1
            assert path5.has_edge(child, parent)

    def test_missing_root_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_tree(path5, 99)

    def test_children(self, star_graph):
        tree = bfs_tree(star_graph, 0)
        kids = tree.children()
        assert sorted(kids[0]) == [1, 2, 3, 4, 5]
        assert all(kids[i] == [] for i in range(1, 6))

    def test_path_to_root(self, path5):
        tree = bfs_tree(path5, 0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_path_to_root_of_root(self, path5):
        tree = bfs_tree(path5, 0)
        assert tree.path_to_root(0) == [0]

    def test_covers_component_only(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        tree = bfs_tree(g, 0)
        assert set(tree.order) == {0, 1}

    def test_len(self, cycle6):
        assert len(bfs_tree(cycle6, 0)) == 6

    def test_bfs_order_deterministic(self, cycle6):
        assert bfs_order(cycle6, 0) == bfs_order(cycle6, 0)


class TestComponents:
    def test_single_component(self, cycle6):
        comps = connected_components(cycle6)
        assert len(comps) == 1
        assert set(comps[0]) == set(range(6))

    def test_multiple_components(self):
        g = Graph(edges=[(0, 1), (2, 3)], nodes=[4])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3], [4]]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_is_connected(self, path5):
        assert is_connected(path5)

    def test_is_connected_false(self):
        assert not is_connected(Graph(edges=[(0, 1)], nodes=[2]))

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())

    def test_singleton_connected(self):
        assert is_connected(Graph(nodes=[1]))

    def test_induced_is_connected(self, path5):
        assert induced_is_connected(path5, [1, 2, 3])
        assert not induced_is_connected(path5, [0, 2])
        assert not induced_is_connected(path5, [])


class TestDistances:
    def test_shortest_path_lengths(self, cycle6):
        d = shortest_path_lengths(cycle6, 0)
        assert d == {0: 0, 1: 1, 5: 1, 2: 2, 4: 2, 3: 3}

    def test_eccentricity(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2


class TestDFSTree:
    def test_preorder_starts_at_root(self, path5):
        from repro.graphs import dfs_tree

        tree = dfs_tree(path5, 2)
        assert tree.order[0] == 2

    def test_covers_component(self, cycle6):
        from repro.graphs import dfs_tree

        assert set(dfs_tree(cycle6, 0).order) == set(range(6))

    def test_parent_precedes_child_in_preorder(self, small_udg):
        from repro.graphs import dfs_tree

        _, g = small_udg
        tree = dfs_tree(g, min(g.nodes()))
        position = {v: i for i, v in enumerate(tree.order)}
        for child, parent in tree.parent.items():
            assert position[parent] < position[child]
            assert g.has_edge(child, parent)

    def test_path_dfs_equals_bfs(self, path5):
        from repro.graphs import dfs_tree

        tree = dfs_tree(path5, 0)
        assert list(tree.order) == [0, 1, 2, 3, 4]

    def test_depth_consistent_with_parent(self, small_udg):
        from repro.graphs import dfs_tree

        _, g = small_udg
        tree = dfs_tree(g, min(g.nodes()))
        for child, parent in tree.parent.items():
            assert tree.depth[child] == tree.depth[parent] + 1

    def test_missing_root_raises(self, path5):
        import pytest

        from repro.graphs import dfs_tree

        with pytest.raises(KeyError):
            dfs_tree(path5, 99)
