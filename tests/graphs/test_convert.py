"""Unit tests for networkx interop."""

import networkx as nx
import pytest

from repro.graphs import Graph, from_networkx, to_networkx


class TestToNetworkx:
    def test_roundtrip_structure(self, cycle6):
        nxg = to_networkx(cycle6)
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 6

    def test_isolated_nodes_kept(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 3

    def test_cross_validation_connectivity(self, two_triangles_bridge):
        from repro.graphs import is_connected

        nxg = to_networkx(two_triangles_bridge)
        assert nx.is_connected(nxg) == is_connected(two_triangles_bridge)


class TestFromNetworkx:
    def test_basic(self):
        nxg = nx.path_graph(5)
        g = from_networkx(nxg)
        assert len(g) == 5
        assert g.edge_count() == 4

    def test_self_loop_rejected(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 1)
        with pytest.raises(ValueError):
            from_networkx(nxg)

    def test_roundtrip(self, cycle6):
        back = from_networkx(to_networkx(cycle6))
        assert set(back.nodes()) == set(cycle6.nodes())
        assert {frozenset(e) for e in back.edges()} == {
            frozenset(e) for e in cycle6.edges()
        }

    def test_random_geometric_cross_check(self):
        # networkx's own random geometric graph agrees with our UDG
        # builder on the same points.
        from repro.geometry import Point
        from repro.graphs import unit_disk_graph, uniform_points

        pts = uniform_points(50, 4.0, seed=11)
        ours = unit_disk_graph(pts)
        positions = {i: (p.x, p.y) for i, p in enumerate(pts)}
        theirs = nx.random_geometric_graph(len(pts), 1.0, pos=positions)
        ours_edges = {
            frozenset((pts.index(u), pts.index(v))) for u, v in ours.edges()
        }
        theirs_edges = {frozenset(e) for e in theirs.edges()}
        assert ours_edges == theirs_edges
