"""Unit tests for the kernel backend protocol (repro.graphs.backend)."""

import pytest

from repro.cds.array_gain import ArrayGainTracker
from repro.cds.bitset_gain import BitsetGainTracker
from repro.cds.lazy_gain import LazyGainTracker
from repro.graphs import random_connected_udg
from repro.graphs.array import ArrayGraph
from repro.graphs.backend import (
    ARRAY_AUTO_N,
    BITSET_AUTO_N,
    KERNELS,
    Backend,
    build_kernel,
    choose_kernel,
    gain_tracker,
)
from repro.graphs.bitset import BitsetGraph
from repro.graphs.indexed import IndexedGraph
from repro.mis import first_fit_mis


@pytest.fixture(scope="module")
def udg30():
    return random_connected_udg(30, 4.5, seed=11)[1]


class TestProtocol:
    def test_all_kernels_satisfy_backend(self, udg30):
        index = IndexedGraph.from_graph(udg30)
        assert isinstance(index, Backend)
        assert isinstance(BitsetGraph.from_indexed(index), Backend)
        assert isinstance(ArrayGraph.from_indexed(index), Backend)

    def test_plain_graph_is_not_a_backend(self, udg30):
        # The dict-based Graph has no dense-id surface.
        assert not isinstance(udg30, Backend)

    def test_surface_agrees_across_kernels(self, udg30):
        index = IndexedGraph.from_graph(udg30)
        views = (index, BitsetGraph.from_indexed(index),
                 ArrayGraph.from_indexed(index))
        for view in views[1:]:
            assert len(view) == len(index)
            assert view.nodes == index.nodes
            assert view.edge_count() == index.edge_count()
            assert view.bfs(0) == index.bfs(0)
            assert view.bfs_order(0) == index.bfs_order(0)
            assert view.connected_components() == index.connected_components()
            assert view.is_connected() == index.is_connected()
            for i in range(len(index)):
                assert view.degree(i) == index.degree(i)


class TestSelectionTable:
    """Pins the three-way auto thresholds (the documented contract)."""

    def test_thresholds(self):
        assert BITSET_AUTO_N == 600
        assert ARRAY_AUTO_N == 20000
        assert KERNELS == ("auto", "indexed", "bitset", "array")

    def test_three_way_auto(self):
        assert choose_kernel(1, "auto") == "indexed"
        assert choose_kernel(BITSET_AUTO_N - 1, "auto") == "indexed"
        assert choose_kernel(BITSET_AUTO_N, "auto") == "bitset"
        assert choose_kernel(ARRAY_AUTO_N - 1, "auto") == "bitset"
        assert choose_kernel(ARRAY_AUTO_N, "auto") == "array"
        assert choose_kernel(10**6, "auto") == "array"

    def test_explicit_beats_auto(self):
        assert choose_kernel(10**6, "indexed") == "indexed"
        assert choose_kernel(1, "array") == "array"

    def test_auto_bitset_false_pins_csr_at_every_size(self):
        for n in (1, BITSET_AUTO_N, ARRAY_AUTO_N, 10**6):
            assert choose_kernel(n, "auto", auto_bitset=False) == "indexed"

    def test_unknown_kernel_lists_choices(self):
        with pytest.raises(ValueError, match="indexed.*bitset.*array"):
            choose_kernel(10, "scipy")


class TestGainTrackerDispatch:
    def test_tracker_matches_kernel(self, udg30):
        mis = first_fit_mis(udg30).nodes
        index = IndexedGraph.from_graph(udg30)
        assert isinstance(gain_tracker(index, mis), LazyGainTracker)
        assert isinstance(
            gain_tracker(BitsetGraph.from_indexed(index), mis), BitsetGainTracker
        )
        assert isinstance(
            gain_tracker(ArrayGraph.from_indexed(index), mis), ArrayGainTracker
        )

    def test_build_kernel_explicit_types(self, udg30):
        assert isinstance(build_kernel(udg30, "indexed"), IndexedGraph)
        assert isinstance(build_kernel(udg30, "bitset"), BitsetGraph)
        assert isinstance(build_kernel(udg30, "array"), ArrayGraph)
        # n=30 < BITSET_AUTO_N: auto stays on the CSR kernel.
        assert isinstance(build_kernel(udg30, "auto"), IndexedGraph)
