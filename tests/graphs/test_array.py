"""Unit tests for the numpy-CSR array kernel (repro.graphs.array)."""

import random

import numpy as np
import pytest

from repro.graphs import Graph, random_connected_udg
from repro.graphs.array import ArrayGraph, gather_rows
from repro.graphs.indexed import IndexedGraph
from repro.obs import OBS


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestGatherRows:
    def test_matches_python_slices(self):
        g = _random_graph(40, 0.15, seed=3)
        array = ArrayGraph.from_graph(g)
        ids = np.array([5, 0, 17, 5, 39], dtype=np.int64)
        flat, counts = gather_rows(array.indptr, array.indices, ids)
        expected = [array.neighbors(int(i)).tolist() for i in ids]
        assert counts.tolist() == [len(row) for row in expected]
        assert flat.tolist() == [v for row in expected for v in row]

    def test_empty_ids(self):
        g = _random_graph(10, 0.3, seed=0)
        array = ArrayGraph.from_graph(g)
        flat, counts = gather_rows(
            array.indptr, array.indices, np.array([], dtype=np.int64)
        )
        assert flat.size == 0
        assert counts.size == 0

    def test_all_isolated_rows(self):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        array = ArrayGraph.from_graph(g)
        flat, counts = gather_rows(
            array.indptr, array.indices, np.arange(4, dtype=np.int64)
        )
        assert flat.size == 0
        assert counts.tolist() == [0, 0, 0, 0]


class TestArrayGraphView:
    def test_csr_buffers_match_indexed(self):
        _, g = random_connected_udg(60, 5.5, seed=4)
        index = IndexedGraph.from_graph(g)
        array = ArrayGraph.from_indexed(index)
        assert array.indexed is index
        assert array.indptr.tolist() == list(index.indptr)
        assert array.indices.tolist() == list(index.indices)
        assert array.degrees.tolist() == [index.degree(i) for i in range(len(g))]

    def test_delegation(self):
        _, g = random_connected_udg(25, 4.0, seed=1)
        index = IndexedGraph.from_graph(g)
        array = ArrayGraph.from_indexed(index)
        assert len(array) == len(index)
        assert array.nodes == index.nodes
        assert array.edge_count() == index.edge_count()
        for node in g:
            i = index.id_of(node)
            assert array.id_of(node) == i
            assert array.node_at(i) is index.node_at(i)
            assert node in array
            assert array.degree(i) == index.degree(i)
            assert array.neighbors(i).tolist() == list(index.neighbors(i))

    def test_repr(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert repr(ArrayGraph.from_graph(g)) == "ArrayGraph(|V|=3, |E|=2)"


class TestTraversalEquivalence:
    """BFS/components must be bit-identical to the CSR reference."""

    @pytest.mark.parametrize("seed", range(8))
    def test_bfs_matches_indexed(self, seed):
        _, g = random_connected_udg(70, 6.0, seed=seed)
        index = IndexedGraph.from_graph(g)
        array = ArrayGraph.from_indexed(index)
        for root in range(0, len(g), 13):
            assert array.bfs(root) == index.bfs(root)
            assert array.bfs_order(root) == index.bfs_order(root)

    @pytest.mark.parametrize("seed", range(6))
    def test_disconnected_components_match(self, seed):
        # Sparse random graphs fragment: component lists (BFS order
        # inside each, first-id order across) must match exactly.
        g = _random_graph(80, 0.02, seed=seed)
        index = IndexedGraph.from_graph(g)
        array = ArrayGraph.from_indexed(index)
        assert array.connected_components() == index.connected_components()
        assert array.is_connected() == index.is_connected()

    def test_single_node(self):
        g = Graph()
        g.add_node("a")
        array = ArrayGraph.from_graph(g)
        assert array.bfs(0) == ([0], [-1], [0])
        assert array.connected_components() == [[0]]
        assert array.is_connected()

    def test_empty_graph_not_connected(self):
        array = ArrayGraph.from_graph(Graph())
        assert not array.is_connected()
        assert array.connected_components() == []

    def test_bfs_counters(self):
        _, g = random_connected_udg(50, 5.0, seed=2)
        array = ArrayGraph.from_graph(g)
        with OBS.capture() as reg:
            array.bfs(0)
            counters = dict(reg.counters())
        assert counters.get("array.bfs_levels", 0) > 0
        # Connected graph: every CSR entry is gathered exactly once.
        assert counters.get("array.gather_elements") == 2 * g.edge_count()
