"""Unit tests for the set-property validators."""

import pytest

from repro.graphs import (
    Graph,
    has_two_hop_separation,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
    is_m_dominating_set,
    is_m_fold_cds,
    is_maximal_independent_set,
    m_deficient_nodes,
    survives_node_removal,
    undominated_nodes,
)


class TestDomination:
    def test_center_dominates_star(self, star_graph):
        assert is_dominating_set(star_graph, [0])

    def test_leaf_does_not(self, star_graph):
        assert not is_dominating_set(star_graph, [1])

    def test_undominated_nodes(self, path5):
        assert undominated_nodes(path5, [0]) == [2, 3, 4]

    def test_whole_vertex_set_dominates(self, cycle6):
        assert is_dominating_set(cycle6, range(6))

    def test_foreign_nodes_rejected(self, path5):
        assert not is_dominating_set(path5, [0, 99])

    def test_empty_set_on_nonempty_graph(self, path5):
        assert not is_dominating_set(path5, [])


class TestIndependence:
    def test_alternating_path_nodes(self, path5):
        assert is_independent_set(path5, [0, 2, 4])

    def test_adjacent_pair_rejected(self, path5):
        assert not is_independent_set(path5, [0, 1])

    def test_empty_is_independent(self, path5):
        assert is_independent_set(path5, [])

    def test_foreign_nodes_rejected(self, path5):
        assert not is_independent_set(path5, [99])

    def test_duplicates_tolerated(self, path5):
        assert is_independent_set(path5, [0, 0, 2])


class TestMaximalIndependence:
    def test_mis_on_path(self, path5):
        assert is_maximal_independent_set(path5, [0, 2, 4])

    def test_non_maximal_rejected(self, path5):
        assert not is_maximal_independent_set(path5, [0])  # 2,3,4 undominated
        assert not is_maximal_independent_set(path5, [2])  # 0,4 undominated

    def test_non_independent_rejected(self, path5):
        assert not is_maximal_independent_set(path5, [0, 1, 3])

    def test_mis_equivalence_with_domination(self, cycle6):
        # For independent sets, maximality == domination.
        mis = [0, 2, 4]
        assert is_independent_set(cycle6, mis)
        assert is_dominating_set(cycle6, mis)
        assert is_maximal_independent_set(cycle6, mis)


class TestTwoHopSeparation:
    def test_path_mis_has_it(self, path5):
        assert has_two_hop_separation(path5, [0, 2, 4])

    def test_far_apart_independent_set_lacks_it(self):
        g = Graph(edges=[(i, i + 1) for i in range(6)])  # path of 7
        assert not has_two_hop_separation(g, [0, 6])

    def test_small_sets_trivially_pass(self, path5):
        assert has_two_hop_separation(path5, [])
        assert has_two_hop_separation(path5, [2])


class TestCDS:
    def test_path_interior(self, path5):
        assert is_connected_dominating_set(path5, [1, 2, 3])

    def test_disconnected_dominating_set_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [1, 3])

    def test_connected_non_dominating_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [0, 1])

    def test_empty_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [])

    def test_single_node_graph(self):
        g = Graph(nodes=["v"])
        assert is_connected_dominating_set(g, ["v"])

    def test_single_dominator(self, star_graph):
        assert is_connected_dominating_set(star_graph, [0])

    def test_bridge_graph(self, two_triangles_bridge):
        assert is_connected_dominating_set(two_triangles_bridge, [2, 3])
        assert not is_connected_dominating_set(two_triangles_bridge, [0, 4])


class TestMFoldDomination:
    def test_m1_coincides_with_is_dominating_set(self, path5, star_graph):
        for g in (path5, star_graph):
            for cand in ([0], [1], [1, 3], list(g.nodes())):
                assert is_m_dominating_set(g, cand, 1) == is_dominating_set(
                    g, cand
                ), cand

    def test_star_center_alone_fails_m2(self, star_graph):
        # every leaf has only one neighbor in {0}
        assert is_m_dominating_set(star_graph, [0], 1)
        assert not is_m_dominating_set(star_graph, [0], 2)

    def test_members_have_no_demand(self, star_graph):
        # all leaves in, center out: center has 5 dominators; leaves are
        # members so their single neighbor is irrelevant
        assert is_m_dominating_set(star_graph, [1, 2, 3, 4, 5], 2)

    def test_cycle_m2(self, cycle6):
        # alternate nodes: each outsider has exactly its 2 neighbors in
        assert is_m_dominating_set(cycle6, [0, 2, 4], 2)
        assert not is_m_dominating_set(cycle6, [0, 2], 2)

    def test_deficient_nodes_reported(self, cycle6):
        # candidate {0,2}: node 1 has both neighbors in; 3 and 5 have
        # one each; 4 has none
        assert m_deficient_nodes(cycle6, [0, 2], 2) == [3, 4, 5]
        assert m_deficient_nodes(cycle6, [0, 2, 4], 2) == []

    def test_whole_vertex_set_always_m_dominates(self, path5):
        # no outsiders, no demand — for any m
        assert is_m_dominating_set(path5, range(5), 99)

    def test_foreign_nodes_rejected(self, path5):
        assert not is_m_dominating_set(path5, [0, 99], 1)

    def test_invalid_m_raises(self, path5):
        with pytest.raises(ValueError):
            is_m_dominating_set(path5, [0], 0)


class TestMFoldCDS:
    def test_connectivity_required(self, cycle6):
        # {0,2,4} 2-dominates but is an independent set
        assert is_m_dominating_set(cycle6, [0, 2, 4], 2)
        assert not is_m_fold_cds(cycle6, [0, 2, 4], 2)
        assert is_m_fold_cds(cycle6, [0, 1, 2, 3, 4], 2)

    def test_m1_coincides_with_cds(self, path5, two_triangles_bridge):
        for g, cand in ((path5, [1, 2, 3]), (two_triangles_bridge, [2, 3])):
            assert is_m_fold_cds(g, cand, 1)
            assert is_connected_dominating_set(g, cand)

    def test_empty_rejected(self, path5):
        assert not is_m_fold_cds(path5, [], 1)

    def test_singleton_convention(self, star_graph):
        assert is_m_fold_cds(star_graph, [0], 1)
        assert not is_m_fold_cds(star_graph, [0], 2)


class TestSurvivesNodeRemoval:
    def test_cycle_survives_at_m1(self, cycle6):
        # remove any one node of the full cycle: a path remains, still
        # dominating (every node is in it)
        assert survives_node_removal(cycle6, range(6), m=1)

    def test_path_backbone_does_not_survive(self, path5):
        # killing 2 splits {1,2,3}
        assert not survives_node_removal(path5, [1, 2, 3], m=1)

    def test_singleton_never_survives(self, star_graph):
        assert not survives_node_removal(star_graph, [0], m=1)

    def test_empty_never_survives(self, path5):
        assert not survives_node_removal(path5, [], m=1)

    def test_path_shaped_backbone_splits_on_interior_kill(self, cycle6):
        # backbone {0..4} is a path in the cycle: killing 2 leaves
        # {0,1} and {3,4} disconnected
        assert not survives_node_removal(cycle6, [0, 1, 2, 3, 4], m=1)
        assert survives_node_removal(cycle6, range(6), m=2)

    def test_m2_needs_double_coverage_of_outsiders(self, complete4):
        # K4, backbone {0,1}: kill 0 and the outsiders keep exactly one
        # dominator — enough at m=1, not at m=2
        assert survives_node_removal(complete4, [0, 1], m=1)
        assert not survives_node_removal(complete4, [0, 1], m=2)
