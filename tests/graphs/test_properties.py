"""Unit tests for the set-property validators."""

from repro.graphs import (
    Graph,
    has_two_hop_separation,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    undominated_nodes,
)


class TestDomination:
    def test_center_dominates_star(self, star_graph):
        assert is_dominating_set(star_graph, [0])

    def test_leaf_does_not(self, star_graph):
        assert not is_dominating_set(star_graph, [1])

    def test_undominated_nodes(self, path5):
        assert undominated_nodes(path5, [0]) == [2, 3, 4]

    def test_whole_vertex_set_dominates(self, cycle6):
        assert is_dominating_set(cycle6, range(6))

    def test_foreign_nodes_rejected(self, path5):
        assert not is_dominating_set(path5, [0, 99])

    def test_empty_set_on_nonempty_graph(self, path5):
        assert not is_dominating_set(path5, [])


class TestIndependence:
    def test_alternating_path_nodes(self, path5):
        assert is_independent_set(path5, [0, 2, 4])

    def test_adjacent_pair_rejected(self, path5):
        assert not is_independent_set(path5, [0, 1])

    def test_empty_is_independent(self, path5):
        assert is_independent_set(path5, [])

    def test_foreign_nodes_rejected(self, path5):
        assert not is_independent_set(path5, [99])

    def test_duplicates_tolerated(self, path5):
        assert is_independent_set(path5, [0, 0, 2])


class TestMaximalIndependence:
    def test_mis_on_path(self, path5):
        assert is_maximal_independent_set(path5, [0, 2, 4])

    def test_non_maximal_rejected(self, path5):
        assert not is_maximal_independent_set(path5, [0])  # 2,3,4 undominated
        assert not is_maximal_independent_set(path5, [2])  # 0,4 undominated

    def test_non_independent_rejected(self, path5):
        assert not is_maximal_independent_set(path5, [0, 1, 3])

    def test_mis_equivalence_with_domination(self, cycle6):
        # For independent sets, maximality == domination.
        mis = [0, 2, 4]
        assert is_independent_set(cycle6, mis)
        assert is_dominating_set(cycle6, mis)
        assert is_maximal_independent_set(cycle6, mis)


class TestTwoHopSeparation:
    def test_path_mis_has_it(self, path5):
        assert has_two_hop_separation(path5, [0, 2, 4])

    def test_far_apart_independent_set_lacks_it(self):
        g = Graph(edges=[(i, i + 1) for i in range(6)])  # path of 7
        assert not has_two_hop_separation(g, [0, 6])

    def test_small_sets_trivially_pass(self, path5):
        assert has_two_hop_separation(path5, [])
        assert has_two_hop_separation(path5, [2])


class TestCDS:
    def test_path_interior(self, path5):
        assert is_connected_dominating_set(path5, [1, 2, 3])

    def test_disconnected_dominating_set_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [1, 3])

    def test_connected_non_dominating_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [0, 1])

    def test_empty_rejected(self, path5):
        assert not is_connected_dominating_set(path5, [])

    def test_single_node_graph(self):
        g = Graph(nodes=["v"])
        assert is_connected_dominating_set(g, ["v"])

    def test_single_dominator(self, star_graph):
        assert is_connected_dominating_set(star_graph, [0])

    def test_bridge_graph(self, two_triangles_bridge):
        assert is_connected_dominating_set(two_triangles_bridge, [2, 3])
        assert not is_connected_dominating_set(two_triangles_bridge, [0, 4])
