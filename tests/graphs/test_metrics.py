"""Tests for topology statistics."""

import networkx as nx
import pytest

from repro.graphs import Graph, from_networkx, to_networkx
from repro.graphs.metrics import (
    clustering_coefficient,
    graph_diameter,
    topology_stats,
)


class TestDiameter:
    def test_path(self, path5):
        assert graph_diameter(path5) == 4

    def test_cycle(self, cycle6):
        assert graph_diameter(cycle6) == 3

    def test_complete(self, complete4):
        assert graph_diameter(complete4) == 1

    def test_single_node(self):
        assert graph_diameter(Graph(nodes=[0])) == 0

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            graph_diameter(Graph(edges=[(0, 1)], nodes=[2]))

    def test_cross_validate_networkx(self, udg_suite):
        for _, g in udg_suite[:4]:
            assert graph_diameter(g) == nx.diameter(to_networkx(g))


class TestClustering:
    def test_triangle(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(g) == 1.0

    def test_path_is_zero(self, path5):
        assert clustering_coefficient(path5) == 0.0

    def test_empty(self):
        assert clustering_coefficient(Graph()) == 0.0

    def test_cross_validate_networkx(self, udg_suite):
        for _, g in udg_suite[:4]:
            ours = clustering_coefficient(g)
            theirs = nx.average_clustering(to_networkx(g))
            assert ours == pytest.approx(theirs)


class TestTopologyStats:
    def test_fields(self, cycle6):
        stats = topology_stats(cycle6)
        assert stats.nodes == 6
        assert stats.edges == 6
        assert stats.min_degree == stats.max_degree == 2
        assert stats.mean_degree == 2.0
        assert stats.diameter == 3

    def test_row_shape(self, path5):
        assert len(topology_stats(path5).row()) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            topology_stats(Graph())
