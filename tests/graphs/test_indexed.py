"""The CSR kernel must be an exact, order-preserving view of ``Graph``.

Every bit-identical-output guarantee in the PR 2 performance work rests
on :class:`IndexedGraph` reproducing the dict-based graph's iteration
and adjacency orders exactly; these tests pin that contract on both
hand-built graphs and the randomized UDG suite.
"""

import pytest

from repro.graphs import Graph, IndexedGraph, IntUnionFind
from repro.graphs.traversal import (
    bfs_tree,
    connected_components,
    indexed_bfs_tree,
    is_connected,
)


class TestInterning:
    def test_nodes_follow_graph_iteration_order(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            assert list(index.nodes) == list(graph.nodes())

    def test_id_roundtrip(self, small_udg):
        _, graph = small_udg
        index = IndexedGraph.from_graph(graph)
        for i, node in enumerate(index.nodes):
            assert index.id_of(node) == i
            assert index.node_at(i) == node
            assert node in index
        assert len(index) == len(graph)
        assert list(index) == list(range(len(graph)))

    def test_unknown_node_raises(self, path5):
        index = IndexedGraph.from_graph(path5)
        with pytest.raises(KeyError):
            index.id_of(99)
        assert 99 not in index

    def test_empty_graph(self):
        index = IndexedGraph.from_graph(Graph())
        assert len(index) == 0
        assert index.edge_count() == 0
        assert not index.is_connected()


class TestAdjacency:
    def test_neighbors_and_degree_match_graph(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            for node in graph.nodes():
                i = index.id_of(node)
                expected = [index.id_of(v) for v in graph.neighbors(node)]
                assert index.neighbors(i) == expected  # order included
                assert index.degree(i) == graph.degree(node)

    def test_edge_count_matches(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            assert index.edge_count() == graph.edge_count()

    def test_csr_invariants(self, medium_udg):
        _, graph = medium_udg
        index = IndexedGraph.from_graph(graph)
        indptr = index.indptr
        assert indptr[0] == 0
        assert indptr[-1] == len(index.indices)
        assert all(a <= b for a, b in zip(indptr, indptr[1:]))

    def test_snapshot_does_not_track_mutation(self):
        graph = Graph(edges=[(0, 1)])
        index = IndexedGraph.from_graph(graph)
        graph.add_edge(1, 2)
        assert len(index) == 2
        assert index.edge_count() == 1


class TestTraversal:
    def test_bfs_matches_bfs_tree_order(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            root = next(iter(graph))
            tree = bfs_tree(graph, root)
            order, parent, depth = index.bfs(index.id_of(root))
            assert [index.node_at(i) for i in order] == list(tree.order)
            for node in tree.order:
                i = index.id_of(node)
                assert depth[i] == tree.depth[node]
                if node != root:
                    assert index.node_at(parent[i]) == tree.parent[node]

    def test_indexed_bfs_tree_is_bit_identical(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            root = next(iter(graph))
            assert indexed_bfs_tree(index, root) == bfs_tree(graph, root)

    def test_connected_components_match(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        graph.add_node(5)
        index = IndexedGraph.from_graph(graph)
        expected = connected_components(graph)
        got = [
            [index.node_at(i) for i in comp]
            for comp in index.connected_components()
        ]
        assert got == expected

    def test_is_connected_matches(self, udg_suite):
        for _, graph in udg_suite:
            index = IndexedGraph.from_graph(graph)
            assert index.is_connected() == is_connected(graph)
        split = Graph(edges=[(0, 1), (2, 3)])
        assert not IndexedGraph.from_graph(split).is_connected()


class TestIntUnionFind:
    def test_union_merges_and_counts(self):
        dsu = IntUnionFind(5)
        assert dsu.set_count == 5
        assert dsu.union(0, 1)
        assert dsu.union(1, 2)
        assert not dsu.union(0, 2)  # already together
        assert dsu.set_count == 3
        assert dsu.connected(0, 2)
        assert not dsu.connected(0, 3)

    def test_find_is_canonical(self):
        dsu = IntUnionFind(4)
        dsu.union(0, 1)
        dsu.union(2, 3)
        assert dsu.find(0) == dsu.find(1)
        assert dsu.find(2) == dsu.find(3)
        assert dsu.find(0) != dsu.find(2)
