"""Unit tests for cut vertices, blocks, and ``is_k_connected``."""

import pytest

from repro.graphs import (
    Graph,
    IndexedGraph,
    blocks,
    build_kernel,
    cut_vertices,
    is_biconnected,
    is_connected,
    is_k_connected,
    random_connected_udg,
)
from repro.graphs.backend import adjacency_rows
from repro.graphs.biconnectivity import articulation_ids


def brute_force_cuts(g):
    """Cut vertices by definition: removal increases component count."""

    def components(graph, skip=None):
        seen = set()
        count = 0
        for s in graph.nodes():
            if s == skip or s in seen:
                continue
            count += 1
            frontier = [s]
            seen.add(s)
            while frontier:
                v = frontier.pop()
                for u in graph.neighbors(v):
                    if u != skip and u not in seen:
                        seen.add(u)
                        frontier.append(u)
        return count

    base = components(g)
    return {v for v in g.nodes() if components(g, skip=v) > base}


class TestCutVertices:
    def test_path_internal_nodes_are_cuts(self, path5):
        assert cut_vertices(path5) == {1, 2, 3}

    def test_cycle_has_none(self, cycle6):
        assert cut_vertices(cycle6) == set()

    def test_star_center_is_cut(self, star_graph):
        assert cut_vertices(star_graph) == {0}

    def test_bridge_endpoints(self, two_triangles_bridge):
        assert cut_vertices(two_triangles_bridge) == {2, 3}

    def test_matches_brute_force_on_random_udgs(self):
        for seed in range(30):
            n = 6 + seed % 14
            _, g = random_connected_udg(
                n, side=max(1.0, 0.8 * n**0.5), seed=seed, max_attempts=500
            )
            assert cut_vertices(g) == brute_force_cuts(g), seed

    def test_disconnected_graph_scanned_per_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (10, 11), (11, 12)])
        assert cut_vertices(g) == {1, 11}

    def test_identical_across_kernels(self):
        _, g = random_connected_udg(80, 5.5, seed=5)
        expected = cut_vertices(g)
        for kernel in ("indexed", "bitset", "array"):
            assert cut_vertices(build_kernel(g, kernel)) == expected, kernel


class TestArticulationIds:
    def test_rows_interface(self):
        # path 0-1-2 as raw rows
        assert articulation_ids([[1], [0, 2], [1]]) == [1]

    def test_sorted_output(self):
        _, g = random_connected_udg(25, 4.5, seed=9)
        ids = articulation_ids(adjacency_rows(IndexedGraph.from_graph(g)))
        assert ids == sorted(ids)


class TestBlocks:
    def test_path_blocks_are_edges(self, path5):
        got = sorted(sorted(b) for b in blocks(path5))
        assert got == [[0, 1], [1, 2], [2, 3], [3, 4]]

    def test_cycle_is_one_block(self, cycle6):
        assert [sorted(b) for b in blocks(cycle6)] == [list(range(6))]

    def test_two_triangles_bridge(self, two_triangles_bridge):
        got = sorted(sorted(b) for b in blocks(two_triangles_bridge))
        assert got == [[0, 1, 2], [2, 3], [3, 4, 5]]

    def test_isolated_node_singleton_block(self):
        g = Graph(edges=[(0, 1)])
        g.add_node(7)
        assert sorted(sorted(b) for b in blocks(g)) == [[0, 1], [7]]

    def test_blocks_cover_all_edges_and_nodes(self):
        for seed in range(10):
            _, g = random_connected_udg(20, 4.0, seed=seed)
            bs = blocks(g)
            nodes = set().union(*map(set, bs))
            assert nodes == set(g.nodes())
            for u, v in g.edges():
                assert any(u in b and v in b for b in map(set, bs)), (u, v)


class TestKConnected:
    def test_k1_is_connectivity(self, path5, cycle6):
        assert is_k_connected(path5, 1)
        assert is_k_connected(cycle6, 1)
        g = Graph(edges=[(0, 1), (2, 3)])
        assert not is_k_connected(g, 1)

    def test_k2_strict_convention(self, cycle6, complete4, path5):
        assert is_k_connected(cycle6, 2)
        assert is_k_connected(complete4, 2)
        assert not is_k_connected(path5, 2)
        # K2 is 1- but not 2-connected (|V| > k required)
        k2 = Graph(edges=[(0, 1)])
        assert is_k_connected(k2, 1)
        assert not is_k_connected(k2, 2)

    def test_k_out_of_range_raises(self, cycle6):
        with pytest.raises(ValueError):
            is_k_connected(cycle6, 3)
        with pytest.raises(ValueError):
            is_k_connected(cycle6, 0)

    def test_empty_graph_is_never_k_connected(self):
        assert not is_k_connected(Graph(), 1)

    def test_matches_brute_force_definition(self):
        for seed in range(20):
            n = 5 + seed % 10
            _, g = random_connected_udg(
                n, side=max(1.0, 0.7 * n**0.5), seed=seed, max_attempts=500
            )
            expected = len(g) >= 3 and is_connected(g) and not brute_force_cuts(g)
            assert is_k_connected(g, 2) == expected, seed


class TestBiconnected:
    def test_small_conventions(self, cycle6, path5):
        assert is_biconnected(Graph(edges=[], nodes=[0]))
        assert is_biconnected(Graph(edges=[(0, 1)]))
        assert is_biconnected(cycle6)
        assert not is_biconnected(path5)
        assert not is_biconnected(Graph())

    def test_disconnected_is_not_biconnected(self):
        assert not is_biconnected(Graph(edges=[(0, 1), (2, 3)]))
