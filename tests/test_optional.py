"""Unit tests for the guarded-import helper (repro._optional)."""

import sys

import pytest

from repro import _optional
from repro._optional import MissingDependencyError, optional_module, require_module


@pytest.fixture(autouse=True)
def clean_cache(monkeypatch):
    monkeypatch.setattr(_optional, "_CACHE", {})


class TestOptionalModule:
    def test_present_module_returned(self):
        import json

        assert optional_module("json") is json

    def test_missing_module_returns_none(self):
        assert optional_module("definitely_not_installed_xyz") is None

    def test_memoized(self, monkeypatch):
        calls = []
        real = _optional.importlib.import_module

        def counting(name):
            calls.append(name)
            return real(name)

        monkeypatch.setattr(_optional.importlib, "import_module", counting)
        assert optional_module("json") is optional_module("json")
        assert calls == ["json"]

    def test_missing_result_memoized_too(self):
        assert optional_module("definitely_not_installed_xyz") is None
        assert _optional._CACHE["definitely_not_installed_xyz"] is None

    def test_dotted_name_returns_submodule(self):
        mod = optional_module("os.path")
        import os.path

        assert mod is os.path

    def test_non_import_errors_surface(self, monkeypatch):
        def broken(name):
            raise RuntimeError("corrupted install")

        monkeypatch.setattr(_optional.importlib, "import_module", broken)
        with pytest.raises(RuntimeError, match="corrupted install"):
            optional_module("whatever")


class TestRequireModule:
    def test_present_module_returned(self):
        assert require_module("json") is sys.modules["json"]

    def test_error_names_dist_and_extra(self):
        with pytest.raises(MissingDependencyError) as exc:
            require_module("scipy_missing_stub.spatial")
        msg = str(exc.value)
        assert "'scipy_missing_stub'" in msg
        assert 'pip install "repro[dev]"' in msg

    def test_known_extras_table(self, monkeypatch):
        monkeypatch.setattr(
            _optional.importlib,
            "import_module",
            lambda name: (_ for _ in ()).throw(ImportError(name)),
        )
        with pytest.raises(MissingDependencyError, match=r"repro\[dev\]"):
            require_module("scipy.spatial", feature="the cKDTree UDG fast path")
        with pytest.raises(MissingDependencyError, match="cKDTree UDG fast path"):
            require_module("scipy.spatial", feature="the cKDTree UDG fast path")

    def test_is_an_import_error(self):
        # Callers may catch plain ImportError.
        with pytest.raises(ImportError):
            require_module("definitely_not_installed_xyz")
