"""Tests for broadcast scheduling over a CDS backbone."""

import pytest

from repro.cds import greedy_connector_cds
from repro.graphs import Graph, chain_points, random_connected_udg, unit_disk_graph
from repro.scheduling import (
    broadcast_schedule_length,
    distance2_coloring,
    is_collision_free,
    two_hop_degree,
)


class TestTwoHopDegree:
    def test_path_middle(self, path5):
        assert two_hop_degree(path5, 2) == 4

    def test_path_end(self, path5):
        assert two_hop_degree(path5, 0) == 2

    def test_restriction(self, path5):
        assert two_hop_degree(path5, 2, within={0, 4}) == 2


class TestDistance2Coloring:
    def test_collision_free_on_suite(self, udg_suite):
        for _, g in udg_suite:
            backbone = greedy_connector_cds(g).nodes
            slots = distance2_coloring(g, backbone)
            assert set(slots) == set(backbone)
            assert is_collision_free(g, slots)

    def test_slot_count_bounded(self, udg_suite):
        for _, g in udg_suite:
            backbone = greedy_connector_cds(g).nodes
            slots = distance2_coloring(g, backbone)
            max_two_hop = max(
                two_hop_degree(g, v, set(backbone)) for v in backbone
            )
            assert max(slots.values()) <= max_two_hop

    def test_chain_needs_three_slots(self):
        # Consecutive chain relays are within 2 hops pairwise in triples.
        g = unit_disk_graph(chain_points(9, 1.0))
        backbone = [p for p in g.nodes()][1:-1]
        slots = distance2_coloring(g, backbone)
        assert is_collision_free(g, slots)
        assert max(slots.values()) == 2  # exactly 3 slots on a path

    def test_unknown_backbone_node(self, path5):
        with pytest.raises(KeyError):
            distance2_coloring(path5, [99])

    def test_validator_catches_conflicts(self, path5):
        # Nodes 1 and 3 share neighbor 2: same slot must be rejected.
        assert not is_collision_free(path5, {1: 0, 3: 0})
        assert is_collision_free(path5, {1: 0, 3: 1})


class TestBroadcastLatency:
    def test_everyone_reached_and_latency_positive(self, udg_suite):
        for _, g in udg_suite[:5]:
            backbone = greedy_connector_cds(g).nodes
            source = min(backbone)
            latency = broadcast_schedule_length(g, backbone, source)
            assert latency >= 0

    def test_star_single_frame(self, star_graph):
        latency = broadcast_schedule_length(star_graph, [0], 0)
        # One transmission reaches all leaves.
        assert latency == 0 or latency < 3

    def test_chain_latency_scales_with_length(self):
        latencies = []
        for n in (6, 12):
            g = unit_disk_graph(chain_points(n, 1.0))
            nodes = list(g.nodes())
            backbone = nodes[1:-1]
            latencies.append(
                broadcast_schedule_length(g, backbone, nodes[0])
            )
        assert latencies[1] > latencies[0]

    def test_non_cds_backbone_detected(self, path5):
        with pytest.raises(ValueError):
            broadcast_schedule_length(path5, [1], 0)  # 3,4 unreachable

    def test_precomputed_slots_accepted(self, path5):
        slots = distance2_coloring(path5, [1, 2, 3])
        latency = broadcast_schedule_length(path5, [1, 2, 3], 0, slots=slots)
        assert latency >= 0
