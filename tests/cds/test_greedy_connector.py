"""Unit tests for the Section IV greedy-connector algorithm."""

import pytest

from repro.cds import greedy_connector_cds, greedy_connectors
from repro.cds.bounds import greedy_bound_this_paper, lemma9_min_gain
from repro.cds.exact import connected_domination_number
from repro.graphs import (
    Graph,
    chain_points,
    is_maximal_independent_set,
    unit_disk_graph,
)
from repro.mis import first_fit_mis


class TestGreedyBasics:
    def test_valid_cds_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert greedy_connector_cds(g).is_valid(g)

    def test_dominators_form_mis(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            assert is_maximal_independent_set(g, result.dominators)

    def test_single_node(self):
        g = Graph(nodes=[0])
        assert greedy_connector_cds(g).nodes == frozenset([0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            greedy_connector_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            greedy_connector_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_deterministic(self, small_udg):
        _, g = small_udg
        a = greedy_connector_cds(g)
        b = greedy_connector_cds(g)
        assert a.nodes == b.nodes
        assert a.connectors == b.connectors


class TestTrace:
    def test_q_history_shape(self, small_udg):
        _, g = small_udg
        result = greedy_connector_cds(g)
        q = result.meta["q_history"]
        gains = result.meta["gain_history"]
        assert q[0] == len(result.dominators)
        assert q[-1] == 1
        assert len(q) == len(gains) + 1

    def test_q_decreases_by_gain(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            q = result.meta["q_history"]
            gains = result.meta["gain_history"]
            for i, gain in enumerate(gains):
                assert q[i + 1] == q[i] - gain

    def test_gains_positive(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            assert all(gain >= 1 for gain in result.meta["gain_history"])

    def test_gains_nonincreasing_is_not_required_but_lemma9_holds(self, udg_suite):
        # Lemma 9: each realized (max) gain >= max(1, ceil(q/gamma_c)-1).
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            q = result.meta["q_history"]
            for i, gain in enumerate(result.meta["gain_history"]):
                assert gain >= lemma9_min_gain(q[i], gamma_c)


class TestGreedyConnectorsOnGivenMIS:
    def test_connects_given_dominators(self, small_udg):
        _, g = small_udg
        mis = first_fit_mis(g)
        connectors, gains, q = greedy_connectors(g, mis.nodes)
        assert q[-1] == 1
        assert len(connectors) == len(gains)
        from repro.graphs import induced_is_connected

        assert induced_is_connected(g, set(mis.nodes) | set(connectors))

    def test_no_connectors_needed_for_single_dominator(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        connectors, gains, q = greedy_connectors(g, [0])
        assert connectors == [] and q == [1]


class TestTheorem10:
    def test_ratio_bound_on_suite(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            assert result.size <= float(greedy_bound_this_paper(gamma_c))

    def test_ratio_bound_on_chains(self):
        for n in (5, 8, 12, 15):
            g = unit_disk_graph(chain_points(n, 0.95))
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            assert result.size <= float(greedy_bound_this_paper(gamma_c))

    def test_never_more_connectors_than_waf_on_average(self, udg_suite):
        # The motivating comparison: same phase 1, cheaper phase 2.
        from repro.cds import waf_cds

        total_greedy = total_waf = 0
        for _, g in udg_suite:
            total_greedy += greedy_connector_cds(g).size
            total_waf += waf_cds(g).size
        assert total_greedy <= total_waf
