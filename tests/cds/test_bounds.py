"""Unit tests for the bound formulas — the paper's stated constants."""

import math
from fractions import Fraction

import pytest

from repro.cds import bounds


class TestAlphaBounds:
    def test_wan2004(self):
        assert bounds.alpha_bound_wan2004(3) == 13.0

    def test_wu2006(self):
        assert math.isclose(bounds.alpha_bound_wu2006(3), 12.6)

    def test_this_paper_exact_fraction(self):
        assert bounds.alpha_bound_this_paper(3) == Fraction(12)
        assert bounds.alpha_bound_this_paper(6) == Fraction(23)

    def test_funke_claim(self):
        assert math.isclose(bounds.alpha_bound_funke_claim(0), 8.291)

    def test_ordering_of_bounds_for_large_gamma(self):
        # The paper's progression: each new bound is strictly tighter
        # for large gamma_c.
        for gc in range(5, 40):
            assert (
                bounds.alpha_bound_this_paper(gc)
                < bounds.alpha_bound_wu2006(gc)
                < bounds.alpha_bound_wan2004(gc)
            )


class TestNeighborhoodBounds:
    def test_main(self):
        assert bounds.neighborhood_bound(3) == Fraction(12)
        assert bounds.neighborhood_bound(6) == Fraction(23)

    def test_capped_degree_variant(self):
        assert bounds.neighborhood_bound_capped_degree(3) == Fraction(11)

    def test_intersecting_variant(self):
        assert bounds.neighborhood_bound_intersecting(3) == Fraction(10)

    def test_variants_ordering(self):
        for n in range(2, 10):
            assert (
                bounds.neighborhood_bound_intersecting(n)
                < bounds.neighborhood_bound_capped_degree(n)
                < bounds.neighborhood_bound(n)
            )

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            bounds.neighborhood_bound(1)


class TestRatioBounds:
    def test_waf_constants(self):
        assert bounds.WAF_RATIO == Fraction(22, 3)
        assert bounds.waf_bound_this_paper(3) == Fraction(22)
        assert bounds.waf_bound_wan2004(3) == 23.0
        assert math.isclose(bounds.waf_bound_wu2006(3), 24.2)

    def test_greedy_constant_is_six_and_seven_eighteenths(self):
        assert bounds.GREEDY_RATIO == Fraction(115, 18)
        assert bounds.GREEDY_RATIO == 6 + Fraction(7, 18)

    def test_new_algorithm_strictly_better(self):
        for gc in range(1, 30):
            assert bounds.greedy_bound_this_paper(gc) < bounds.waf_bound_this_paper(gc)

    def test_conjectured_bounds(self):
        assert bounds.waf_bound_conjectured(2) == 12.0
        assert bounds.greedy_bound_conjectured(2) == 11.0

    def test_paper_improvement_over_76(self):
        # 7 1/3 < 7.6 for every gamma_c >= 1 (plus the old +1.4 offset).
        for gc in range(1, 50):
            assert bounds.waf_bound_this_paper(gc) < bounds.waf_bound_wu2006(gc)


class TestLemma9:
    def test_gain_floor_is_one_for_small_q(self):
        assert bounds.lemma9_min_gain(5, 10) == 1

    def test_gain_scales_with_q(self):
        assert bounds.lemma9_min_gain(21, 5) == math.ceil(21 / 5) - 1 == 4

    def test_q_one_gives_zero(self):
        assert bounds.lemma9_min_gain(1, 3) == 0

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            bounds.lemma9_min_gain(5, 0)


class TestGammaLowerBound:
    def test_inversion(self):
        # alpha = 12 -> gamma_c >= ceil(3*11/11) = 3.
        assert bounds.gamma_c_lower_bound_from_alpha(12) == 3

    def test_at_least_one(self):
        assert bounds.gamma_c_lower_bound_from_alpha(1) == 1

    def test_consistency_with_corollary7(self):
        # Feeding the bound back: alpha <= 11/3 * lb(alpha) + 1 may fail
        # (the lb is a floor), but lb is always <= the smallest gamma
        # consistent with alpha, i.e. alpha <= 11/3 * gamma + 1 implies
        # gamma >= lb.
        for alpha in range(1, 60):
            lb = bounds.gamma_c_lower_bound_from_alpha(alpha)
            # gamma = lb satisfies the corollary inequality; gamma = lb-1
            # (if >= 1) must violate it.
            if lb > 1:
                assert alpha > float(bounds.alpha_bound_this_paper(lb - 1))

    def test_invalid(self):
        with pytest.raises(ValueError):
            bounds.gamma_c_lower_bound_from_alpha(0)

    def test_phi_reexport(self):
        assert bounds.phi(3) == 12
