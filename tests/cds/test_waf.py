"""Unit tests for the WAF two-phased algorithm (Section III)."""

import pytest

from repro.cds import waf_cds
from repro.cds.bounds import waf_bound_this_paper
from repro.cds.exact import connected_domination_number
from repro.graphs import (
    Graph,
    chain_points,
    is_connected_dominating_set,
    is_maximal_independent_set,
    unit_disk_graph,
)


class TestWAFBasics:
    def test_valid_cds_on_suite(self, udg_suite):
        for _, g in udg_suite:
            result = waf_cds(g)
            assert result.is_valid(g)

    def test_dominators_form_mis(self, udg_suite):
        for _, g in udg_suite:
            result = waf_cds(g)
            assert is_maximal_independent_set(g, result.dominators)

    def test_connectors_disjoint_from_dominators(self, udg_suite):
        for _, g in udg_suite:
            result = waf_cds(g)
            assert not (set(result.connectors) & set(result.dominators))

    def test_single_node(self):
        g = Graph(nodes=["v"])
        result = waf_cds(g)
        assert result.nodes == frozenset(["v"])

    def test_two_nodes(self):
        g = Graph(edges=[("a", "b")])
        result = waf_cds(g)
        assert result.is_valid(g)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            waf_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            waf_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_deterministic(self, small_udg):
        _, g = small_udg
        assert waf_cds(g).nodes == waf_cds(g).nodes

    def test_explicit_root(self, cycle6):
        result = waf_cds(cycle6, root=3)
        assert result.meta["root"] == 3
        assert result.is_valid(cycle6)

    def test_meta_records_s(self, small_udg):
        _, g = small_udg
        result = waf_cds(g)
        s = result.meta["s"]
        assert s in result.connectors
        assert g.has_edge(result.meta["root"], s)


class TestWAFOnPaths:
    def test_unit_chain(self):
        pts = chain_points(9, 1.0)
        g = unit_disk_graph(pts)
        result = waf_cds(g)
        assert result.is_valid(g)
        # Optimal CDS of a 9-path is the 7 interior nodes.
        assert result.size >= 7

    def test_star_udg(self):
        # A dense cluster: gamma_c = 1.
        pts = [chain_points(1)[0]] + [
            p for p in chain_points(5, 0.19)[1:]
        ]
        g = unit_disk_graph(pts)
        result = waf_cds(g)
        assert result.is_valid(g)
        # Theorem 8 for gamma_c = 1: |CDS| <= 6.
        assert result.size <= 6


class TestTheorem8:
    def test_ratio_bound_on_suite(self, udg_suite):
        for _, g in udg_suite:
            result = waf_cds(g)
            gamma_c = connected_domination_number(g)
            assert result.size <= float(waf_bound_this_paper(gamma_c))

    def test_ratio_bound_on_chains(self):
        for n in (5, 8, 12):
            g = unit_disk_graph(chain_points(n, 0.95))
            result = waf_cds(g)
            gamma_c = connected_domination_number(g)
            assert result.size <= float(waf_bound_this_paper(gamma_c))

    def test_size_relation_to_mis(self, udg_suite):
        # |C| <= |I| - |I(s)| + 1 <= |I| - 1, so |CDS| <= 2|I|.
        for _, g in udg_suite:
            result = waf_cds(g)
            assert len(result.connectors) <= len(result.dominators)
            assert result.size <= 2 * len(result.dominators)


class TestArbitraryTree:
    def test_dfs_tree_variant_valid(self, udg_suite):
        for _, g in udg_suite:
            result = waf_cds(g, tree_kind="dfs")
            assert result.is_valid(g)

    def test_dfs_mis_is_maximal(self, udg_suite):
        from repro.graphs import is_maximal_independent_set

        for _, g in udg_suite:
            result = waf_cds(g, tree_kind="dfs")
            assert is_maximal_independent_set(g, result.dominators)

    def test_unknown_tree_kind_rejected(self, small_udg):
        _, g = small_udg
        import pytest

        with pytest.raises(ValueError):
            waf_cds(g, tree_kind="prim")

    def test_bfs_and_dfs_may_differ(self, udg_suite):
        differing = sum(
            1
            for _, g in udg_suite
            if waf_cds(g, tree_kind="bfs").nodes != waf_cds(g, tree_kind="dfs").nodes
        )
        assert differing >= 1  # the ablation is not vacuous
