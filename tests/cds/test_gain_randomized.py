"""Randomized cross-validation of :class:`GainTracker`.

The incremental tracker is the performance-critical heart of the
Section IV greedy; these tests drive it with randomized add sequences
— not just the greedy's own selection order — and check every
intermediate quantity against the from-scratch references
(:func:`gain_of`, :func:`component_count`), plus the three tie-break
modes of :meth:`GainTracker.best_connector` against a brute-force
reimplementation of their documented semantics.
"""

import random

import pytest

from repro.cds import GainTracker, component_count, gain_of
from repro.mis import first_fit_mis


def _reference_best(graph, tracker, tie_break):
    """Brute-force argmax-gain with the documented tie-break rules."""
    candidates = []
    for w in graph.nodes():
        if w in tracker.included:
            continue
        g = tracker.gain(w)
        if g >= 1:
            candidates.append((g, w))
    if not candidates:
        return None
    best_gain = max(g for g, _ in candidates)
    tied = [w for g, w in candidates if g == best_gain]
    if tie_break == "min":
        return best_gain, min(tied)
    if tie_break == "max":
        return best_gain, max(tied)
    # "degree": highest degree, then smallest id.
    return best_gain, min(tied, key=lambda w: (-graph.degree(w), w))


class TestRandomizedAddSequences:
    @pytest.mark.parametrize("seed", range(8))
    def test_gain_and_q_match_reference_under_random_adds(self, seed, udg_suite):
        rng = random.Random(seed)
        _, graph = udg_suite[seed % len(udg_suite)]
        mis = first_fit_mis(graph)
        tracker = GainTracker(graph, mis.nodes)
        included = set(mis.nodes)
        remaining = [v for v in graph.nodes() if v not in included]
        rng.shuffle(remaining)
        for w in remaining:
            assert tracker.gain(w) == gain_of(graph, included, w)
            realized = tracker.add(w)
            included.add(w)
            assert realized == max(
                0, component_count(graph, included - {w}) - component_count(graph, included)
            )
            assert tracker.component_count == component_count(graph, included)
        # Everything added: one component (the graph is connected).
        assert tracker.component_count == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_partial_random_prefix_keeps_invariants(self, seed, udg_suite):
        rng = random.Random(100 + seed)
        _, graph = udg_suite[(3 * seed) % len(udg_suite)]
        mis = first_fit_mis(graph)
        tracker = GainTracker(graph, mis.nodes)
        included = set(mis.nodes)
        outside = [v for v in graph.nodes() if v not in included]
        for w in rng.sample(outside, len(outside) // 2):
            tracker.add(w)
            included.add(w)
        for w in graph.nodes():
            assert tracker.gain(w) == gain_of(graph, included, w)


class TestTieBreakModes:
    @pytest.mark.parametrize("tie_break", ["min", "max", "degree"])
    def test_best_connector_matches_brute_force_along_full_runs(
        self, tie_break, udg_suite
    ):
        for _, graph in udg_suite[:6]:
            mis = first_fit_mis(graph)
            tracker = GainTracker(graph, mis.nodes)
            while tracker.component_count > 1:
                expected = _reference_best(graph, tracker, tie_break)
                assert expected is not None
                got = tracker.best_connector(tie_break)
                assert got == (expected[1], expected[0])
                tracker.add(got[0])

    def test_modes_can_disagree_but_all_terminate_validly(self, udg_suite):
        from repro.graphs import connected_components

        for _, graph in udg_suite[:4]:
            mis = first_fit_mis(graph)
            for tie_break in ("min", "max", "degree"):
                tracker = GainTracker(graph, mis.nodes)
                while tracker.component_count > 1:
                    w, _ = tracker.best_connector(tie_break)
                    tracker.add(w)
                assert len(connected_components(graph.subgraph(tracker.included))) == 1
