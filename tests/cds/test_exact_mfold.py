"""Exact minimum (1,m)-CDS: optimality, bounds, and ratio regressions."""

from itertools import combinations

import pytest

from repro.cds import (
    gamma_c_lower_bound,
    gamma_mfold_lower_bound,
    mfold_connected_domination_number,
    mfold_greedy_cds,
    minimum_cds,
    minimum_mfold_cds,
)
from repro.graphs import Graph, is_m_fold_cds, random_connected_udg
from repro.experiments.instances import default_side


def brute_force_optimum(g, m):
    nodes = g.nodes()
    for k in range(1, len(nodes) + 1):
        for subset in combinations(nodes, k):
            if is_m_fold_cds(g, subset, m):
                return k
    raise AssertionError("unreachable on a connected graph")


class TestMinimumMfoldCds:
    def test_matches_brute_force(self):
        for seed in range(10):
            n = 6 + seed % 6
            _, g = random_connected_udg(
                n, side=max(1.0, 0.75 * n**0.5), seed=seed, max_attempts=500
            )
            for m in (1, 2, 3):
                exact = minimum_mfold_cds(g, m)
                assert is_m_fold_cds(g, exact, m), (seed, m)
                assert len(exact) == brute_force_optimum(g, m), (seed, m)

    def test_m1_agrees_with_minimum_cds(self):
        # guards the generalization: the dedicated CDS solver and the
        # m-fold path at m=1 must land on the same optimum size
        for seed in range(12):
            n = 8 + seed
            _, g = random_connected_udg(
                n, side=max(1.0, 0.8 * n**0.5), seed=100 + seed, max_attempts=500
            )
            assert len(minimum_mfold_cds(g, 1)) == len(minimum_cds(g)), seed

    def test_upper_bound_respected(self):
        _, g = random_connected_udg(15, 3.2, seed=4)
        greedy = mfold_greedy_cds(g, m=2)
        opt = minimum_mfold_cds(g, 2, upper_bound=greedy.size)
        assert len(opt) <= greedy.size

    def test_full_vertex_set_fallback(self):
        # m above every degree: the only (1,m)-CDS is V itself
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert sorted(minimum_mfold_cds(g, 5)) == [0, 1, 2]

    def test_errors(self):
        with pytest.raises(ValueError):
            minimum_mfold_cds(Graph(), 1)
        with pytest.raises(ValueError):
            minimum_mfold_cds(Graph(edges=[(0, 1), (2, 3)]), 1)
        with pytest.raises(ValueError):
            minimum_mfold_cds(Graph(edges=[(0, 1)]), 0)

    def test_number_helper(self):
        g = Graph(edges=[(i, (i + 1) % 5) for i in range(5)])
        assert mfold_connected_domination_number(g, 2) == len(
            minimum_mfold_cds(g, 2)
        )


class TestGammaMfoldLowerBound:
    def test_star_forced_members(self):
        # K_{1,5} at m=2: every leaf has degree 1 < 2, so all five are
        # forced — the naive n/(Δ+1) bound would say 1
        star = Graph(edges=[(0, i) for i in range(1, 6)])
        assert gamma_mfold_lower_bound(star, 2) == 5
        naive = -(-len(star) // (star.max_degree() + 1))
        assert naive == 1

    def test_m1_reduces_to_gamma_c_bound(self):
        for seed in range(8):
            _, g = random_connected_udg(18, 3.8, seed=seed)
            assert gamma_mfold_lower_bound(g, 1) == gamma_c_lower_bound(g)

    def test_demand_bound_exceeds_naive_for_m2(self):
        # cycle: Δ=2, n=8.  Demand bound: ceil(2*8/(2+2)) = 4;
        # the naive n/(Δ+1) says 3.
        cycle = Graph(edges=[(i, (i + 1) % 8) for i in range(8)])
        assert gamma_mfold_lower_bound(cycle, 2) >= 4

    def test_always_a_lower_bound(self):
        for seed in range(10):
            n = 7 + seed % 6
            _, g = random_connected_udg(
                n, side=max(1.0, 0.75 * n**0.5), seed=300 + seed, max_attempts=500
            )
            for m in (1, 2, 3):
                assert gamma_mfold_lower_bound(g, m) <= len(
                    minimum_mfold_cds(g, m)
                ), (seed, m)

    def test_min_m_n_floor(self):
        k4 = Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert gamma_mfold_lower_bound(k4, 3) >= 3

    def test_invalid_m_raises(self):
        with pytest.raises(ValueError):
            gamma_mfold_lower_bound(Graph(edges=[(0, 1)]), 0)


#: Pinned per-density ratio ceilings for the n <= 25 regression grid.
#: Dense instances have tiny optima (often a near-universal node), so
#: one extra greedy pick swings the quotient — hence the looser cap.
RATIO_BOUNDS = {0.8: 4.5, 1.0: 3.0}


#: The m=2 branch-and-bound is exponential in the optimum size (which
#: m=2 forces large), so its grid stops earlier than the m=1 grid.
GRID_SIZES = {1: (10, 16, 22, 25), 2: (10, 14, 18)}


class TestExactRatioRegression:
    @pytest.mark.parametrize("factor", sorted(RATIO_BOUNDS))
    @pytest.mark.parametrize("m", sorted(GRID_SIZES))
    def test_greedy_within_pinned_ratio(self, factor, m):
        bound = RATIO_BOUNDS[factor]
        worst = 0.0
        for n in GRID_SIZES[m]:
            side = default_side(n) * factor
            for seed in range(3):
                _, g = random_connected_udg(n, side, seed=seed, max_attempts=500)
                greedy = mfold_greedy_cds(g, m=m)
                opt = minimum_mfold_cds(g, m, upper_bound=greedy.size)
                worst = max(worst, greedy.size / len(opt))
        assert worst <= bound, worst
