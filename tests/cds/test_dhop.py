"""Tests for d-hop connected dominating sets."""

import pytest

from repro.cds.dhop import d_hop_ball, d_hop_cds, is_d_hop_cds, is_d_hop_dominating
from repro.graphs import Graph, chain_points, unit_disk_graph


class TestDHopBall:
    def test_radius_zero(self, path5):
        assert d_hop_ball(path5, 2, 0) == {2}

    def test_radius_one_is_closed_neighborhood(self, path5):
        assert d_hop_ball(path5, 2, 1) == path5.closed_neighborhood(2)

    def test_radius_two(self, path5):
        assert d_hop_ball(path5, 0, 2) == {0, 1, 2}

    def test_covers_all_eventually(self, cycle6):
        assert d_hop_ball(cycle6, 0, 3) == set(range(6))

    def test_negative_rejected(self, path5):
        with pytest.raises(ValueError):
            d_hop_ball(path5, 0, -1)


class TestDHopDomination:
    def test_center_of_path(self, path5):
        assert is_d_hop_dominating(path5, [2], 2)
        assert not is_d_hop_dominating(path5, [2], 1)

    def test_d1_equals_classic(self, udg_suite):
        from repro.graphs import is_dominating_set

        for _, g in udg_suite[:4]:
            from repro.mis import lexicographic_mis

            ds = lexicographic_mis(g)
            assert is_d_hop_dominating(g, ds, 1) == is_dominating_set(g, ds)

    def test_foreign_nodes_rejected(self, path5):
        assert not is_d_hop_dominating(path5, [99], 3)

    def test_d_hop_cds_validator(self, path5):
        assert is_d_hop_cds(path5, [2], 2)
        assert not is_d_hop_cds(path5, [], 2)
        assert not is_d_hop_cds(path5, [0, 4], 1)  # disconnected


class TestDHopCDS:
    def test_valid_on_suite_for_d(self, udg_suite):
        for d in (1, 2, 3):
            for _, g in udg_suite[:4]:
                result = d_hop_cds(g, d)
                assert is_d_hop_cds(g, result.nodes, d), (d, result)

    def test_sizes_shrink_with_d(self, medium_udg):
        _, g = medium_udg
        sizes = [d_hop_cds(g, d).size for d in (1, 2, 3)]
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_d1_is_classic_cds(self, small_udg):
        from repro.graphs import is_connected_dominating_set

        _, g = small_udg
        result = d_hop_cds(g, 1)
        assert is_connected_dominating_set(g, result.nodes)

    def test_long_chain_d2(self):
        g = unit_disk_graph(chain_points(13, 1.0))
        result = d_hop_cds(g, 2)
        assert is_d_hop_cds(g, result.nodes, 2)
        # Dominators are sparse: about one per 2d+1 = 5 chain nodes.
        assert len(result.dominators) <= 4

    def test_single_node(self):
        assert d_hop_cds(Graph(nodes=[0]), 2).size == 1

    def test_invalid_d(self, path5):
        with pytest.raises(ValueError):
            d_hop_cds(path5, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            d_hop_cds(Graph(), 1)

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            d_hop_cds(Graph(edges=[(0, 1)], nodes=[2]), 1)
