"""Unit tests for the fault-tolerant (1,m)/(2,m)-CDS solvers."""

import pytest

from repro.cds import (
    augment_biconnected,
    greedy_connector_cds,
    mfold_2conn_cds,
    mfold_greedy_cds,
)
from repro.graphs import (
    Graph,
    is_k_connected,
    is_m_fold_cds,
    random_connected_udg,
    survives_node_removal,
)
from repro.graphs.biconnectivity import is_biconnected
from repro.obs import OBS


def two_connected_udgs(count, n, side_factor=0.62):
    out = []
    seed = 0
    while len(out) < count and seed < 40 * count:
        _, g = random_connected_udg(
            n, side=max(1.0, side_factor * n**0.5), seed=seed, max_attempts=500
        )
        if is_k_connected(g, 2):
            out.append(g)
        seed += 1
    assert out, "no 2-connected instances sampled"
    return out


class TestMfoldGreedy:
    def test_valid_m_fold_cds(self):
        for seed in range(8):
            _, g = random_connected_udg(25, 4.2, seed=seed)
            for m in (1, 2, 3):
                result = mfold_greedy_cds(g, m=m).validate(g)
                assert is_m_fold_cds(g, result.nodes, m), (seed, m)

    def test_m1_matches_paper_greedy_node_set(self):
        for seed in range(6):
            _, g = random_connected_udg(30, 4.6, seed=seed)
            mfold = mfold_greedy_cds(g, m=1)
            base = greedy_connector_cds(g)
            assert set(mfold.nodes) == set(base.nodes), seed
            assert mfold.meta["coverage_added"] == 0

    def test_kernel_parity(self):
        _, g = random_connected_udg(60, 6.2, seed=3)
        for m in (2, 3):
            results = {
                k: mfold_greedy_cds(g, m=m, kernel=k)
                for k in ("indexed", "bitset", "array")
            }
            nodes = {k: r.nodes for k, r in results.items()}
            assert nodes["indexed"] == nodes["bitset"] == nodes["array"], m
            orders = {k: (r.dominators, r.connectors) for k, r in results.items()}
            assert len(set(orders.values())) == 1, m

    def test_monotone_in_m(self):
        # more coverage demand can only grow the dominating phase
        _, g = random_connected_udg(40, 5.0, seed=7)
        sizes = [mfold_greedy_cds(g, m=m).size for m in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)

    def test_low_degree_nodes_selected(self):
        # a path: at m=2 every node has deg <= 2, interior nodes have
        # deficit however the set grows, so the result is almost all of V
        g = Graph(edges=[(i, i + 1) for i in range(5)])
        result = mfold_greedy_cds(g, m=2)
        assert is_m_fold_cds(g, result.nodes, 2)

    def test_single_node_graph(self):
        g = Graph(nodes=["v"])
        result = mfold_greedy_cds(g, m=3)
        assert set(result.nodes) == {"v"}

    def test_invalid_m_raises(self):
        _, g = random_connected_udg(10, 2.5, seed=0)
        with pytest.raises(ValueError):
            mfold_greedy_cds(g, m=0)

    def test_counters_emitted(self):
        _, g = random_connected_udg(30, 4.6, seed=2)
        with OBS.capture() as reg:
            mfold_greedy_cds(g, m=2)
            counters = reg.counters()
        assert counters.get("mfold.coverage_added", 0) >= 0
        assert counters["mfold.deficit_evaluations"] > 0


class TestAugmentBiconnected:
    def test_backbone_becomes_biconnected(self):
        for g in two_connected_udgs(6, 24):
            base = mfold_greedy_cds(g, m=2)
            ears, repairs = augment_biconnected(g, base.nodes)
            hardened = set(base.nodes) | set(ears)
            assert is_biconnected(g.subgraph(hardened)), repairs
            assert repairs >= 0 and len(ears) >= 0

    def test_already_biconnected_backbone_untouched(self):
        g = Graph(edges=[(i, (i + 1) % 6) for i in range(6)])
        ears, repairs = augment_biconnected(g, range(6))
        assert ears == [] and repairs == 0

    def test_not_two_connected_graph_raises(self, path5):
        with pytest.raises(ValueError):
            augment_biconnected(path5, [1, 2, 3])

    def test_ears_are_new_nodes(self):
        for g in two_connected_udgs(4, 20):
            base = mfold_greedy_cds(g, m=2)
            ears, _ = augment_biconnected(g, base.nodes)
            assert not set(ears) & set(base.nodes)
            assert len(set(ears)) == len(ears)


class TestMfold2Conn:
    def test_survives_any_single_backbone_death(self):
        for g in two_connected_udgs(8, 22):
            result = mfold_2conn_cds(g, m=2).validate(g)
            assert is_m_fold_cds(g, result.nodes, 2)
            assert is_biconnected(g.subgraph(set(result.nodes)))
            assert survives_node_removal(g, result.nodes, m=1)

    def test_meta_records_augmentation(self):
        g = two_connected_udgs(1, 24)[0]
        result = mfold_2conn_cds(g, m=2)
        assert result.meta["m"] == 2
        assert result.meta["cut_vertices_repaired"] >= 0
        assert result.meta["augmentation_cost"] == len(
            set(result.nodes) - set(mfold_greedy_cds(g, m=2).nodes)
        )

    def test_kernel_parity(self):
        g = two_connected_udgs(1, 30)[0]
        nodes = {
            k: mfold_2conn_cds(g, m=2, kernel=k).nodes
            for k in ("indexed", "bitset", "array")
        }
        assert nodes["indexed"] == nodes["bitset"] == nodes["array"]

    def test_rejects_graph_with_cut_vertex(self, two_triangles_bridge):
        with pytest.raises(ValueError):
            mfold_2conn_cds(two_triangles_bridge, m=2)

    def test_small_graphs(self):
        # K1 and K2 have no 3-node separation to worry about
        assert set(mfold_2conn_cds(Graph(nodes=["v"]), m=2).nodes) == {"v"}
        k2 = Graph(edges=[("a", "b")])
        assert set(mfold_2conn_cds(k2, m=2).nodes) == {"a", "b"}
