"""Unit tests for dynamic CDS maintenance under churn."""

import random

import pytest

from repro.cds.maintenance import DynamicCDS, RepairStats
from repro.geometry import Point
from repro.graphs import Graph, random_connected_udg, unit_disk_graph


class TestConstruction:
    def test_empty_start(self):
        d = DynamicCDS()
        assert d.size == 0
        assert d.is_valid()

    def test_initial_build(self, small_udg):
        _, g = small_udg
        d = DynamicCDS(g)
        assert d.is_valid()
        assert d.size >= 1

    def test_disconnected_initial_rejected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(ValueError):
            DynamicCDS(g)

    def test_graph_copy_isolated_from_input(self, small_udg):
        _, g = small_udg
        d = DynamicCDS(g)
        victim = next(iter(g))
        g.remove_node(victim)  # mutate the original
        assert victim in d.graph  # maintained copy unaffected


class TestJoins:
    def test_seed_node(self):
        d = DynamicCDS()
        stats = d.add_node(0, [])
        assert stats.action == "seeded"
        assert d.backbone == frozenset([0])
        assert d.is_valid()

    def test_join_next_to_backbone_is_free(self, path5):
        d = DynamicCDS(path5)
        backbone_node = next(iter(d.backbone))
        stats = d.add_node(99, [backbone_node])
        assert stats.action == "none"
        assert d.is_valid()

    def test_join_far_from_backbone_promotes(self):
        # Star with center 0: backbone is {0}. A new node hanging off a
        # leaf forces that leaf's promotion.
        g = Graph(edges=[(0, 1), (0, 2)])
        d = DynamicCDS(g)
        assert d.backbone == frozenset([0])
        stats = d.add_node(3, [1])
        assert stats.action == "promoted"
        assert stats.promoted == (1,)
        assert d.is_valid()

    def test_join_requires_neighbor(self, path5):
        d = DynamicCDS(path5)
        with pytest.raises(ValueError):
            d.add_node(99, [])

    def test_join_duplicate_rejected(self, path5):
        d = DynamicCDS(path5)
        with pytest.raises(ValueError):
            d.add_node(0, [1])

    def test_join_unknown_neighbor_rejected(self, path5):
        d = DynamicCDS(path5)
        with pytest.raises(ValueError):
            d.add_node(99, [1234])


class TestLeaves:
    def test_non_backbone_leave_is_free(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        d = DynamicCDS(g)
        stats = d.remove_node(2)
        assert stats.action == "none"
        assert d.is_valid()

    def test_backbone_leave_repairs(self):
        # Path 0-1-2-3-4: backbone {1,2,3}; removing 2 must reconnect.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        with pytest.raises(ValueError):
            DynamicCDS(g).remove_node(2)  # removal disconnects the path

    def test_backbone_leave_with_alternative_route(self, cycle6):
        d = DynamicCDS(cycle6)
        victim = next(iter(d.backbone))
        stats = d.remove_node(victim)
        assert d.is_valid()
        assert victim not in d.graph

    def test_remove_last_node(self):
        d = DynamicCDS(Graph(nodes=[7]))
        d.remove_node(7)
        assert d.size == 0
        assert d.is_valid()

    def test_unknown_node_rejected(self, path5):
        with pytest.raises(ValueError):
            DynamicCDS(path5).remove_node(42)

    def test_disconnecting_removal_rejected(self, path5):
        d = DynamicCDS(path5)
        with pytest.raises(ValueError):
            d.remove_node(2)


class TestRebuild:
    def test_manual_rebuild_restores_fresh_size(self, medium_udg):
        _, g = medium_udg
        d = DynamicCDS(g)
        # Degrade: churn several backbone nodes out and back in.
        rng = random.Random(1)
        for _ in range(8):
            victims = sorted(d.backbone)
            victim = rng.choice(victims)
            neighbors = d.graph.neighbors(victim)
            try:
                d.remove_node(victim)
            except ValueError:
                continue
            survivors = [u for u in neighbors if u in d.graph]
            if survivors:
                d.add_node(victim, survivors)
            assert d.is_valid()
        stats = d.rebuild()
        assert stats.action == "rebuilt"
        assert d.rebuild_count == 1
        assert d.is_valid()
        # A rebuild is exactly a fresh construction on the current graph.
        assert d.size == DynamicCDS(d.graph).size

    def test_churn_slack_nonnegative_after_rebuild(self, small_udg):
        _, g = small_udg
        d = DynamicCDS(g)
        d.rebuild()
        assert d.churn_slack() == 0

    def test_auto_rebuild_bounds_slack(self, small_udg):
        _, g = small_udg
        d = DynamicCDS(g, rebuild_factor=1.5)
        rng = random.Random(0)
        nodes = sorted(g.nodes())
        # Churn: repeatedly remove and re-add fringe nodes.
        for step in range(15):
            leaves = [v for v in d.graph.nodes() if v not in d.backbone]
            victim = rng.choice(sorted(leaves))
            neighbors = d.graph.neighbors(victim)
            try:
                d.remove_node(victim)
            except ValueError:
                continue  # would disconnect; skip this churn event
            survivors = [u for u in neighbors if u in d.graph]
            if survivors:
                d.add_node(victim, survivors)
            assert d.is_valid()
        fresh = DynamicCDS(d.graph).size
        assert d.size <= 1.5 * fresh + 2


class TestRandomChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_churn_sequence_stays_valid(self, seed):
        pts, g = random_connected_udg(25, 4.2, seed=seed)
        d = DynamicCDS(g)
        rng = random.Random(seed)
        for step in range(40):
            if rng.random() < 0.5 and len(d.graph) > 5:
                victim = rng.choice(sorted(d.graph.nodes()))
                try:
                    d.remove_node(victim)
                except ValueError:
                    continue
            else:
                base = rng.choice(sorted(d.graph.nodes()))
                new = Point(base.x + rng.uniform(-0.8, 0.8),
                            base.y + rng.uniform(-0.8, 0.8))
                if new in d.graph:
                    continue
                in_range = [
                    v for v in d.graph.nodes() if v.distance_to(new) <= 1.0
                ]
                if not in_range:
                    continue
                d.add_node(new, in_range)
            assert d.is_valid(), f"invalid after step {step}"
        assert d.repair_count >= 1
