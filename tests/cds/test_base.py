"""Unit tests for CDSResult."""

import pytest

from repro.cds import CDSResult


class TestCDSResult:
    def test_size_and_container(self, path5):
        r = CDSResult(algorithm="x", nodes=frozenset([1, 2, 3]))
        assert r.size == 3
        assert len(r) == 3
        assert 2 in r and 0 not in r

    def test_phase_split_must_match(self):
        with pytest.raises(ValueError):
            CDSResult(
                algorithm="x",
                nodes=frozenset([1, 2]),
                dominators=(1,),
                connectors=(3,),
            )

    def test_phase_split_ok(self):
        r = CDSResult(
            algorithm="x",
            nodes=frozenset([1, 2]),
            dominators=(1,),
            connectors=(2,),
        )
        assert r.dominators == (1,)

    def test_no_phase_split_allowed(self):
        r = CDSResult(algorithm="x", nodes=frozenset([1]))
        assert r.dominators == ()

    def test_is_valid(self, path5):
        good = CDSResult(algorithm="x", nodes=frozenset([1, 2, 3]))
        bad = CDSResult(algorithm="x", nodes=frozenset([0, 1]))
        assert good.is_valid(path5)
        assert not bad.is_valid(path5)

    def test_validate_returns_self(self, path5):
        r = CDSResult(algorithm="x", nodes=frozenset([1, 2, 3]))
        assert r.validate(path5) is r

    def test_validate_raises_on_bad(self, path5):
        r = CDSResult(algorithm="x", nodes=frozenset([0]))
        with pytest.raises(AssertionError):
            r.validate(path5)

    def test_meta_defaults_empty(self):
        assert CDSResult(algorithm="x", nodes=frozenset([1])).meta == {}
