"""Randomized equivalence of the array kernel vs the indexed/bitset tiers.

The :class:`ArrayGainTracker` vectorization of greedy gain tracking is
only admissible because it is bit-identical to the reference code:
same node sequences, same gains, same tie-break resolutions, on every
instance.  These tests lock all three kernels together at the solver
level across the shared 50-instance randomized UDG suite (all
tie-break modes) and step-lock :class:`ArrayGainTracker` against
:class:`LazyGainTracker`, plus counter-determinism and error-contract
parity.
"""

import random

import pytest

from repro.cds import LazyGainTracker, greedy_connector_cds, waf_cds
from repro.cds.array_gain import ArrayGainTracker
from repro.graphs import Graph, IndexedGraph, random_connected_udg
from repro.graphs.array import ArrayGraph
from repro.mis import first_fit_mis
from repro.mis.first_fit import first_fit_mis_nodes
from repro.obs import OBS

TIE_BREAKS = ("min", "max", "degree")

#: The acceptance suite: 50 seeded connected UDGs across three sizes.
SUITE_PARAMS = [
    (18 + 14 * (seed % 3), (3.8, 4.6, 5.4)[seed % 3], seed) for seed in range(50)
]


@pytest.fixture(scope="module")
def equivalence_suite():
    """Fifty seeded connected UDGs (n in {18, 32, 46})."""
    return [
        random_connected_udg(n, side, seed=seed)[1]
        for n, side, seed in SUITE_PARAMS
    ]


def _tracker_pair(graph):
    """(lazy, array) trackers seeded with the same phase-1 MIS."""
    mis = first_fit_mis(graph)
    index = IndexedGraph.from_graph(graph)
    array = ArrayGraph.from_indexed(index)
    return (
        LazyGainTracker(index, mis.nodes),
        ArrayGainTracker(array, mis.nodes),
    )


class TestSolverEquivalence:
    """The acceptance sweep: 50 instances, every tie-break, three kernels."""

    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    def test_greedy_bit_identical_across_kernels(self, tie_break, equivalence_suite):
        for graph in equivalence_suite:
            a = greedy_connector_cds(graph, tie_break=tie_break, kernel="indexed")
            b = greedy_connector_cds(graph, tie_break=tie_break, kernel="bitset")
            c = greedy_connector_cds(graph, tie_break=tie_break, kernel="array")
            assert a.dominators == b.dominators == c.dominators
            assert a.connectors == b.connectors == c.connectors  # order included
            assert a.nodes == b.nodes == c.nodes
            assert a.meta == b.meta == c.meta  # root, gain_history, q_history

    def test_waf_bit_identical_across_kernels(self, equivalence_suite):
        for graph in equivalence_suite:
            a = waf_cds(graph, kernel="indexed")
            b = waf_cds(graph, kernel="array")
            assert a.dominators == b.dominators
            assert a.connectors == b.connectors
            assert a.meta == b.meta

    def test_mis_bit_identical_across_kernels(self, equivalence_suite):
        for graph in equivalence_suite:
            reference = first_fit_mis(graph).nodes
            index = IndexedGraph.from_graph(graph)
            array = ArrayGraph.from_indexed(index)
            assert first_fit_mis_nodes(graph, index=index) == reference
            assert first_fit_mis_nodes(graph, index=array) == reference


class TestTrackerStepEquivalence:
    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    def test_lockstep_selection(self, tie_break, udg_suite):
        for _, graph in udg_suite:
            lazy, array = _tracker_pair(graph)
            while lazy.component_count > 1:
                expected = lazy.best_connector(tie_break)
                assert array.best_connector(tie_break) == expected
                lazy.add(expected[0])
                realized = array.add(expected[0])
                assert realized == expected[1]
                assert array.component_count == lazy.component_count
            assert array.component_count == 1
            assert array.included == lazy.included

    @pytest.mark.parametrize("seed", range(4))
    def test_off_policy_adds(self, seed, udg_suite):
        # The caches must stay exact under arbitrary add sequences, not
        # just the argmax ones the greedy produces.
        rng = random.Random(300 + seed)
        _, graph = udg_suite[seed % len(udg_suite)]
        lazy, array = _tracker_pair(graph)
        outside = [v for v in graph.nodes() if v not in lazy.included]
        rng.shuffle(outside)
        for w in outside:
            if lazy.component_count > 1:
                tie_break = TIE_BREAKS[rng.randrange(3)]
                assert array.best_connector(tie_break) == (
                    lazy.best_connector(tie_break)
                )
            assert array.add(w) == lazy.add(w)

    def test_read_api_parity(self, udg_suite):
        _, graph = udg_suite[2]
        lazy, array = _tracker_pair(graph)
        assert array.dominators == lazy.dominators
        assert array.included == lazy.included
        for w in graph.nodes():
            assert array.gain(w) == lazy.gain(w)
            if w not in lazy.included:
                assert len(array.adjacent_components(w)) == len(
                    lazy.adjacent_components(w)
                )

    def test_unorderable_nodes_fall_back_like_lazy(self):
        # Mixed node types break "<": both trackers must resolve ties
        # through the same deterministic fallback.
        graph = Graph(edges=[(0, "a"), ("a", 1), (1, "b"), ("b", 2)])
        mis = first_fit_mis(graph, root=0)
        index = IndexedGraph.from_graph(graph)
        lazy = LazyGainTracker(index, mis.nodes)
        array = ArrayGainTracker(ArrayGraph.from_indexed(index), mis.nodes)
        while lazy.component_count > 1:
            expected = lazy.best_connector("min")
            assert array.best_connector("min") == expected
            lazy.add(expected[0])
            array.add(expected[0])


class TestDeterministicCounters:
    def _counters(self, fn):
        with OBS.capture() as reg:
            fn()
            return dict(reg.counters())

    def test_greedy_array_counters_repeat(self, udg_suite):
        _, graph = udg_suite[0]
        run = lambda: greedy_connector_cds(graph, kernel="array")  # noqa: E731
        assert self._counters(run) == self._counters(run)

    def test_waf_array_counters_repeat(self, udg_suite):
        _, graph = udg_suite[1]
        run = lambda: waf_cds(graph, kernel="array")  # noqa: E731
        assert self._counters(run) == self._counters(run)

    def test_array_counters_present(self, udg_suite):
        _, graph = udg_suite[0]
        counters = self._counters(
            lambda: greedy_connector_cds(graph, kernel="array")
        )
        assert counters.get("array.rescore_batches", 0) > 0
        assert counters.get("array.gather_elements", 0) > 0
        assert counters.get("gain.evaluations", 0) > 0
        assert counters.get("mis.selected", 0) > 0

    def test_shared_semantic_counters_match_indexed(self, udg_suite):
        # Kernel-private work counters differ; the semantic ones (MIS
        # choices, connector count, DSU unions) must be bit-identical.
        shared = ("mis.selected", "mis.nodes_scanned",
                  "greedy.connectors_chosen", "gain.dsu_unions")
        _, graph = udg_suite[3]
        a = self._counters(lambda: greedy_connector_cds(graph, kernel="indexed"))
        c = self._counters(lambda: greedy_connector_cds(graph, kernel="array"))
        for name in shared:
            assert a.get(name) == c.get(name), name


class TestErrorContractParity:
    """Same error cases and messages as :class:`LazyGainTracker`."""

    def _array(self, graph):
        return ArrayGraph.from_indexed(IndexedGraph.from_graph(graph))

    def test_empty_dominators_rejected(self, path5):
        with pytest.raises(ValueError, match="non-empty"):
            ArrayGainTracker(self._array(path5), [])

    def test_unknown_dominator_rejected(self, path5):
        with pytest.raises(KeyError, match="not in graph"):
            ArrayGainTracker(self._array(path5), [99])

    def test_unknown_tie_break_rejected(self, path5):
        tracker = ArrayGainTracker(self._array(path5), [0, 4])
        with pytest.raises(ValueError, match="tie_break"):
            tracker.best_connector("median")

    def test_double_add_rejected(self, path5):
        tracker = ArrayGainTracker(self._array(path5), [0, 4])
        tracker.add(2)
        with pytest.raises(ValueError, match="already included"):
            tracker.add(2)

    def test_best_connector_when_connected_rejected(self, path5):
        tracker = ArrayGainTracker(self._array(path5), [0, 1])
        with pytest.raises(ValueError, match="already connected"):
            tracker.best_connector()

    def test_no_positive_gain_rejected(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        tracker = ArrayGainTracker(self._array(graph), [0, 2])
        with pytest.raises(ValueError, match="positive gain"):
            tracker.best_connector()
