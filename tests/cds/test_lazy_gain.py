"""Randomized equivalence of :class:`LazyGainTracker` vs the full rescan.

PR 2's lazy greedy is only admissible because its selections are
bit-identical to :class:`GainTracker`'s — same (node, gain) at every
round under every tie-break mode, with only the amount of re-scoring
work allowed to differ.  These tests lock the two trackers together
step by step on the randomized UDG suite and drive every shared API
surface against the reference.
"""

import random

import pytest

from repro.cds import GainTracker, LazyGainTracker, gain_of
from repro.graphs import IndexedGraph
from repro.mis import first_fit_mis
from repro.obs import OBS

TIE_BREAKS = ("min", "max", "degree")


def _pair(graph):
    """A (reference, lazy) tracker pair seeded with the same MIS."""
    mis = first_fit_mis(graph)
    index = IndexedGraph.from_graph(graph)
    return GainTracker(graph, mis.nodes), LazyGainTracker(index, mis.nodes)


class TestSelectionEquivalence:
    @pytest.mark.parametrize("tie_break", TIE_BREAKS)
    def test_same_node_gain_sequence_along_full_runs(self, tie_break, udg_suite):
        for _, graph in udg_suite:
            reference, lazy = _pair(graph)
            while reference.component_count > 1:
                expected = reference.best_connector(tie_break)
                assert lazy.best_connector(tie_break) == expected
                reference.add(expected[0])
                realized = lazy.add(expected[0])
                assert realized == expected[1]
                assert lazy.component_count == reference.component_count
            assert lazy.component_count == 1
            assert lazy.included == reference.included

    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_survives_off_policy_adds(self, seed, udg_suite):
        # Interleave adds the greedy would never pick: the caches must
        # stay exact under arbitrary add sequences, not just argmax ones.
        rng = random.Random(200 + seed)
        _, graph = udg_suite[seed % len(udg_suite)]
        reference, lazy = _pair(graph)
        outside = [v for v in graph.nodes() if v not in reference.included]
        rng.shuffle(outside)
        for w in outside:
            if reference.component_count > 1:
                tie_break = TIE_BREAKS[rng.randrange(3)]
                assert lazy.best_connector(tie_break) == (
                    reference.best_connector(tie_break)
                )
            assert lazy.add(w) == reference.add(w)

    def test_lazy_does_strictly_fewer_evaluations(self, udg_suite):
        _, graph = udg_suite[0]

        def run(make):
            mis = first_fit_mis(graph)
            tracker = make(mis)
            with OBS.capture() as reg:
                while tracker.component_count > 1:
                    tracker.add(tracker.best_connector()[0])
                return reg.counters().get("gain.evaluations", 0)

        full = run(lambda mis: GainTracker(graph, mis.nodes))
        lazy = run(
            lambda mis: LazyGainTracker(IndexedGraph.from_graph(graph), mis.nodes)
        )
        assert 0 < lazy < full


class TestMirroredReadApi:
    @pytest.mark.parametrize("seed", range(4))
    def test_gain_and_components_match_under_random_adds(self, seed, udg_suite):
        rng = random.Random(seed)
        _, graph = udg_suite[(2 * seed) % len(udg_suite)]
        reference, lazy = _pair(graph)
        included = set(reference.included)
        remaining = [v for v in graph.nodes() if v not in included]
        rng.shuffle(remaining)
        for w in remaining:
            assert lazy.gain(w) == reference.gain(w) == gain_of(graph, included, w)
            assert len(lazy.adjacent_components(w)) == len(
                reference.adjacent_components(w)
            )
            lazy.add(w)
            reference.add(w)
            included.add(w)
        assert lazy.dominators == reference.dominators
        assert lazy.included == reference.included

    def test_gain_of_included_node_is_zero(self, udg_suite):
        _, graph = udg_suite[1]
        _, lazy = _pair(graph)
        for d in lazy.dominators:
            assert lazy.gain(d) == 0


class TestErrorContract:
    def test_empty_dominators_rejected(self, path5):
        with pytest.raises(ValueError, match="non-empty"):
            LazyGainTracker(IndexedGraph.from_graph(path5), [])

    def test_unknown_dominator_rejected(self, path5):
        with pytest.raises(KeyError, match="not in graph"):
            LazyGainTracker(IndexedGraph.from_graph(path5), [99])

    def test_unknown_tie_break_rejected(self, path5):
        tracker = LazyGainTracker(IndexedGraph.from_graph(path5), [0, 4])
        with pytest.raises(ValueError, match="tie_break"):
            tracker.best_connector("median")

    def test_double_add_rejected(self, path5):
        tracker = LazyGainTracker(IndexedGraph.from_graph(path5), [0, 4])
        tracker.add(2)
        with pytest.raises(ValueError, match="already included"):
            tracker.add(2)

    def test_best_connector_when_connected_rejected(self, path5):
        tracker = LazyGainTracker(IndexedGraph.from_graph(path5), [0, 1])
        with pytest.raises(ValueError, match="already connected"):
            tracker.best_connector()

    def test_no_positive_gain_rejected(self):
        from repro.graphs import Graph

        # Two components: no connector can ever join them.
        graph = Graph(edges=[(0, 1), (2, 3)])
        tracker = LazyGainTracker(IndexedGraph.from_graph(graph), [0, 2])
        with pytest.raises(ValueError, match="positive gain"):
            tracker.best_connector()
