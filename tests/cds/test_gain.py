"""Unit tests for the gain function and incremental tracker."""

import pytest

from repro.cds import GainTracker, component_count, gain_of
from repro.graphs import Graph
from repro.mis import first_fit_mis


class TestReferenceImplementations:
    def test_component_count_of_independent_set(self, path5):
        assert component_count(path5, [0, 2, 4]) == 3

    def test_component_count_after_merge(self, path5):
        assert component_count(path5, [0, 1, 2, 4]) == 2

    def test_gain_of_merging_node(self, path5):
        # Node 1 merges components {0} and {2}.
        assert gain_of(path5, {0, 2, 4}, 1) == 1

    def test_gain_of_included_node_is_zero(self, path5):
        assert gain_of(path5, {0, 2, 4}, 2) == 0

    def test_gain_of_leaf_touching_one_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert gain_of(g, {0}, 1) == 0


class TestGainTracker:
    def test_initial_q_is_mis_size(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        assert t.component_count == 3

    def test_gain_matches_reference(self, small_udg):
        _, g = small_udg
        mis = first_fit_mis(g)
        t = GainTracker(g, mis.nodes)
        included = set(mis.nodes)
        for w in g.nodes():
            assert t.gain(w) == gain_of(g, included, w)

    def test_add_returns_realized_gain(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        assert t.add(1) == 1
        assert t.component_count == 2
        assert t.add(3) == 1
        assert t.component_count == 1

    def test_add_included_raises(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        with pytest.raises(ValueError):
            t.add(0)

    def test_gain_of_included_zero(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        assert t.gain(0) == 0

    def test_incremental_matches_reference_along_run(self, udg_suite):
        for _, g in udg_suite:
            mis = first_fit_mis(g)
            t = GainTracker(g, mis.nodes)
            included = set(mis.nodes)
            while t.component_count > 1:
                w, gain = t.best_connector()
                assert gain == gain_of(g, included, w)
                t.add(w)
                included.add(w)
                assert t.component_count == component_count(g, included)

    def test_best_connector_when_connected_raises(self, path5):
        t = GainTracker(path5, [2])
        with pytest.raises(ValueError):
            t.best_connector()

    def test_best_connector_tie_break_min(self):
        # Symmetric graph: 1 and 3 both have gain 1; 1 is smaller.
        g = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 2)])
        t = GainTracker(g, [0, 2])
        w, gain = t.best_connector()
        assert (w, gain) == (1, 1)

    def test_non_independent_dominators_tolerated(self):
        # Baselines may pass non-independent dominating sets.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        t = GainTracker(g, [0, 1, 3])
        assert t.component_count == 2

    def test_empty_dominators_rejected(self, path5):
        with pytest.raises(ValueError):
            GainTracker(path5, [])

    def test_unknown_dominator_rejected(self, path5):
        with pytest.raises(KeyError):
            GainTracker(path5, [99])

    def test_disconnected_graph_detected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        t = GainTracker(g, [0, 2])
        with pytest.raises(ValueError):
            t.best_connector()

    def test_adjacent_components(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        assert len(t.adjacent_components(1)) == 2
        assert len(t.adjacent_components(3)) == 2

    def test_included_and_dominators_views(self, path5):
        t = GainTracker(path5, [0, 2, 4])
        t.add(1)
        assert t.included == frozenset({0, 1, 2, 4})
        assert t.dominators == frozenset({0, 2, 4})
