"""Unit tests for CDS pruning."""

import pytest

from repro.cds import prune_cds, prune_result, waf_cds
from repro.graphs import Graph, is_connected_dominating_set


class TestPruneCDS:
    def test_result_still_cds(self, udg_suite):
        for _, g in udg_suite:
            cds = waf_cds(g)
            pruned = prune_cds(g, cds.nodes)
            assert is_connected_dominating_set(g, pruned)

    def test_never_larger(self, udg_suite):
        for _, g in udg_suite:
            cds = waf_cds(g)
            assert len(prune_cds(g, cds.nodes)) <= cds.size

    def test_result_is_minimal(self, udg_suite):
        # Removing any single node from the pruned set breaks it.
        for _, g in udg_suite[:4]:
            pruned = prune_cds(g, waf_cds(g).nodes)
            if len(pruned) == 1:
                continue
            for v in pruned:
                remaining = [u for u in pruned if u != v]
                assert not is_connected_dominating_set(g, remaining)

    def test_whole_vertex_set(self, star_graph):
        pruned = prune_cds(star_graph, star_graph.nodes())
        assert pruned == [0]

    def test_non_cds_input_rejected(self, path5):
        with pytest.raises(ValueError):
            prune_cds(path5, [0, 1])

    def test_subset_of_input(self, small_udg):
        _, g = small_udg
        cds = waf_cds(g)
        assert set(prune_cds(g, cds.nodes)) <= set(cds.nodes)


class TestPruneResult:
    def test_labels_and_meta(self, small_udg):
        _, g = small_udg
        result = prune_result(g, waf_cds(g))
        assert result.algorithm == "waf+prune"
        assert result.meta["after"] == result.size
        assert result.meta["before"] >= result.meta["after"]
        assert result.is_valid(g)
