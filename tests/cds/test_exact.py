"""Unit tests for the exact minimum CDS solver."""

import networkx as nx
import pytest

from repro.cds import (
    connected_domination_number,
    gamma_c_lower_bound,
    minimum_cds,
)
from repro.graphs import (
    Graph,
    chain_points,
    from_networkx,
    is_connected_dominating_set,
    unit_disk_graph,
)


class TestKnownOptima:
    def test_path5(self, path5):
        assert connected_domination_number(path5) == 3

    def test_path_n_is_n_minus_2(self):
        for n in (3, 4, 6, 8):
            g = unit_disk_graph(chain_points(n, 1.0))
            assert connected_domination_number(g) == n - 2

    def test_cycle6(self, cycle6):
        assert connected_domination_number(cycle6) == 4

    def test_star(self, star_graph):
        assert connected_domination_number(star_graph) == 1

    def test_complete(self, complete4):
        assert connected_domination_number(complete4) == 1

    def test_two_triangles_bridge(self, two_triangles_bridge):
        assert connected_domination_number(two_triangles_bridge) == 2

    def test_single_node(self):
        assert minimum_cds(Graph(nodes=[5])) == [5]

    def test_two_nodes(self):
        g = Graph(edges=[(0, 1)])
        assert len(minimum_cds(g)) == 1

    def test_petersen(self):
        # gamma_c of the Petersen graph is 4.
        g = from_networkx(nx.petersen_graph())
        assert connected_domination_number(g) == 4

    def test_grid_3x3(self):
        g = from_networkx(nx.grid_2d_graph(3, 3))
        assert connected_domination_number(g) == 3


class TestValidity:
    def test_result_is_cds(self, udg_suite):
        for _, g in udg_suite:
            opt = minimum_cds(g)
            assert is_connected_dominating_set(g, opt)

    def test_no_smaller_cds_exists_bruteforce(self):
        # Cross-check optimality by brute force on tiny graphs.
        import itertools

        for seed in range(3):
            nxg = nx.connected_watts_strogatz_graph(9, 3, 0.4, seed=seed)
            g = from_networkx(nxg)
            opt = len(minimum_cds(g))
            smaller_exists = False
            nodes = g.nodes()
            for k in range(1, opt):
                for subset in itertools.combinations(nodes, k):
                    if is_connected_dominating_set(g, subset):
                        smaller_exists = True
                        break
                if smaller_exists:
                    break
            assert not smaller_exists

    def test_upper_bound_hint_respected(self, small_udg):
        _, g = small_udg
        baseline = len(minimum_cds(g))
        hinted = len(minimum_cds(g, upper_bound=baseline))
        assert hinted == baseline

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            minimum_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            minimum_cds(Graph(edges=[(0, 1)], nodes=[2]))


class TestLowerBound:
    def test_lower_bound_below_optimum(self, udg_suite):
        for _, g in udg_suite:
            assert gamma_c_lower_bound(g) <= connected_domination_number(g)

    def test_lower_bound_at_least_one(self, complete4):
        assert gamma_c_lower_bound(complete4) == 1

    def test_single_node(self):
        assert gamma_c_lower_bound(Graph(nodes=[0])) == 1

    def test_chain_lower_bound_nontrivial(self):
        g = unit_disk_graph(chain_points(12, 1.0))
        lb = gamma_c_lower_bound(g)
        assert lb >= 2
