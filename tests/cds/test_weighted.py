"""Tests for node-weighted CDS construction."""

import pytest

from repro.cds.weighted import cds_weight, weighted_greedy_cds
from repro.graphs import Graph


class TestWeightedGreedy:
    def test_valid_on_suite_uniform_weights(self, udg_suite):
        for _, g in udg_suite:
            result = weighted_greedy_cds(g, lambda v: 1.0)
            assert result.is_valid(g)

    def test_valid_on_suite_random_weights(self, udg_suite):
        import random

        rng = random.Random(0)
        for _, g in udg_suite:
            weights = {v: rng.uniform(0.5, 5.0) for v in g.nodes()}
            result = weighted_greedy_cds(g, weights)
            assert result.is_valid(g)
            assert result.meta["total_weight"] == pytest.approx(
                cds_weight(result, weights)
            )

    def test_avoids_heavy_hub_when_cheap_alternative(self):
        # Two hubs both dominating everything; the light one is chosen.
        g = Graph()
        for leaf in range(2, 8):
            g.add_edge(0, leaf)
            g.add_edge(1, leaf)
        weights = {0: 100.0, 1: 1.0}
        weights.update({leaf: 1.0 for leaf in range(2, 8)})
        result = weighted_greedy_cds(g, weights)
        assert result.is_valid(g)
        assert 0 not in result.nodes
        assert 1 in result.nodes

    def test_weight_tradeoff_vs_unweighted(self, udg_suite):
        # On adversarial weights the weighted greedy never costs more
        # than the unweighted Guha-Khuller choice evaluated under the
        # same weights... not guaranteed in theory, so check the looser
        # aggregate shape instead.
        import random

        from repro.baselines import guha_khuller_cds

        rng = random.Random(1)
        total_weighted = total_unweighted = 0.0
        for _, g in udg_suite:
            weights = {v: rng.uniform(0.1, 10.0) for v in g.nodes()}
            total_weighted += cds_weight(weighted_greedy_cds(g, weights), weights)
            total_unweighted += cds_weight(guha_khuller_cds(g), weights)
        assert total_weighted <= total_unweighted * 1.1

    def test_single_node(self):
        result = weighted_greedy_cds(Graph(nodes=[0]), {0: 2.0})
        assert result.size == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_greedy_cds(Graph(), {})

    def test_disconnected_rejected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(ValueError):
            weighted_greedy_cds(g, lambda v: 1.0)

    def test_nonpositive_weight_rejected(self, path5):
        with pytest.raises(ValueError):
            weighted_greedy_cds(path5, lambda v: 0.0)

    def test_infinite_weight_rejected(self, path5):
        with pytest.raises(ValueError):
            weighted_greedy_cds(path5, lambda v: float("inf"))

    def test_mapping_and_callable_agree(self, small_udg):
        _, g = small_udg
        mapping = {v: 1.0 + (hash(v) % 7) for v in g.nodes()}
        a = weighted_greedy_cds(g, mapping)
        b = weighted_greedy_cds(g, mapping.__getitem__)
        assert a.nodes == b.nodes


class TestCdsWeight:
    def test_weight_of_result(self, path5):
        from repro.cds import CDSResult

        result = CDSResult(algorithm="x", nodes=frozenset([1, 2, 3]))
        assert cds_weight(result, {i: float(i) for i in range(5)}) == 6.0

    def test_callable_weight(self, path5):
        from repro.cds import CDSResult

        result = CDSResult(algorithm="x", nodes=frozenset([1, 2]))
        assert cds_weight(result, lambda v: 2.0) == 4.0
