"""Unit tests for the Steiner-path connector variant."""

import pytest

from repro.cds import steiner_cds, steiner_connectors
from repro.graphs import Graph, induced_is_connected
from repro.mis import first_fit_mis


class TestSteinerCDS:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert steiner_cds(g).is_valid(g)

    def test_single_node(self):
        g = Graph(nodes=[0])
        assert steiner_cds(g).nodes == frozenset([0])

    def test_deterministic(self, small_udg):
        _, g = small_udg
        assert steiner_cds(g).nodes == steiner_cds(g).nodes


class TestSteinerConnectors:
    def test_connects_mis(self, small_udg):
        _, g = small_udg
        mis = first_fit_mis(g)
        connectors = steiner_connectors(g, mis.nodes)
        assert induced_is_connected(g, set(mis.nodes) | set(connectors))

    def test_handles_non_two_hop_dominators(self):
        # Dominators three hops apart: the paper's phase 2 rules assume
        # 2-hop separation, but the Steiner variant bridges any gap.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        connectors = steiner_connectors(g, [0, 3])
        assert set(connectors) == {1, 2}

    def test_already_connected_no_connectors(self, path5):
        assert steiner_connectors(path5, [1, 2, 3]) == []

    def test_unconnectable_raises(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(ValueError):
            steiner_connectors(g, [0, 2])

    def test_uses_shortest_paths(self):
        # Two dominator endpoints with a 2-node path and a 3-node detour:
        # the shortest bridge is chosen.
        g = Graph(
            edges=[
                (0, 1), (1, 5),         # short path through 1
                (0, 2), (2, 3), (3, 4), (4, 5),  # long detour
            ]
        )
        connectors = steiner_connectors(g, [0, 5])
        assert connectors == [1]
