"""Unit tests for the neighborhood packing counters."""

from repro.analysis import (
    empirical_max_packing,
    lemma1_quantity,
    lemma2_quantity,
    packing_count,
    points_near,
    symmetric_difference_count,
)
from repro.geometry import Point, figure1_two_star, is_independent


class TestPointsNear:
    def test_within_unit(self):
        independent = [Point(0.5, 0), Point(2, 0), Point(0, 0.9)]
        assert set(points_near(independent, Point(0, 0))) == {
            Point(0.5, 0),
            Point(0, 0.9),
        }

    def test_boundary_included(self):
        assert points_near([Point(1, 0)], Point(0, 0)) == [Point(1, 0)]


class TestPackingCount:
    def test_counts_union_not_multiset(self):
        independent = [Point(0.5, 0)]
        # The point is in both disks; counted once.
        assert packing_count(independent, [Point(0, 0), Point(1, 0)]) == 1

    def test_figure1(self):
        centers, witness = figure1_two_star()
        assert packing_count(witness, centers) == 8


class TestSymmetricDifference:
    def test_disjoint_neighborhoods(self):
        independent = [Point(0.2, 0), Point(4.8, 0)]
        assert symmetric_difference_count(independent, Point(0, 0), Point(5, 0)) == 2

    def test_shared_point_cancels(self):
        independent = [Point(0.5, 0)]
        assert symmetric_difference_count(independent, Point(0, 0), Point(1, 0)) == 0

    def test_lemma1_alias(self):
        independent = [Point(0.2, 0)]
        o, u = Point(0, 0), Point(0.9, 0)
        assert lemma1_quantity(independent, o, u) == symmetric_difference_count(
            independent, o, u
        )

    def test_figure1_achieves_seven_or_less(self):
        # Lemma 1 tightness probe: the 2-star witness has |I0|=4 around o
        # and |I1|=4 around u1, overlapping in at least one point.
        (o, u1), witness = figure1_two_star()
        assert lemma1_quantity(witness, o, u1) <= 7


class TestLemma2Quantity:
    def test_premise_detection(self):
        o = Point(0, 0)
        others = [Point(0.9, 0)]
        # One independent point near o but not near u1: premise holds.
        independent = [Point(-0.9, 0)]
        count, premise = lemma2_quantity(independent, o, others)
        assert premise
        assert count == 0

    def test_no_premise_when_covered(self):
        o = Point(0, 0)
        others = [Point(0.5, 0)]
        independent = [Point(0.4, 0)]  # near o AND near u1
        _, premise = lemma2_quantity(independent, o, others)
        assert not premise

    def test_count_excludes_I_of_o(self):
        o = Point(0, 0)
        others = [Point(1.0, 0)]
        independent = [Point(1.8, 0), Point(0.3, 0.2)]
        count, _ = lemma2_quantity(independent, o, others)
        assert count == 1  # only the far point


class TestEmpiricalMaxPacking:
    def test_independent_and_inside(self):
        centers = [Point(0, 0), Point(1, 0)]
        found = empirical_max_packing(centers, step=0.3)
        assert is_independent(found)
        from repro.geometry import in_neighborhood

        assert all(in_neighborhood(p, centers) for p in found)

    def test_respects_phi2(self):
        centers = [Point(0, 0), Point(0.8, 0)]
        found = empirical_max_packing(centers, step=0.25)
        assert packing_count(found, centers) <= 8

    def test_exact_mode_on_small_candidate_sets(self):
        centers = [Point(0, 0)]
        found = empirical_max_packing(centers, step=0.5, exact_limit=100)
        assert is_independent(found)
        assert len(found) <= 5
