"""Tests for the adversarial ratio search."""

import pytest

from repro.analysis import adversarial_ratio_search
from repro.cds import greedy_connector_cds, waf_cds
from repro.cds.bounds import greedy_bound_this_paper, waf_bound_this_paper
from repro.graphs import unit_disk_graph
from repro.graphs.traversal import is_connected


class TestAdversarialSearch:
    def test_finds_above_unity(self):
        found = adversarial_ratio_search(10, waf_cds, iterations=40, seed=0)
        assert found.best_ratio > 1.0

    def test_instance_is_reproducible(self):
        found = adversarial_ratio_search(10, waf_cds, iterations=40, seed=0)
        graph = unit_disk_graph(list(found.best_points))
        assert is_connected(graph)
        result = waf_cds(graph)
        assert result.size == found.cds_size
        from repro.cds import connected_domination_number

        assert connected_domination_number(graph) == found.gamma_c
        assert found.best_ratio == found.cds_size / found.gamma_c

    def test_never_violates_proven_bounds(self):
        for algorithm, bound in (
            (waf_cds, waf_bound_this_paper),
            (greedy_connector_cds, greedy_bound_this_paper),
        ):
            found = adversarial_ratio_search(10, algorithm, iterations=40, seed=1)
            assert found.cds_size <= float(bound(found.gamma_c))

    def test_deterministic_per_seed(self):
        a = adversarial_ratio_search(9, waf_cds, iterations=30, seed=5)
        b = adversarial_ratio_search(9, waf_cds, iterations=30, seed=5)
        assert a.best_ratio == b.best_ratio
        assert a.best_points == b.best_points

    def test_beats_or_matches_random_baseline(self):
        # The search starts from random/chain seeds; its best can only
        # be >= the best seed's ratio.
        found = adversarial_ratio_search(10, greedy_connector_cds, iterations=60, seed=2)
        assert found.best_ratio >= 1.0
        assert found.iterations == 60

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            adversarial_ratio_search(2, waf_cds)

    def test_algorithm_label_propagated(self):
        found = adversarial_ratio_search(8, greedy_connector_cds, iterations=20, seed=3)
        assert found.algorithm == "greedy-connector"
