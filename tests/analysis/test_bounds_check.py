"""Unit tests for the theorem checkers."""

import pytest

from repro.analysis import (
    BoundCheck,
    check_corollary7,
    check_lemma9_trace,
    check_ratio_bound,
    check_theorem3,
    check_theorem6,
    prefix_decomposition,
)
from repro.cds import connected_domination_number, greedy_connector_cds, waf_cds
from repro.geometry import figure1_three_star, figure2_linear, Point


class TestBoundCheck:
    def test_holds_and_slack(self):
        c = BoundCheck(name="x", lhs=3.0, rhs=5.0)
        assert c.holds and c.slack == 2.0

    def test_equality_holds(self):
        assert BoundCheck(name="x", lhs=5.0, rhs=5.0).holds

    def test_violation(self):
        assert not BoundCheck(name="x", lhs=6.0, rhs=5.0).holds


class TestTheoremCheckers:
    def test_theorem3_on_figure1(self):
        star, witness = figure1_three_star()
        check = check_theorem3(star, witness)
        assert check.holds
        assert check.lhs == check.rhs == 12

    def test_theorem3_rejects_non_star(self):
        with pytest.raises(ValueError):
            check_theorem3([Point(0, 0), Point(5, 0)], [])

    def test_theorem6_on_figure2(self):
        centers, witness = figure2_linear(6)
        check = check_theorem6(centers, witness)
        assert check.holds
        assert check.lhs == 21

    def test_corollary7(self):
        assert check_corollary7(alpha=12, gamma_c=3).holds
        assert not check_corollary7(alpha=13, gamma_c=3).holds

    def test_ratio_bound_dispatch(self, small_udg):
        _, g = small_udg
        gamma_c = connected_domination_number(g)
        assert check_ratio_bound(waf_cds(g), gamma_c).holds
        assert check_ratio_bound(greedy_connector_cds(g), gamma_c).holds

    def test_ratio_bound_unknown_algorithm_always_holds(self):
        from repro.cds import CDSResult

        r = CDSResult(algorithm="mystery", nodes=frozenset(range(100)))
        assert check_ratio_bound(r, 1).holds


class TestLemma9Trace:
    def test_holds_on_suite(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            for check in check_lemma9_trace(result, gamma_c):
                assert check.holds

    def test_requires_trace_meta(self, small_udg):
        _, g = small_udg
        with pytest.raises(ValueError):
            check_lemma9_trace(waf_cds(g), 3)


class TestPrefixDecomposition:
    def test_partition_sums_to_connector_count(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            d = prefix_decomposition(result.meta["q_history"], gamma_c)
            assert d.c1 + d.c2 + d.c3 == len(result.connectors)

    def test_caps_hold_on_suite(self, udg_suite):
        for _, g in udg_suite:
            result = greedy_connector_cds(g)
            gamma_c = connected_domination_number(g)
            d = prefix_decomposition(result.meta["q_history"], gamma_c)
            for check in d.checks():
                assert check.holds, check

    def test_synthetic_history(self):
        # gamma_c = 3: t1 = floor(11)-3 = 8, t2 = 7.
        q = [12, 8, 6, 4, 2, 1]
        d = prefix_decomposition(q, 3)
        assert d.c1 == 1  # q reaches t1 = 8 after one pick
        assert d.c2 == 1  # q reaches t2 = 7 one pick later (q = 6)
        assert d.c3 == 3  # the remaining picks

    def test_gamma_one(self):
        d = prefix_decomposition([4, 1], 1)
        assert d.c1 + d.c2 + d.c3 == 1
        assert all(c.holds for c in d.checks())

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            prefix_decomposition([3, 1], 0)


class TestConditionalVariants:
    def test_theorem3_conditional_on_random_stars(self):
        from repro.analysis import empirical_max_packing
        from repro.analysis.bounds_check import check_theorem3_conditional
        from repro.experiments.instances import random_star

        applied = 0
        for n in (2, 3, 4):
            for seed in range(3):
                star = random_star(n, seed)
                packing = empirical_max_packing(star, step=0.3)
                check = check_theorem3_conditional(star, packing)
                if check is not None:
                    applied += 1
                    assert check.holds, check
        assert applied >= 1

    def test_theorem3_conditional_none_when_member_sees_five(self):
        from repro.analysis.bounds_check import check_theorem3_conditional
        from repro.geometry import one_star_packing

        star, witness = one_star_packing()  # the center sees all 5
        assert check_theorem3_conditional(star, witness) is None

    def test_theorem3_conditional_none_for_large_stars(self):
        from repro.analysis.bounds_check import check_theorem3_conditional
        from repro.experiments.instances import random_star

        assert check_theorem3_conditional(random_star(5, 0), []) is None

    def test_theorem6_intersecting_variant(self):
        from repro.analysis.bounds_check import check_theorem6_variants
        from repro.geometry import Point

        # V = 2 chained points; I includes one of them: both premises.
        connected = [Point(0, 0), Point(0.9, 0)]
        independent = [Point(0, 0), Point(1.95, 0)]
        checks = check_theorem6_variants(connected, independent)
        names = {c.name for c in checks}
        assert any("intersecting" in n for n in names)
        assert all(c.holds for c in checks)

    def test_theorem6_capped_variant_on_chains(self):
        from repro.analysis.bounds_check import check_theorem6_variants
        from repro.analysis import empirical_max_packing, points_near
        from repro.graphs import chain_points

        centers = chain_points(5, 1.0)
        packing = empirical_max_packing(centers, step=0.3)
        checks = check_theorem6_variants(centers, packing)
        for check in checks:
            assert check.holds, check

    def test_theorem6_variants_require_two_points(self):
        import pytest

        from repro.analysis.bounds_check import check_theorem6_variants
        from repro.geometry import Point

        with pytest.raises(ValueError):
            check_theorem6_variants([Point(0, 0)], [])
