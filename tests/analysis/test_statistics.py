"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.analysis import summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4

    def test_stdev_sample(self):
        s = summarize([2, 4, 4, 4, 5, 5, 7, 9])
        assert math.isclose(s.stdev, 2.138, rel_tol=1e-3)

    def test_singleton(self):
        s = summarize([5])
        assert s.stdev == 0.0
        assert s.ci95_half_width() == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_shrinks_with_count(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0] * 2)
        assert narrow.ci95_half_width() < wide.ci95_half_width()

    def test_format(self):
        text = summarize([1, 2, 3]).format(precision=1)
        assert "2.0" in text and "[1.0, 3.0]" in text

    def test_accepts_any_numeric(self):
        s = summarize([1, 2.5])
        assert s.mean == 1.75
