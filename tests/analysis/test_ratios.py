"""Unit tests for ratio measurement."""

import pytest

from repro.analysis import GammaEstimate, estimate_gamma_c, measure_ratio
from repro.cds import connected_domination_number, greedy_connector_cds, waf_cds
from repro.graphs import Graph


class TestEstimateGammaC:
    def test_exact_for_small(self, small_udg):
        _, g = small_udg
        est = estimate_gamma_c(g)
        assert est.exact
        assert est.value == connected_domination_number(g)

    def test_lower_bound_mode(self, small_udg):
        _, g = small_udg
        est = estimate_gamma_c(g, exact_node_limit=5, exact_alpha_limit=60)
        assert not est.exact
        assert est.value <= connected_domination_number(g)
        assert "alpha exact" in est.method

    def test_greedy_mis_mode(self, small_udg):
        _, g = small_udg
        est = estimate_gamma_c(g, exact_node_limit=5, exact_alpha_limit=5)
        assert not est.exact
        assert est.value <= connected_domination_number(g)
        assert "greedy" in est.method

    def test_lower_bound_at_least_one(self, complete4):
        est = estimate_gamma_c(complete4, exact_node_limit=1, exact_alpha_limit=1)
        assert est.value >= 1


class TestMeasureRatio:
    def test_ratio_computation(self, small_udg):
        _, g = small_udg
        m = measure_ratio(g, waf_cds)
        assert m.algorithm == "waf"
        assert m.ratio == m.cds_size / m.gamma.value
        assert m.ratio >= 1.0

    def test_precomputed_gamma_reused(self, small_udg):
        _, g = small_udg
        gamma = estimate_gamma_c(g)
        m1 = measure_ratio(g, waf_cds, gamma=gamma)
        m2 = measure_ratio(g, greedy_connector_cds, gamma=gamma)
        assert m1.gamma is gamma and m2.gamma is gamma

    def test_invalid_algorithm_detected(self, path5):
        from repro.cds import CDSResult

        def broken(graph):
            return CDSResult(algorithm="broken", nodes=frozenset([0]))

        with pytest.raises(AssertionError):
            measure_ratio(path5, broken)

    def test_ratio_below_paper_bounds(self, udg_suite):
        for _, g in udg_suite:
            gamma = estimate_gamma_c(g)
            waf_m = measure_ratio(g, waf_cds, gamma=gamma)
            greedy_m = measure_ratio(g, greedy_connector_cds, gamma=gamma)
            assert waf_m.ratio <= 22 / 3
            assert greedy_m.ratio <= 115 / 18
