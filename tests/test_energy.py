"""Tests for energy accounting and backbone rotation."""

import pytest

from repro.energy import EnergyModel, simulate_epochs
from repro.graphs import Graph, random_connected_udg


class TestEnergyModel:
    def test_initial_uniform(self, path5):
        model = EnergyModel(path5, initial=50.0)
        assert all(c == 50.0 for c in model.charge.values())

    def test_initial_mapping(self, path5):
        model = EnergyModel(path5, initial={v: 10.0 + v for v in path5.nodes()})
        assert model.charge[3] == 13.0

    def test_spend_epoch_charges_duty(self, path5):
        model = EnergyModel(path5, initial=10.0, relay_cost=2.0, idle_cost=1.0)
        model.spend_epoch([1, 2])
        assert model.charge[1] == 7.0  # idle + relay
        assert model.charge[0] == 9.0  # idle only
        assert model.epochs == 1

    def test_alive_filtering(self, path5):
        model = EnergyModel(path5, initial=1.5, relay_cost=1.0, idle_cost=1.0)
        model.spend_epoch([0])
        assert 0 not in model.alive()
        assert 1 in model.alive()
        assert not model.all_alive()

    def test_weights_inverse(self, path5):
        model = EnergyModel(path5, initial=10.0)
        model.spend_epoch([0])
        weights = model.weights()
        assert weights[0] > weights[1]

    def test_invalid_args(self, path5):
        with pytest.raises(ValueError):
            EnergyModel(path5, initial=0.0)
        with pytest.raises(ValueError):
            EnergyModel(path5, relay_cost=-1.0)


class TestSimulateEpochs:
    @pytest.fixture(scope="class")
    def topology(self):
        return random_connected_udg(30, 4.6, seed=5)[1]

    def test_policies_run_and_report(self, topology):
        for policy in ("static", "rotate", "minimal"):
            report = simulate_epochs(
                topology, policy=policy, epochs=10, initial=100.0
            )
            assert report.policy == policy
            assert 0 <= report.epochs_survived <= 10
            assert report.backbone_sizes

    def test_rotation_extends_lifetime(self):
        # Dense topology: enough alternative backbones to rotate through.
        # (In sparse graphs a cut-vertex sits in *every* CDS, capping the
        # lifetime regardless of policy.)
        dense = random_connected_udg(30, 2.8, seed=5)[1]
        static = simulate_epochs(
            dense, policy="static", epochs=120, initial=60.0, relay_cost=5.0
        )
        rotate = simulate_epochs(
            dense, policy="rotate", epochs=120, initial=60.0, relay_cost=5.0
        )
        # The headline claim of rotation: strictly longer lifetime than
        # a static backbone under relay pressure.
        assert rotate.epochs_survived > static.epochs_survived

    def test_rotation_spreads_duty(self, topology):
        static = simulate_epochs(topology, policy="static", epochs=20, initial=200.0)
        rotate = simulate_epochs(topology, policy="rotate", epochs=20, initial=200.0)
        assert rotate.distinct_backbone_nodes > static.distinct_backbone_nodes

    def test_unknown_policy(self, topology):
        with pytest.raises(ValueError):
            simulate_epochs(topology, policy="chaos")

    def test_static_backbone_constant(self, topology):
        report = simulate_epochs(topology, policy="static", epochs=8, initial=500.0)
        assert len(set(report.backbone_sizes)) == 1
