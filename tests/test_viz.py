"""Tests for the terminal renderer."""

import pytest

from repro.cds import greedy_connector_cds
from repro.geometry import Point
from repro.graphs import random_connected_udg
from repro.viz import render_backbone_legend, render_deployment


class TestRenderDeployment:
    def test_empty(self):
        assert "empty" in render_deployment([])

    def test_roles_rendered(self):
        pts, g = random_connected_udg(20, 4.0, seed=1)
        result = greedy_connector_cds(g)
        text = render_deployment(pts, result)
        assert "D" in text
        assert "o" in text
        # Connectors exist on this instance.
        if result.connectors:
            assert "C" in text

    def test_without_result_all_plain(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 0)]
        text = render_deployment(pts)
        assert "D" not in text and "C" not in text
        assert text.count("o") == 3

    def test_border(self):
        pts = [Point(0, 0), Point(1, 1)]
        framed = render_deployment(pts, border=True)
        assert framed.splitlines()[0].startswith("+")
        bare = render_deployment(pts, border=False)
        assert not bare.splitlines()[0].startswith("+")

    def test_width_respected(self):
        pts = [Point(0, 0), Point(3, 2)]
        text = render_deployment(pts, width=30, border=True)
        for line in text.splitlines():
            assert len(line) == 32  # width + 2 border chars

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_deployment([Point(0, 0)], width=2)

    def test_crowded_cell_marker(self):
        pts = [Point(0, 0), Point(0.001, 0.001), Point(5, 5)]
        text = render_deployment(pts, width=10)
        assert "*" in text

    def test_dominator_wins_cell_conflicts(self):
        # A dominator and an ordinary node in one cell: D shows.
        from repro.cds import CDSResult

        pts = [Point(0, 0), Point(0.001, 0.0), Point(5, 5)]
        result = CDSResult(
            algorithm="manual",
            nodes=frozenset([pts[0], pts[2]]),
            dominators=(pts[0], pts[2]),
            connectors=(),
        )
        text = render_deployment(pts, result, width=10)
        assert "D" in text

    def test_legend(self):
        legend = render_backbone_legend()
        for glyph in ("D", "C", "o", "*"):
            assert glyph in legend
