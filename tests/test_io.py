"""Tests for deployment / result persistence."""

import pytest

from repro.cds import greedy_connector_cds
from repro.geometry import Point
from repro.graphs import random_connected_udg, unit_disk_graph
from repro.io import load_points, load_result, save_points, save_result


class TestPointsRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        pts, _ = random_connected_udg(15, 3.0, seed=1)
        path = tmp_path / "deploy.csv"
        save_points(pts, path)
        assert load_points(path) == pts

    def test_topology_survives_roundtrip(self, tmp_path):
        pts, g = random_connected_udg(20, 4.0, seed=2)
        path = tmp_path / "deploy.csv"
        save_points(pts, path)
        g2 = unit_disk_graph(load_points(path))
        assert {frozenset(e) for e in g.edges()} == {
            frozenset(e) for e in g2.edges()
        }

    def test_empty_deployment(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_points([], path)
        assert load_points(path) == []

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\n")
        with pytest.raises(ValueError):
            load_points(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1.0\n")
        with pytest.raises(ValueError):
            load_points(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\nfoo,bar\n")
        with pytest.raises(ValueError):
            load_points(path)


class TestResultRoundtrip:
    def test_point_node_result(self, tmp_path):
        _, g = random_connected_udg(18, 3.8, seed=3)
        result = greedy_connector_cds(g)
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.algorithm == result.algorithm
        assert back.nodes == result.nodes
        assert set(back.dominators) == set(result.dominators)
        assert back.is_valid(g)

    def test_int_node_result(self, tmp_path, path5):
        from repro.cds import CDSResult

        result = CDSResult(algorithm="manual", nodes=frozenset([1, 2, 3]))
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.nodes == frozenset([1, 2, 3])
        assert back.is_valid(path5)

    def test_meta_json_serializable_kept(self, tmp_path, path5):
        from repro.cds import CDSResult

        result = CDSResult(
            algorithm="manual",
            nodes=frozenset([1, 2, 3]),
            meta={"note": "hello", "weird": object()},
        )
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.meta == {"note": "hello"}  # unserializable dropped


class TestCLICSVExport:
    def test_csv_written(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["F1F2", "--csv", str(tmp_path / "out")]) == 0
        files = sorted((tmp_path / "out").glob("*.csv"))
        assert len(files) == 2
        assert files[0].read_text().startswith("instance,")
