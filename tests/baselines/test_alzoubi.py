"""Unit tests for the Alzoubi message-optimal baseline."""

import pytest

from repro.baselines import alzoubi_cds
from repro.graphs import (
    Graph,
    chain_points,
    is_maximal_independent_set,
    unit_disk_graph,
)


class TestAlzoubi:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert alzoubi_cds(g).is_valid(g)

    def test_dominators_form_mis(self, udg_suite):
        for _, g in udg_suite:
            result = alzoubi_cds(g)
            assert is_maximal_independent_set(g, result.dominators)

    def test_valid_on_chains(self):
        # Chains exercise the 3-hop pair connection thoroughly.
        for n in (4, 7, 10, 13):
            g = unit_disk_graph(chain_points(n, 1.0))
            assert alzoubi_cds(g).is_valid(g)

    def test_single_node(self):
        assert alzoubi_cds(Graph(nodes=[0])).size == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            alzoubi_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            alzoubi_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_larger_than_the_paper_algorithms(self, udg_suite):
        # The size-for-messages tradeoff: alzoubi's CDS is at least as
        # large as the Section IV greedy in aggregate.
        from repro.cds import greedy_connector_cds

        total_alzoubi = total_greedy = 0
        for _, g in udg_suite:
            total_alzoubi += alzoubi_cds(g).size
            total_greedy += greedy_connector_cds(g).size
        assert total_alzoubi >= total_greedy

    def test_bounded_by_constant_times_optimum(self, udg_suite):
        # The [1] guarantee is a (large) constant; sanity-check far below it.
        from repro.cds import connected_domination_number

        for _, g in udg_suite:
            result = alzoubi_cds(g)
            assert result.size <= 192 * connected_domination_number(g)
