"""Unit tests for the Das–Bharghavan set-cover baseline."""

import pytest

from repro.baselines import chvatal_dominating_set, das_bharghavan_cds
from repro.graphs import Graph, is_dominating_set


class TestChvatalDominatingSet:
    def test_dominates(self, udg_suite):
        for _, g in udg_suite:
            assert is_dominating_set(g, chvatal_dominating_set(g))

    def test_star_optimal(self, star_graph):
        assert chvatal_dominating_set(star_graph) == [0]

    def test_greedy_picks_best_cover_first(self, two_triangles_bridge):
        ds = chvatal_dominating_set(two_triangles_bridge)
        # Nodes 2 and 3 each cover 4 nodes; the tie-break picks 2 first.
        assert ds[0] == 2

    def test_not_necessarily_independent(self):
        # Unlike an MIS, the greedy cover can pick adjacent nodes.
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (4, 6)])
        ds = chvatal_dominating_set(g)
        assert is_dominating_set(g, ds)

    def test_path(self, path5):
        ds = chvatal_dominating_set(path5)
        assert is_dominating_set(path5, ds)
        assert len(ds) == 2  # {1, 3} by greedy coverage


class TestDasBharghavanCDS:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert das_bharghavan_cds(g).is_valid(g)

    def test_phase_split_recorded(self, small_udg):
        _, g = small_udg
        result = das_bharghavan_cds(g)
        assert set(result.dominators) | set(result.connectors) == set(result.nodes)
        assert is_dominating_set(g, result.dominators)

    def test_single_node(self):
        assert das_bharghavan_cds(Graph(nodes=[0])).size == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            das_bharghavan_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            das_bharghavan_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_fewer_dominators_than_mis_phase(self, udg_suite):
        # Set-cover greedy picks at most as many dominators as the MIS
        # phase on average (it is the better pure-domination heuristic).
        from repro.mis import first_fit_mis

        total_chvatal = total_mis = 0
        for _, g in udg_suite:
            total_chvatal += len(chvatal_dominating_set(g))
            total_mis += len(first_fit_mis(g))
        assert total_chvatal <= total_mis
