"""Unit tests for the Wu–Li marking baseline."""

import pytest

from repro.baselines import wu_li_cds, wu_li_marked
from repro.graphs import Graph


class TestMarking:
    def test_path_interior_marked(self, path5):
        assert wu_li_marked(path5) == {1, 2, 3}

    def test_complete_graph_unmarked(self, complete4):
        assert wu_li_marked(complete4) == set()

    def test_cycle_all_marked(self, cycle6):
        assert wu_li_marked(cycle6) == set(range(6))

    def test_star_center_marked(self, star_graph):
        assert wu_li_marked(star_graph) == {0}


class TestWuLiCDS:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert wu_li_cds(g).is_valid(g)

    def test_complete_graph_single_node(self, complete4):
        result = wu_li_cds(complete4)
        assert result.size == 1
        assert result.is_valid(complete4)

    def test_two_node_graph(self):
        g = Graph(edges=[(0, 1)])
        result = wu_li_cds(g)
        assert result.is_valid(g)

    def test_single_node(self):
        assert wu_li_cds(Graph(nodes=[3])).size == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            wu_li_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            wu_li_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_rules_prune_something_on_dense_graphs(self):
        # A dense cluster plus a tail: the raw marking includes cluster
        # nodes that Rules 1/2 remove.
        g = Graph(
            edges=[
                (0, 1), (0, 2), (1, 2),  # triangle
                (0, 3), (1, 3), (2, 3),  # + apex = K4
                (3, 4), (4, 5),          # tail
            ]
        )
        raw = wu_li_marked(g)
        result = wu_li_cds(g)
        assert result.is_valid(g)
        assert result.size <= len(raw)

    def test_path_result_is_interior(self, path5):
        result = wu_li_cds(path5)
        assert set(result.nodes) == {1, 2, 3}
