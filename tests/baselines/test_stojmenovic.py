"""Unit tests for the Stojmenovic clustering baseline."""

import pytest

from repro.baselines import cluster_heads, stojmenovic_cds
from repro.graphs import Graph, is_dominating_set, is_independent_set


class TestClusterHeads:
    def test_heads_dominate(self, udg_suite):
        for _, g in udg_suite:
            assert is_dominating_set(g, cluster_heads(g))

    def test_heads_independent(self, udg_suite):
        for _, g in udg_suite:
            assert is_independent_set(g, cluster_heads(g))

    def test_highest_degree_elected_first(self, star_graph):
        assert cluster_heads(star_graph) == [0]

    def test_path_heads(self, path5):
        heads = cluster_heads(path5)
        assert is_dominating_set(path5, heads)
        assert is_independent_set(path5, heads)


class TestStojmenovicCDS:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert stojmenovic_cds(g).is_valid(g)

    def test_single_node(self):
        assert stojmenovic_cds(Graph(nodes=[0])).size == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stojmenovic_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            stojmenovic_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_phase_split(self, small_udg):
        _, g = small_udg
        result = stojmenovic_cds(g)
        assert set(result.dominators) | set(result.connectors) == set(result.nodes)
        assert is_dominating_set(g, result.dominators)
