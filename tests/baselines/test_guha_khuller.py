"""Unit tests for the Guha–Khuller baseline."""

import math

import pytest

from repro.baselines import guha_khuller_cds
from repro.cds import connected_domination_number
from repro.graphs import Graph


class TestGuhaKhuller:
    def test_valid_on_suite(self, udg_suite):
        for _, g in udg_suite:
            assert guha_khuller_cds(g).is_valid(g)

    def test_pairs_variant_also_valid(self, udg_suite):
        for _, g in udg_suite:
            assert guha_khuller_cds(g, use_pairs=False).is_valid(g)

    def test_star_is_optimal(self, star_graph):
        assert guha_khuller_cds(star_graph).size == 1

    def test_single_node(self):
        assert guha_khuller_cds(Graph(nodes=[0])).size == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            guha_khuller_cds(Graph())

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            guha_khuller_cds(Graph(edges=[(0, 1)], nodes=[2]))

    def test_logarithmic_guarantee_on_suite(self, udg_suite):
        # 2(1 + H(Delta)) * gamma_c — generous, but a real invariant.
        for _, g in udg_suite:
            result = guha_khuller_cds(g)
            gamma_c = connected_domination_number(g)
            harmonic = sum(1.0 / k for k in range(1, g.max_degree() + 1))
            assert result.size <= 2 * (1 + harmonic) * gamma_c

    def test_near_optimal_in_practice(self, udg_suite):
        # The empirical observation the comparison table relies on.
        total = total_opt = 0
        for _, g in udg_suite:
            total += guha_khuller_cds(g).size
            total_opt += connected_domination_number(g)
        assert total <= 1.35 * total_opt

    def test_result_connected_tree_growth(self, two_triangles_bridge):
        result = guha_khuller_cds(two_triangles_bridge)
        assert result.is_valid(two_triangles_bridge)
        assert result.size == 2
