"""Unit tests for the synchronous message-passing simulator."""

import pytest

from repro.distributed import Context, Message, NodeProcess, SimMetrics, Simulator
from repro.graphs import Graph


class Echo(NodeProcess):
    """Broadcast once at start; count what is heard."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.heard = []

    def on_start(self, ctx):
        ctx.broadcast("hello", origin=self.node_id)

    def on_message(self, ctx, message):
        self.heard.append((message.sender, message.kind))


class TestDelivery:
    def test_broadcast_reaches_all_neighbors(self, star_graph):
        sim = Simulator(star_graph, Echo)
        sim.run()
        center = sim.processes[0]
        assert sorted(s for s, _ in center.heard) == [1, 2, 3, 4, 5]

    def test_messages_delivered_next_round(self, path5):
        rounds_seen = {}

        class Probe(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "ping")

            def on_message(self, ctx, message):
                rounds_seen[self.node_id] = ctx.round

        Simulator(path5, Probe).run()
        assert rounds_seen == {1: 1}

    def test_unicast_to_non_neighbor_rejected(self, path5):
        class Bad(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(4, "ping")  # not a radio neighbor

        with pytest.raises(ValueError):
            Simulator(path5, Bad).run()

    def test_quiesces_with_no_messages(self, path5):
        class Silent(NodeProcess):
            pass

        metrics = Simulator(path5, Silent).run()
        assert metrics.rounds == 0
        assert metrics.transmissions == 0


class TestMetrics:
    def test_transmission_counting(self, star_graph):
        metrics = Simulator(star_graph, Echo).run()
        # One local broadcast per node: 6 transmissions.
        assert metrics.transmissions == 6
        # Receptions = sum of degrees = 10.
        assert metrics.receptions == 10

    def test_by_kind(self, path5):
        metrics = Simulator(path5, Echo).run()
        assert metrics.by_kind["hello"] == 5

    def test_merge(self):
        a = SimMetrics(rounds=2, transmissions=3, receptions=4)
        a.by_kind["x"] = 3
        b = SimMetrics(rounds=1, transmissions=5, receptions=6)
        b.by_kind["x"] = 5
        m = a.merge(b)
        assert (m.rounds, m.transmissions, m.receptions) == (3, 8, 10)
        assert m.by_kind["x"] == 8

    def test_round_cap_raises(self, path5):
        class Chatty(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("spam")

            def on_message(self, ctx, message):
                pass

            def on_round(self, ctx):
                ctx.broadcast("spam")

        with pytest.raises(RuntimeError):
            Simulator(path5, Chatty).run(max_rounds=10)

    def test_stay_active_keeps_running(self, path5):
        ticks = []

        class Timer(NodeProcess):
            def on_round(self, ctx):
                if self.node_id == 0 and ctx.round < 5:
                    ticks.append(ctx.round)
                    ctx.stay_active()

        class Timer0(Timer):
            def on_start(self, ctx):
                ctx.stay_active()

        Simulator(path5, Timer0).run()
        assert ticks == [1, 2, 3, 4]


class TestContext:
    def test_neighbors_view(self, path5):
        captured = {}

        class Peek(NodeProcess):
            def on_start(self, ctx):
                captured[self.node_id] = ctx.neighbors

        Simulator(path5, Peek).run()
        assert captured[2] == [1, 3]

    def test_message_fields(self, path5):
        got = []

        class Tagger(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 1:
                    ctx.send(2, "tag", value=42)

            def on_message(self, ctx, message):
                got.append(message)

        Simulator(path5, Tagger).run()
        assert len(got) == 1
        assert got[0] == Message(sender=1, kind="tag", payload={"value": 42})
