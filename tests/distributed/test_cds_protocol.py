"""Unit tests for the end-to-end distributed CDS pipelines."""

from repro.distributed import (
    build_bfs_tree,
    convergecast_max,
    distributed_greedy_cds,
    distributed_waf_cds,
    flood_min_labels,
    flood_value,
)
from repro.graphs import Graph, is_maximal_independent_set


def labeled_udg(fixture):
    from repro.experiments.instances import int_labeled

    _, graph = fixture
    return int_labeled(graph)


class TestPrimitives:
    def test_flood_min_labels_components(self, path5):
        labels, heard, _ = flood_min_labels(path5, {0, 1, 3, 4})
        assert labels[0] == labels[1] == 0
        assert labels[3] == labels[4] == 3

    def test_flood_labels_heard_by_outsiders(self, path5):
        _, heard, _ = flood_min_labels(path5, {0, 1, 3, 4})
        # Node 2 (not in backbone) heard final labels of neighbors 1, 3.
        assert heard[2][1] == 0
        assert heard[2][3] == 3

    def test_convergecast_max_finds_global(self, small_udg):
        g = labeled_udg(small_udg)
        tree, _ = build_bfs_tree(g, 0)
        values = {v: (v % 7, v) for v in g.nodes()}
        best, metrics = convergecast_max(g, tree, values)
        assert best == max(values.values())
        assert metrics.transmissions == len(g) - 1

    def test_flood_value_reaches_everyone(self, small_udg):
        g = labeled_udg(small_udg)
        metrics = flood_value(g, 0, "payload")
        assert metrics.transmissions == len(g)


class TestDistributedWAF:
    def test_valid_on_suite(self, udg_suite):
        from repro.experiments.instances import int_labeled

        for _, graph in udg_suite:
            g = int_labeled(graph)
            result, metrics = distributed_waf_cds(g)
            assert result.is_valid(g)
            assert metrics.transmissions > 0

    def test_dominators_form_mis(self, small_udg):
        g = labeled_udg(small_udg)
        result, _ = distributed_waf_cds(g)
        assert is_maximal_independent_set(g, result.dominators)

    def test_single_node(self):
        result, metrics = distributed_waf_cds(Graph(nodes=[0]))
        assert result.size == 1
        assert metrics.transmissions == 0

    def test_leader_recorded(self, small_udg):
        g = labeled_udg(small_udg)
        result, _ = distributed_waf_cds(g)
        assert result.meta["leader"] == min(g.nodes())


class TestDistributedGreedy:
    def test_valid_on_suite(self, udg_suite):
        from repro.experiments.instances import int_labeled

        for _, graph in udg_suite:
            g = int_labeled(graph)
            result, _ = distributed_greedy_cds(g)
            assert result.is_valid(g)

    def test_same_dominators_as_waf_pipeline(self, small_udg):
        # Phase 1 is shared: both pipelines elect the same MIS.
        g = labeled_udg(small_udg)
        waf_result, _ = distributed_waf_cds(g)
        greedy_result, _ = distributed_greedy_cds(g)
        assert set(waf_result.dominators) == set(greedy_result.dominators)

    def test_costlier_in_messages_but_not_larger_on_average(self, udg_suite):
        from repro.experiments.instances import int_labeled

        total_waf_size = total_greedy_size = 0
        total_waf_msgs = total_greedy_msgs = 0
        for _, graph in udg_suite:
            g = int_labeled(graph)
            rw, mw = distributed_waf_cds(g)
            rg, mg = distributed_greedy_cds(g)
            total_waf_size += rw.size
            total_greedy_size += rg.size
            total_waf_msgs += mw.transmissions
            total_greedy_msgs += mg.transmissions
        assert total_greedy_size <= total_waf_size
        assert total_greedy_msgs >= total_waf_msgs

    def test_single_node(self):
        result, _ = distributed_greedy_cds(Graph(nodes=[0]))
        assert result.size == 1
