"""Unit tests for the batched round engine and its scheduling contract."""

import pytest

from repro.distributed import (
    ENGINES,
    BatchedSimulator,
    Context,
    Message,
    NodeProcess,
    RadioTopology,
    SimMetrics,
    Simulator,
    make_simulator,
    simulate_components,
)
from repro.graphs import Graph
from repro.graphs.backend import adjacency_rows, build_kernel


class Echo(NodeProcess):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.heard = []

    def on_start(self, ctx):
        ctx.broadcast("hello", origin=self.node_id)

    def on_message(self, ctx, message):
        self.heard.append((message.sender, message.kind))


class TestMakeSimulator:
    def test_engine_selection(self, path5):
        assert isinstance(make_simulator(path5, Echo), BatchedSimulator)
        assert isinstance(
            make_simulator(path5, Echo, engine="reference"), Simulator
        )

    def test_unknown_engine_rejected(self, path5):
        with pytest.raises(ValueError, match="unknown engine"):
            make_simulator(path5, Echo, engine="warp")

    def test_engines_constant(self):
        assert ENGINES == ("batched", "reference")


class TestBatchDelivery:
    def test_on_messages_receives_whole_inbox(self, star_graph):
        inboxes = []

        class Batch(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("hello")

            def on_messages(self, ctx, messages):
                inboxes.append((self.node_id, [m.sender for m in messages]))

        BatchedSimulator(star_graph, Batch).run()
        by_node = dict(inboxes)
        # The center hears all five leaves in one batch, in id order
        # (the order their broadcasts were enqueued).
        assert by_node[0] == [1, 2, 3, 4, 5]
        assert len(inboxes) == 6  # one batch per receiving node

    def test_fallback_dispatches_per_message(self, star_graph):
        sim = BatchedSimulator(star_graph, Echo)
        sim.run()
        assert sorted(s for s, _ in sim.processes[0].heard) == [1, 2, 3, 4, 5]

    def test_inbox_order_matches_reference(self, complete4):
        orders = {}

        class Order(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                orders[node_id] = []

            def on_start(self, ctx):
                ctx.broadcast("x")

            def on_message(self, ctx, message):
                orders[self.node_id].append(message.sender)

        BatchedSimulator(complete4, Order).run()
        batched = {k: list(v) for k, v in orders.items()}
        for v in orders.values():
            v.clear()
        Simulator(complete4, Order).run()
        assert batched == orders


class TestActiveSet:
    def test_idle_nodes_not_ticked(self, path5):
        ticks = []

        class Tick(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "ping")

            def on_round(self, ctx):
                ticks.append((ctx.round, self.node_id))

        BatchedSimulator(path5, Tick).run()
        # Round 1: only the sender (0) and the receiver (1) tick; nodes
        # 2-4 never run a callback.
        assert ticks == [(1, 0), (1, 1)]

    def test_zero_receiver_broadcast_still_ticks_sender(self):
        ticks = []

        class Lone(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("shout")

            def on_round(self, ctx):
                ticks.append(ctx.round)

        metrics = BatchedSimulator(Graph(nodes=[7]), Lone).run()
        assert ticks == [1]
        assert metrics.transmissions == 1
        assert metrics.receptions == 0

    def test_active_order_is_process_order(self):
        # Insertion order 3,1,2 — the active set must tick in that
        # order, not sorted by label.
        g = Graph(nodes=[3, 1, 2])
        g.add_edge(3, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        order = []

        class Tick(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("x")

            def on_round(self, ctx):
                order.append(self.node_id)

        BatchedSimulator(g, Tick).run()
        assert order[:3] == [3, 1, 2]

    def test_stay_active_in_on_message_survives(self):
        ticks = []

        class Sticky(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "poke")

            def on_message(self, ctx, message):
                ctx.stay_active()

            def on_round(self, ctx):
                ticks.append((ctx.round, self.node_id))

        for engine in ENGINES:
            ticks.clear()
            g = Graph(edges=[(0, 1)])
            make_simulator(g, Sticky, engine=engine).run()
            # Node 1 hears the poke in round 1 and stays active, so it
            # must still get an on_round tick in round 2 even though
            # the round began by re-arming the request set.
            assert (2, 1) in ticks, engine

    def test_round_cap_raises(self, path5):
        class Chatty(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("spam")

            def on_round(self, ctx):
                ctx.broadcast("spam")

        for engine in ENGINES:
            with pytest.raises(RuntimeError, match="did not quiesce"):
                make_simulator(path5, Chatty, engine=engine).run(max_rounds=10)


class TestContextReuse:
    def test_one_context_per_node(self, path5):
        seen = {}

        class Grab(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("x")
                seen.setdefault(self.node_id, set()).add(id(ctx))

            def on_message(self, ctx, message):
                seen[self.node_id].add(id(ctx))

            def on_round(self, ctx):
                seen[self.node_id].add(id(ctx))

        BatchedSimulator(path5, Grab).run()
        assert all(len(ids) == 1 for ids in seen.values())

    def test_send_validation_via_kernel(self, path5):
        class Bad(NodeProcess):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(4, "ping")

        for engine in ENGINES:
            with pytest.raises(ValueError, match="cannot reach"):
                make_simulator(path5, Bad, engine=engine).run()

    def test_is_neighbor(self, path5):
        probes = {}

        class Probe(NodeProcess):
            def on_start(self, ctx):
                probes[self.node_id] = (ctx.is_neighbor(1), ctx.is_neighbor(4))

        BatchedSimulator(path5, Probe).run()
        assert probes[0] == (True, False)
        assert probes[2] == (True, False)
        assert probes[3] == (False, True)


class TestRadioTopology:
    def test_receivers_match_graph_order(self, path5):
        topo = RadioTopology(path5)
        assert topo.receivers[2] == tuple(path5.neighbors(2))
        assert len(topo) == 5

    def test_shared_topology_across_engines(self, path5):
        topo = RadioTopology(path5)
        m1 = make_simulator(path5, Echo, engine="batched", topology=topo).run()
        m2 = make_simulator(path5, Echo, engine="reference", topology=topo).run()
        assert m1 == m2

    def test_can_reach(self, path5):
        topo = RadioTopology(path5)
        assert topo.can_reach(0, 1)
        assert not topo.can_reach(0, 2)
        with pytest.raises(KeyError):
            topo.can_reach(99, 0)

    def test_adjacency_rows_all_kernels(self, small_udg):
        _, g = small_udg
        expected = None
        for kernel in ("indexed", "bitset", "array"):
            view = build_kernel(g, kernel)
            rows = [list(row) for row in adjacency_rows(view)]
            if expected is None:
                expected = rows
            else:
                assert rows == expected, kernel

    def test_adjacency_rows_rejects_plain_graph(self, path5):
        with pytest.raises(TypeError, match="kernel view"):
            adjacency_rows(path5)


class TestMetricsMerge:
    def test_merge_sequential_totals(self):
        a = SimMetrics(rounds=2, transmissions=3, receptions=4)
        a.by_kind["x"] = 3
        b = SimMetrics(rounds=5, transmissions=7, receptions=1)
        b.by_kind["x"] = 2
        b.by_kind["y"] = 7
        m = a.merge(b)
        assert (m.rounds, m.transmissions, m.receptions) == (7, 10, 5)
        assert m.by_kind == {"x": 5, "y": 7}
        # Inputs untouched.
        assert a.rounds == 2 and b.by_kind["y"] == 7

    def test_merge_parallel_takes_max_rounds(self):
        a = SimMetrics(rounds=2, transmissions=3, receptions=4)
        b = SimMetrics(rounds=5, transmissions=7, receptions=1)
        m = a.merge_parallel(b)
        assert (m.rounds, m.transmissions, m.receptions) == (5, 10, 5)


def _extract_heard(sim):
    return sorted(
        (p.node_id, len(p.heard)) for p in sim.processes.values()
    )


class TestSimulateComponents:
    def test_matches_whole_topology_run(self):
        # Two components: a triangle and an edge.
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (10, 11)])
        results, merged = simulate_components(g, Echo, extract=_extract_heard)
        whole = BatchedSimulator(g, Echo)
        whole_metrics = whole.run()
        assert merged == whole_metrics
        assert [h for r in results for h in r] == _extract_heard(whole)

    def test_single_component_short_circuits(self, path5):
        results, merged = simulate_components(path5, Echo, extract=_extract_heard)
        assert len(results) == 1
        assert merged == BatchedSimulator(path5, Echo).run()

    def test_parallel_jobs_bit_identical(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)])
        serial = simulate_components(g, Echo, extract=_extract_heard, jobs=1)
        parallel = simulate_components(g, Echo, extract=_extract_heard, jobs=3)
        assert serial == parallel

    def test_reference_engine_shards_identically(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        b = simulate_components(g, Echo, extract=_extract_heard)
        r = simulate_components(g, Echo, extract=_extract_heard, engine="reference")
        assert b == r
