"""Randomized engine-equivalence suite: batched vs reference, lockstep.

The correctness spine of the batched round engine, in the style of the
kernel-equivalence suites of PRs 2/3/7: every protocol runs on both
engines over randomized connected topologies, and the comparison is
*per-round* — ``record_rounds=True`` captures the running
(transmissions, receptions) totals after each round, so a divergence
pinpoints the first round where the schedules differ rather than just
the final totals.
"""

import random

import pytest

from repro.distributed import (
    Simulator,
    BatchedSimulator,
    build_bfs_tree,
    distributed_greedy_cds,
    distributed_join,
    distributed_waf_cds,
    elect_leader,
    elect_mis,
    luby_mis,
    run_traffic,
)
from repro.graphs import Graph


def random_connected_graph(rng: random.Random, n: int) -> Graph:
    """A connected random graph: spanning-tree skeleton plus extras."""
    nodes = list(range(n))
    g = Graph(nodes=nodes)
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i))
    for _ in range(rng.randrange(0, 2 * n)):
        u, v = rng.sample(nodes, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def lockstep(graph, factory, max_rounds: int = 10_000):
    """Run both engines with per-round recording; assert bit-identical
    traces and final metrics; return both simulators."""
    ref = Simulator(graph, factory, record_rounds=True)
    bat = BatchedSimulator(graph, factory, record_rounds=True)
    m_ref = ref.run(max_rounds=max_rounds)
    m_bat = bat.run(max_rounds=max_rounds)
    assert bat.round_log == ref.round_log
    assert m_bat == m_ref
    return ref, bat


SEEDS = range(12)


class TestLockstepProtocols:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_pipelines_bit_identical(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(rng, rng.randrange(2, 40))

        leader_r, ml_r = elect_leader(g, engine="reference")
        leader_b, ml_b = elect_leader(g, engine="batched")
        assert (leader_r, ml_r) == (leader_b, ml_b)

        tree_r, mt_r = build_bfs_tree(g, leader_r, engine="reference")
        tree_b, mt_b = build_bfs_tree(g, leader_b, engine="batched")
        assert (tree_r.parent, tree_r.level, mt_r) == (
            tree_b.parent,
            tree_b.level,
            mt_b,
        )

        waf_r, mw_r = distributed_waf_cds(g, engine="reference")
        waf_b, mw_b = distributed_waf_cds(g, engine="batched")
        assert waf_r.nodes == waf_b.nodes
        assert waf_r.dominators == waf_b.dominators
        assert sorted(waf_r.connectors) == sorted(waf_b.connectors)
        assert mw_r == mw_b

        greedy_r, mg_r = distributed_greedy_cds(g, engine="reference")
        greedy_b, mg_b = distributed_greedy_cds(g, engine="batched")
        assert greedy_r.nodes == greedy_b.nodes
        assert greedy_r.connectors == greedy_b.connectors
        assert mg_r == mg_b

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("priority", [None, "degree"])
    def test_mis_all_priorities(self, seed, priority):
        rng = random.Random(seed)
        g = random_connected_graph(rng, rng.randrange(2, 40))
        tree, _ = build_bfs_tree(g, 0)
        mis_r, m_r = elect_mis(g, tree, priority=priority, engine="reference")
        mis_b, m_b = elect_mis(g, tree, priority=priority, engine="batched")
        assert (mis_r, m_r) == (mis_b, m_b)

    @pytest.mark.parametrize("seed", range(6))
    def test_luby_bit_identical(self, seed):
        rng = random.Random(1000 + seed)
        g = random_connected_graph(rng, rng.randrange(2, 30))
        assert luby_mis(g, seed=seed, engine="reference") == luby_mis(
            g, seed=seed, engine="batched"
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_traffic_bit_identical(self, seed):
        rng = random.Random(2000 + seed)
        n = rng.randrange(4, 25)
        g = random_connected_graph(rng, n)
        backbone, _ = distributed_greedy_cds(g)
        flows = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(rng.randrange(1, 8))
        ]
        s_r = run_traffic(g, sorted(backbone.nodes), flows, engine="reference")
        s_b = run_traffic(g, sorted(backbone.nodes), flows, engine="batched")
        assert (s_r.delivered, s_r.mean_delay, s_r.max_delay, s_r.max_queue) == (
            s_b.delivered,
            s_b.mean_delay,
            s_b.max_delay,
            s_b.max_queue,
        )
        assert s_r.metrics == s_b.metrics

    @pytest.mark.parametrize("seed", range(6))
    def test_join_repair_bit_identical(self, seed):
        rng = random.Random(3000 + seed)
        n = rng.randrange(4, 25)
        g = random_connected_graph(rng, n)
        backbone, _ = distributed_greedy_cds(g)
        joiner = n
        g2 = Graph(nodes=list(g.nodes()) + [joiner])
        for u, v in g.edges():
            g2.add_edge(u, v)
        for u in rng.sample(range(n), rng.randrange(1, min(4, n))):
            g2.add_edge(joiner, u)
        out_r = distributed_join(
            g2, joiner, frozenset(backbone.nodes), engine="reference"
        )
        out_b = distributed_join(
            g2, joiner, frozenset(backbone.nodes), engine="batched"
        )
        assert out_r == out_b


class TestLockstepTraces:
    """Per-round traces on synthetic protocols built to stress the
    active-set scheduling — not just the shipped protocols."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_gossip_lockstep(self, seed):
        rng = random.Random(4000 + seed)
        g = random_connected_graph(rng, rng.randrange(2, 30))
        fanout = rng.randrange(1, 4)

        class Gossip:
            """Deterministic pseudo-random forwarding."""

            def __new__(cls, node_id):
                from repro.distributed import NodeProcess

                class _G(NodeProcess):
                    def __init__(self, nid):
                        super().__init__(nid)
                        self.budget = 3

                    def on_start(self, ctx):
                        if self.node_id == 0:
                            ctx.broadcast("seed", hops=0)

                    def on_message(self, ctx, message):
                        hops = message.payload["hops"]
                        if self.budget > 0 and hops < fanout:
                            self.budget -= 1
                            ctx.broadcast("seed", hops=hops + 1)

                return _G(node_id)

        lockstep(g, Gossip)

    @pytest.mark.parametrize("seed", range(4))
    def test_timer_protocol_lockstep(self, seed):
        rng = random.Random(5000 + seed)
        g = random_connected_graph(rng, rng.randrange(2, 20))
        from repro.distributed import NodeProcess

        class Countdown(NodeProcess):
            """stay_active-driven timers with a final broadcast."""

            def __init__(self, node_id):
                super().__init__(node_id)
                self.left = node_id % 4

            def on_start(self, ctx):
                if self.left:
                    ctx.stay_active()

            def on_round(self, ctx):
                if self.left:
                    self.left -= 1
                    if self.left:
                        ctx.stay_active()
                    else:
                        ctx.broadcast("done")

        lockstep(g, Countdown)
