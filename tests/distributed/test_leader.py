"""Unit tests for flood-min leader election."""

import pytest

from repro.distributed import elect_leader
from repro.graphs import Graph


class TestLeaderElection:
    def test_min_id_wins(self, path5):
        leader, _ = elect_leader(path5)
        assert leader == 0

    def test_min_id_wins_regardless_of_position(self):
        g = Graph(edges=[(5, 3), (3, 9), (9, 1), (1, 7)])
        leader, _ = elect_leader(g)
        assert leader == 1

    def test_single_node(self):
        leader, metrics = elect_leader(Graph(nodes=[4]))
        assert leader == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            elect_leader(Graph())

    def test_disconnected_detected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(AssertionError):
            elect_leader(g)

    def test_rounds_bounded_by_diameter_plus_constant(self, path5):
        _, metrics = elect_leader(path5)
        # Information travels one hop per round; the path has diameter 4.
        assert metrics.rounds <= 4 + 2

    def test_message_complexity_reasonable(self, medium_udg):
        from repro.experiments.instances import int_labeled

        _, graph = medium_udg
        g = int_labeled(graph)
        _, metrics = elect_leader(g)
        n = len(g)
        # Every improvement costs one broadcast; worst case O(n * D).
        assert metrics.transmissions <= n * (metrics.rounds + 1)

    def test_works_on_string_ids(self):
        g = Graph(edges=[("b", "a"), ("a", "c")])
        leader, _ = elect_leader(g)
        assert leader == "a"
