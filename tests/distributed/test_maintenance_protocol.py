"""Tests for the distributed join-repair protocol."""

import random

import pytest

from repro.cds import greedy_connector_cds
from repro.distributed.maintenance_protocol import distributed_join
from repro.graphs import Graph, is_connected_dominating_set


def grown_instance(seed: int, n: int = 18):
    """An integer-id connected UDG-ish graph plus a join candidate."""
    from repro.experiments.instances import int_labeled
    from repro.graphs import random_connected_udg

    pts, graph = random_connected_udg(n, 3.8, seed=seed)
    g = int_labeled(graph)
    return g


class TestDistributedJoin:
    def test_dominated_join_costs_little(self):
        g = grown_instance(0)
        backbone = frozenset(greedy_connector_cds(g).nodes)
        anchor = next(iter(backbone))
        joiner = 999
        g.add_node(joiner)
        g.add_edge(joiner, anchor)
        new_backbone, metrics = distributed_join(g, joiner, backbone)
        assert new_backbone == backbone  # no repair needed
        assert is_connected_dominating_set(g, new_backbone)
        # hello + one reply.
        assert metrics.transmissions == 2

    def test_undominated_join_promotes_one(self):
        # Star topology: backbone = {center}; hang the joiner off a leaf.
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        backbone = frozenset([0])
        joiner = 99
        g.add_node(joiner)
        g.add_edge(joiner, 1)
        new_backbone, metrics = distributed_join(g, joiner, backbone)
        assert new_backbone == frozenset([0, 1])
        assert is_connected_dominating_set(g, new_backbone)
        # hello + reply + promote + role announcement.
        assert metrics.transmissions == 4

    def test_repair_cost_independent_of_network_size(self):
        costs = []
        for seed, n in ((1, 12), (1, 24)):
            g = grown_instance(seed, n)
            backbone = frozenset(greedy_connector_cds(g).nodes)
            # Attach the joiner to a single non-backbone node.
            fringe = next(v for v in g.nodes() if v not in backbone)
            joiner = 999
            g.add_node(joiner)
            g.add_edge(joiner, fringe)
            _, metrics = distributed_join(g, joiner, backbone)
            costs.append(metrics.transmissions)
        assert costs[0] == costs[1]  # O(1) repair regardless of n

    def test_random_joins_keep_cds(self):
        rng = random.Random(4)
        for seed in range(5):
            g = grown_instance(seed)
            backbone = frozenset(greedy_connector_cds(g).nodes)
            joiner = 999
            g.add_node(joiner)
            targets = rng.sample(sorted(v for v in g.nodes() if v != joiner), 2)
            for t in targets:
                g.add_edge(joiner, t)
            new_backbone, _ = distributed_join(g, joiner, backbone)
            assert is_connected_dominating_set(g, new_backbone)

    def test_matches_centralized_repair_size(self):
        # The distributed protocol promotes at most one node, like
        # DynamicCDS.add_node.
        g = grown_instance(2)
        backbone = frozenset(greedy_connector_cds(g).nodes)
        fringe = next(v for v in g.nodes() if v not in backbone)
        joiner = 999
        g.add_node(joiner)
        g.add_edge(joiner, fringe)
        new_backbone, _ = distributed_join(g, joiner, backbone)
        assert len(new_backbone) - len(backbone) <= 1

    def test_unknown_joiner_rejected(self):
        g = grown_instance(3)
        with pytest.raises(ValueError):
            distributed_join(g, 12345, frozenset())

    def test_isolated_joiner_rejected(self):
        g = grown_instance(3)
        g.add_node(777)
        with pytest.raises(ValueError):
            distributed_join(g, 777, frozenset())
