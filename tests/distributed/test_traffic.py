"""Tests for store-and-forward traffic over the backbone."""

import random

import pytest

from repro.cds import greedy_connector_cds
from repro.distributed.traffic import run_traffic
from repro.graphs import Graph


def labeled(fixture):
    from repro.experiments.instances import int_labeled

    _, graph = fixture
    return int_labeled(graph)


class TestRunTraffic:
    def test_single_flow_delivered(self, path5):
        stats = run_traffic(path5, [1, 2, 3], [(0, 4)])
        assert stats.all_delivered
        assert stats.total == 1
        # 4 hops, one per round.
        assert stats.max_delay == 4

    def test_all_random_flows_delivered(self, udg_suite):
        for _, graph in udg_suite[:4]:
            from repro.experiments.instances import int_labeled

            g = int_labeled(graph)
            backbone = greedy_connector_cds(g).nodes
            rng = random.Random(1)
            nodes = sorted(g.nodes())
            flows = [tuple(rng.sample(nodes, 2)) for _ in range(12)]
            stats = run_traffic(g, backbone, flows)
            assert stats.all_delivered
            assert stats.mean_delay >= 1.0

    def test_contention_queues_packets(self, path5):
        # Many flows through the same relay chain: queues must form.
        flows = [(0, 4), (0, 4), (0, 4), (4, 0)]
        stats = run_traffic(path5, [1, 2, 3], flows)
        assert stats.all_delivered
        assert stats.max_queue >= 2
        # Serialized at the source: later packets take longer.
        assert stats.max_delay > 4

    def test_self_flows_ignored(self, path5):
        stats = run_traffic(path5, [1, 2, 3], [(2, 2)])
        assert stats.total == 0
        assert stats.all_delivered

    def test_adjacent_flow_one_round(self, path5):
        stats = run_traffic(path5, [1, 2, 3], [(0, 1)])
        assert stats.all_delivered
        assert stats.max_delay == 1

    def test_invalid_backbone_rejected(self, path5):
        with pytest.raises(ValueError):
            run_traffic(path5, [0, 1], [(0, 4)])

    def test_transmissions_equal_hops(self, path5):
        stats = run_traffic(path5, [1, 2, 3], [(0, 4)])
        # One transmission per hop of the single packet.
        assert stats.metrics.transmissions == 4

    def test_empty_flows(self, path5):
        stats = run_traffic(path5, [1, 2, 3], [])
        assert stats.total == 0 and stats.all_delivered
