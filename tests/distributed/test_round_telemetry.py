"""Tests for the batched engine's opt-in round telemetry: sampling
cadence, registry feeding, snapshot export, and the guarantee that an
attached (or absent) hook never changes protocol results."""

import pytest

from repro.distributed import (
    BatchedSimulator,
    NodeProcess,
    RoundTelemetry,
    make_simulator,
)
from repro.obs import Registry
from repro.obs.expose import read_snapshots


class Gossip(NodeProcess):
    """Two-round chatter: everyone broadcasts, then echoes once."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.heard = []

    def on_start(self, ctx):
        ctx.broadcast("hello", origin=self.node_id)

    def on_message(self, ctx, message):
        self.heard.append((message.sender, message.kind))
        if message.kind == "hello":
            ctx.send(message.sender, "echo")


class TestSampling:
    def test_every_round_by_default(self, path5):
        telemetry = RoundTelemetry()
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        assert telemetry.rounds_seen >= 2
        assert [s["round"] for s in telemetry.samples] == list(
            range(1, telemetry.rounds_seen + 1)
        )

    def test_every_k_samples_rounds_1_1k_12k(self, path5):
        telemetry = RoundTelemetry(every=2)
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        assert [s["round"] for s in telemetry.samples] == list(
            range(1, telemetry.rounds_seen + 1, 2)
        )
        assert len(telemetry.samples) < telemetry.rounds_seen

    def test_sample_shape(self, path5):
        telemetry = RoundTelemetry()
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        first = telemetry.samples[0]
        assert set(first) == {"round", "active", "delivered", "queue"}
        # round 1: every node broadcasts (all 5 active), nothing has
        # been delivered yet inside the round-1 tick itself.
        assert first["active"] == 5

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            RoundTelemetry(every=0)


class TestRegistryFeed:
    def test_attached_registry_gets_histograms(self, path5):
        reg = Registry()
        telemetry = RoundTelemetry(registry=reg)
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        n = len(telemetry.samples)
        assert reg.counters()["sim.round.sampled"] == n
        assert reg.histogram("sim.round.active").count == n
        assert reg.histogram("sim.round.delivered").count == n
        assert reg.histogram("sim.round.queue").count == n

    def test_snapshot_registry_independent(self, path5):
        telemetry = RoundTelemetry()
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        reg = telemetry.snapshot_registry()
        assert reg.counters()["sim.round.sampled"] == len(telemetry.samples)
        assert (
            reg.histogram("sim.round.active").count == len(telemetry.samples)
        )


class TestSnapshotExport:
    def test_write_produces_valid_stream(self, path5, tmp_path):
        telemetry = RoundTelemetry()
        BatchedSimulator(path5, Gossip, telemetry=telemetry).run()
        path = tmp_path / "rounds.jsonl"
        written = telemetry.write(path)
        assert written == len(telemetry.samples)
        snaps = read_snapshots(path)
        assert len(snaps) == written
        assert all(s["source"] == "sim" for s in snaps)
        # cumulative registry state per line, raw sample in extra
        assert snaps[-1]["counters"]["sim.round.sampled"] == written
        assert snaps[0]["extra"] == telemetry.samples[0]


class TestInvisibility:
    def test_results_identical_with_and_without_telemetry(self, path5):
        plain = BatchedSimulator(path5, Gossip)
        plain.run()
        telemetry = RoundTelemetry()
        watched = BatchedSimulator(path5, Gossip, telemetry=telemetry)
        watched.run()
        assert watched.round == plain.round
        assert watched.metrics == plain.metrics
        assert {
            nid: sorted(p.heard) for nid, p in watched.processes.items()
        } == {nid: sorted(p.heard) for nid, p in plain.processes.items()}

    def test_make_simulator_wires_telemetry(self, path5):
        telemetry = RoundTelemetry()
        sim = make_simulator(path5, Gossip, telemetry=telemetry)
        assert sim.telemetry is telemetry
        sim.run()
        assert telemetry.samples

    def test_reference_engine_rejects_telemetry(self, path5):
        with pytest.raises(ValueError, match="batched"):
            make_simulator(
                path5, Gossip, engine="reference",
                telemetry=RoundTelemetry(),
            )
