"""Tests for Luby's randomized distributed MIS."""

import pytest

from repro.distributed import build_bfs_tree, elect_mis
from repro.distributed.luby import luby_mis
from repro.graphs import Graph, is_maximal_independent_set


def labeled(fixture):
    from repro.experiments.instances import int_labeled

    _, graph = fixture
    return int_labeled(graph)


class TestLuby:
    def test_mis_on_suite(self, udg_suite):
        from repro.experiments.instances import int_labeled

        for seed, (_, graph) in enumerate(udg_suite):
            g = int_labeled(graph)
            mis, _ = luby_mis(g, seed=seed)
            assert is_maximal_independent_set(g, mis)

    def test_many_seeds_on_one_instance(self, small_udg):
        g = labeled(small_udg)
        for seed in range(20):
            mis, _ = luby_mis(g, seed=seed)
            assert is_maximal_independent_set(g, mis)

    def test_deterministic_per_seed(self, small_udg):
        g = labeled(small_udg)
        assert luby_mis(g, seed=3)[0] == luby_mis(g, seed=3)[0]

    def test_seeds_differ(self, medium_udg):
        g = labeled(medium_udg)
        results = {tuple(luby_mis(g, seed=s)[0]) for s in range(8)}
        assert len(results) > 1

    def test_single_node(self):
        mis, _ = luby_mis(Graph(nodes=[0]))
        assert mis == [0]

    def test_chain_round_advantage(self):
        # The selling point: O(log n)-ish rounds on the path, where the
        # rank cascade needs Theta(n).
        g = Graph(edges=[(i, i + 1) for i in range(59)])
        _, luby_metrics = luby_mis(g, seed=1)
        tree, _ = build_bfs_tree(g, 0)
        _, rank_metrics = elect_mis(g, tree)
        assert luby_metrics.rounds < rank_metrics.rounds / 3

    def test_message_cost_higher_than_rank(self, small_udg):
        # The tradeoff's other side: Luby re-broadcasts per phase.
        g = labeled(small_udg)
        _, luby_metrics = luby_mis(g, seed=0)
        tree, _ = build_bfs_tree(g, 0)
        _, rank_metrics = elect_mis(g, tree)
        assert luby_metrics.transmissions >= rank_metrics.transmissions - len(g)

    def test_usable_for_steiner_cds(self, small_udg):
        from repro.cds import steiner_connectors
        from repro.graphs import induced_is_connected

        g = labeled(small_udg)
        mis, _ = luby_mis(g, seed=2)
        connectors = steiner_connectors(g, mis)
        assert induced_is_connected(g, set(mis) | set(connectors))
