"""The pluggable MIS node-priority hook and the registry adapters."""

import pytest

from repro.distributed import (
    PRIORITIES,
    RadioTopology,
    build_bfs_tree,
    distributed_waf_cds,
    elect_mis,
    make_priority,
)
from repro.distributed.solvers import DISTRIBUTED_SOLVERS
from repro.experiments.parallel import SweepCell, solve_cell
from repro.graphs import Graph
from repro.graphs.properties import is_maximal_independent_set


@pytest.fixture
def graph_and_tree(medium_udg):
    from repro.experiments.instances import int_labeled

    _, g0 = medium_udg
    g = int_labeled(g0)
    tree, _ = build_bfs_tree(g, 0)
    return g, tree


class TestMakePriority:
    def test_default_is_bfs_rank(self, graph_and_tree):
        g, tree = graph_and_tree
        topo = RadioTopology(g)
        ranks = make_priority(None, tree, topo)
        assert ranks == {v: tree.rank(v) for v in g.nodes()}
        assert make_priority("bfs-rank", tree, topo) == ranks

    def test_degree_is_level_major(self, graph_and_tree):
        g, tree = graph_and_tree
        topo = RadioTopology(g)
        ranks = make_priority("degree", tree, topo)
        for v, (level, neg_deg, vid) in ranks.items():
            assert level == tree.level[v]
            assert neg_deg == -len(g.neighbors(v))
            assert vid == v

    def test_callable_tiebroken_by_bfs_rank(self, graph_and_tree):
        g, tree = graph_and_tree
        topo = RadioTopology(g)
        ranks = make_priority(lambda v: 0, tree, topo)
        # A constant callable collapses to the BFS rank order — the
        # suffix keeps the order total.
        assert len(set(ranks.values())) == len(g)
        order = sorted(g.nodes(), key=ranks.__getitem__)
        assert order == sorted(g.nodes(), key=tree.rank)

    def test_unknown_name_rejected(self, graph_and_tree):
        g, tree = graph_and_tree
        with pytest.raises(ValueError, match="unknown priority"):
            make_priority("entropy", tree, RadioTopology(g))

    def test_priorities_constant(self):
        assert PRIORITIES == ("bfs-rank", "degree")


class TestPriorityElections:
    @pytest.mark.parametrize("priority", [None, "degree"])
    def test_result_is_mis(self, graph_and_tree, priority):
        g, tree = graph_and_tree
        mis, _ = elect_mis(g, tree, priority=priority)
        assert is_maximal_independent_set(g, mis)

    def test_custom_callable_is_mis(self, graph_and_tree):
        g, tree = graph_and_tree
        mis, _ = elect_mis(g, tree, priority=lambda v: (v * 7919) % 257)
        assert is_maximal_independent_set(g, mis)

    def test_degree_priority_changes_selection(self):
        # A star rooted at a leaf: bfs-rank elects by id inside each
        # level, degree prefers the hub.
        g = Graph(edges=[(0, 5)] + [(5, i) for i in range(1, 5)])
        tree, _ = build_bfs_tree(g, 0)
        default, _ = elect_mis(g, tree)
        by_degree, _ = elect_mis(g, tree, priority="degree")
        assert is_maximal_independent_set(g, default)
        assert is_maximal_independent_set(g, by_degree)
        assert 0 in default and 0 in by_degree

    def test_same_transmissions_any_priority(self, graph_and_tree):
        # 2n transmissions is a property of the cascade, not the order.
        g, tree = graph_and_tree
        _, m1 = elect_mis(g, tree)
        _, m2 = elect_mis(g, tree, priority="degree")
        assert m1.transmissions == m2.transmissions == 2 * len(g)

    def test_waf_pipeline_valid_under_degree_priority(self, medium_udg):
        from repro.experiments.instances import int_labeled

        _, g0 = medium_udg
        g = int_labeled(g0)
        result, _ = distributed_waf_cds(g, priority="degree")
        assert result.is_valid(g)


class TestRegistrySolvers:
    def test_all_variants_registered(self):
        from repro.cli import _solver_registry

        registry = _solver_registry()
        for name in DISTRIBUTED_SOLVERS:
            assert name in registry

    @pytest.mark.parametrize("name", sorted(DISTRIBUTED_SOLVERS))
    def test_solver_valid_on_point_graph(self, small_udg, name):
        _, g = small_udg
        result = DISTRIBUTED_SOLVERS[name](g)
        assert result.is_valid(g)
        assert result.algorithm == name
        assert result.meta["sim_transmissions"] > 0
        assert result.meta["sim_rounds"] > 0

    def test_solve_cell_runs_distributed_algorithm(self):
        summary = solve_cell(SweepCell(n=30, side=4.0, seed=2), algorithm="waf-dist")
        assert summary["algorithm"] == "waf-dist"
        assert summary["cds_size"] > 0
        assert summary["counters"]["sim.transmissions"] > 0

    def test_solve_cell_jobs_deterministic(self):
        from repro.experiments.parallel import solve_cells

        cells = [SweepCell(n=25, side=3.5, seed=s) for s in range(3)]
        serial = solve_cells(cells, algorithm="greedy-dist", jobs=1)
        parallel = solve_cells(cells, algorithm="greedy-dist", jobs=2)
        assert serial == parallel
