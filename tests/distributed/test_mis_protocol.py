"""Unit tests for the distributed rank-based MIS election."""

from repro.distributed import build_bfs_tree, elect_mis
from repro.graphs import (
    Graph,
    has_two_hop_separation,
    is_maximal_independent_set,
)
from repro.mis import first_fit_mis_in_order


def labeled_udg(fixture):
    from repro.experiments.instances import int_labeled

    _, graph = fixture
    return int_labeled(graph)


class TestMISElection:
    def test_result_is_mis(self, small_udg):
        g = labeled_udg(small_udg)
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        assert is_maximal_independent_set(g, mis)

    def test_matches_centralized_rank_order_first_fit(self, small_udg):
        # The election IS first-fit over the (level, id) order.
        g = labeled_udg(small_udg)
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        order = sorted(g.nodes(), key=tree.rank)
        expected = first_fit_mis_in_order(g, order)
        assert sorted(mis) == sorted(expected)

    def test_leader_always_dominator(self, medium_udg):
        g = labeled_udg(medium_udg)
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        assert 0 in mis

    def test_two_hop_separation(self, medium_udg):
        g = labeled_udg(medium_udg)
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        assert has_two_hop_separation(g, mis)

    def test_exactly_two_transmissions_per_node(self, small_udg):
        # One rank broadcast + one color broadcast each.
        g = labeled_udg(small_udg)
        tree, _ = build_bfs_tree(g, 0)
        _, metrics = elect_mis(g, tree)
        assert metrics.transmissions == 2 * len(g)
        assert metrics.by_kind["rank"] == len(g)
        assert metrics.by_kind["color"] == len(g)

    def test_path_graph_cascade(self, path5):
        tree, _ = build_bfs_tree(path5, 0)
        mis, _ = elect_mis(path5, tree)
        assert mis == [0, 2, 4]

    def test_single_node(self):
        g = Graph(nodes=[0])
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        assert mis == [0]

    def test_returned_in_rank_order(self, small_udg):
        g = labeled_udg(small_udg)
        tree, _ = build_bfs_tree(g, 0)
        mis, _ = elect_mis(g, tree)
        ranks = [tree.rank(v) for v in mis]
        assert ranks == sorted(ranks)
