"""Unit tests for distributed BFS tree construction."""

import pytest

from repro.distributed import build_bfs_tree
from repro.graphs import Graph, bfs_tree as centralized_bfs_tree


class TestDistributedBFS:
    def test_levels_match_centralized(self, cycle6):
        tree, _ = build_bfs_tree(cycle6, 0)
        expected = centralized_bfs_tree(cycle6, 0)
        assert tree.level == expected.depth

    def test_levels_on_udg(self, small_udg):
        from repro.experiments.instances import int_labeled

        _, graph = small_udg
        g = int_labeled(graph)
        tree, _ = build_bfs_tree(g, 0)
        expected = centralized_bfs_tree(g, 0)
        assert tree.level == expected.depth

    def test_parents_are_one_level_up(self, small_udg):
        from repro.experiments.instances import int_labeled

        _, graph = small_udg
        g = int_labeled(graph)
        tree, _ = build_bfs_tree(g, 0)
        for child, parent in tree.parent.items():
            assert tree.level[parent] == tree.level[child] - 1
            assert g.has_edge(child, parent)

    def test_parent_tie_break_is_min_sender(self):
        # Node 3 hears offers from 1 and 2 in the same round.
        g = Graph(edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        tree, _ = build_bfs_tree(g, 0)
        assert tree.parent[3] == 1

    def test_one_transmission_per_node(self, path5):
        _, metrics = build_bfs_tree(path5, 0)
        assert metrics.transmissions == len(path5)

    def test_rounds_equal_eccentricity_plus_wave(self, path5):
        _, metrics = build_bfs_tree(path5, 0)
        assert metrics.rounds <= 4 + 2

    def test_unreachable_node_detected(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(AssertionError):
            build_bfs_tree(g, 0)

    def test_rank(self, path5):
        tree, _ = build_bfs_tree(path5, 0)
        assert tree.rank(0) == (0, 0)
        assert tree.rank(3) == (3, 3)

    def test_children_map(self, star_graph):
        tree, _ = build_bfs_tree(star_graph, 0)
        kids = tree.children()
        assert sorted(kids[0]) == [1, 2, 3, 4, 5]
