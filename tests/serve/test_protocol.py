"""Schema tests for the serve wire protocol (request/response v1)."""

import pytest

from repro.experiments.instances import default_side
from repro.serve import (
    REQUEST_SCHEMA_ID,
    RESPONSE_SCHEMA_ID,
    assert_valid_response,
    control_request,
    normalize_request,
    solve_request,
    validate_request,
    validate_response,
)


class TestBuilders:
    def test_spec_request_validates(self):
        req = solve_request("r-1", n=60, seed=2)
        assert validate_request(req) == []
        assert req["schema"] == REQUEST_SCHEMA_ID
        assert req["instance"] == {"kind": "spec", "n": 60, "seed": 2}

    def test_edges_request_validates(self):
        req = solve_request("r-1", edges=[[0, 1], [1, 2]], algorithm="waf")
        assert validate_request(req) == []
        assert req["instance"]["nodes"] == 3  # inferred from max endpoint

    def test_nodes_override(self):
        req = solve_request("r-1", edges=[[0, 1]], nodes=5)
        assert req["instance"]["nodes"] == 5

    def test_exactly_one_instance_form(self):
        with pytest.raises(ValueError):
            solve_request("r-1")
        with pytest.raises(ValueError):
            solve_request("r-1", n=10, edges=[[0, 1]])

    def test_control_requests(self):
        for op in ("ping", "stats", "shutdown"):
            req = control_request("c-1", op)
            assert validate_request(req) == []
        with pytest.raises(ValueError):
            control_request("c-1", "solve")
        with pytest.raises(ValueError):
            control_request("c-1", "nope")


class TestValidateRequest:
    def test_rejects_non_object(self):
        assert validate_request([1, 2]) != []
        assert validate_request("hi") != []

    def test_rejects_wrong_schema(self):
        req = solve_request("r-1", n=10)
        req["schema"] = "other/v9"
        assert any("schema" in e for e in validate_request(req))

    def test_rejects_bad_id(self):
        req = solve_request("r-1", n=10)
        req["id"] = ""
        assert any("id" in e for e in validate_request(req))
        req["id"] = 7
        assert any("id" in e for e in validate_request(req))

    def test_rejects_unknown_op(self):
        req = solve_request("r-1", n=10)
        req["op"] = "fly"
        assert any("op" in e for e in validate_request(req))

    @pytest.mark.parametrize(
        "patch",
        [
            {"n": 0},
            {"n": 2.5},
            {"n": True},
            {"seed": "x"},
            {"side": 0},
            {"side": -1.0},
        ],
    )
    def test_rejects_bad_spec_fields(self, patch):
        req = solve_request("r-1", n=10, side=3.0)
        req["instance"].update(patch)
        assert validate_request(req) != []

    @pytest.mark.parametrize(
        "edges",
        [
            [[0, 0]],            # self-loop
            [[0, 1, 2]],         # not a pair
            [[0, 9]],            # endpoint >= nodes
            [[-1, 0]],           # negative id
            "not-a-list",
        ],
    )
    def test_rejects_bad_edges(self, edges):
        req = solve_request("r-1", edges=[[0, 1]], nodes=3)
        req["instance"]["edges"] = edges
        assert validate_request(req) != []

    def test_rejects_bad_kernel_and_cache(self):
        req = solve_request("r-1", n=10)
        req["kernel"] = "gpu"
        assert any("kernel" in e for e in validate_request(req))
        for kernel in ("auto", "indexed", "bitset", "array"):
            req["kernel"] = kernel
            assert validate_request(req) == []
        req = solve_request("r-1", n=10)
        req["cache"] = "yes"
        assert any("cache" in e for e in validate_request(req))


class TestNormalize:
    def test_applies_density_default_side(self):
        norm = normalize_request(solve_request("r-1", n=60))
        assert norm["instance"]["side"] == default_side(60)

    def test_side_cast_to_float(self):
        norm = normalize_request(solve_request("r-1", n=60, side=6))
        assert norm["instance"]["side"] == 6.0
        assert isinstance(norm["instance"]["side"], float)

    def test_canonicalises_edges(self):
        a = normalize_request(
            solve_request("a", edges=[[2, 1], [0, 1], [1, 2]], nodes=3)
        )
        b = normalize_request(
            solve_request("b", edges=[[1, 0], [1, 2]], nodes=3)
        )
        assert a["instance"]["edges"] == b["instance"]["edges"]
        assert a["instance"]["edges"] == [[0, 1], [1, 2]]

    def test_raises_listing_violations(self):
        req = solve_request("r-1", n=10)
        req["instance"]["n"] = 0
        with pytest.raises(ValueError, match="instance.n"):
            normalize_request(req)

    def test_control_passthrough(self):
        norm = normalize_request(control_request("c-1", "ping"))
        assert norm == {
            "schema": REQUEST_SCHEMA_ID,
            "id": "c-1",
            "op": "ping",
        }


class TestValidateResponse:
    def _ok(self):
        return {
            "schema": RESPONSE_SCHEMA_ID,
            "id": "r-1",
            "status": "ok",
            "result": {
                "algorithm": "greedy-connector",
                "cds_size": 5,
                "dominators": 3,
                "connectors": 2,
                "counters": {},
            },
            "fingerprint": "ab" * 8,
            "cached": False,
            "batch": 1,
            "elapsed": 0.01,
        }

    def test_ok_solve_accepted(self):
        assert validate_response(self._ok()) == []
        assert_valid_response(self._ok())

    def test_error_accepted_and_exclusive(self):
        err = {
            "schema": RESPONSE_SCHEMA_ID,
            "id": None,
            "status": "error",
            "error": {"type": "ProtocolError", "message": "bad"},
        }
        assert validate_response(err) == []
        err["result"] = {}
        assert any("must not carry" in e for e in validate_response(err))

    def test_ok_must_not_carry_error(self):
        resp = self._ok()
        resp["error"] = {"type": "X", "message": "y"}
        assert validate_response(resp) != []

    @pytest.mark.parametrize(
        "patch",
        [
            {"result": None},
            {"fingerprint": 3},
            {"cached": "no"},
            {"batch": -1},
            {"batch": True},
            {"elapsed": -0.1},
            {"status": "maybe"},
        ],
    )
    def test_rejects_broken_ok_fields(self, patch):
        resp = self._ok()
        resp.update(patch)
        assert validate_response(resp) != []

    def test_control_ok_skips_result_checks(self):
        resp = {
            "schema": RESPONSE_SCHEMA_ID,
            "id": "c-1",
            "op": "ping",
            "status": "ok",
        }
        assert validate_response(resp) == []

    def test_assert_raises(self):
        with pytest.raises(ValueError, match="invalid response"):
            assert_valid_response({"schema": "x"})
