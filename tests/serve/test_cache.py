"""Tests for serve fingerprinting and the LRU result cache."""

from repro.experiments.parallel import SweepCell, cell_key
from repro.reliability.checkpoint import grid_fingerprint
from repro.serve import (
    ResultCache,
    normalize_request,
    request_fingerprint,
    request_key,
    request_label,
    solve_request,
)


def _norm(**kwargs):
    return normalize_request(solve_request("r", **kwargs))


class TestRequestIdentity:
    def test_spec_key_is_sweep_cell_key(self):
        # The serve cache and the sweep checkpoint ledger must agree on
        # cell identity byte-for-byte.
        req = _norm(n=60, seed=2, side=6.2)
        assert request_key(req) == cell_key(SweepCell(n=60, side=6.2, seed=2))

    def test_fingerprint_matches_checkpoint_machinery(self):
        req = _norm(n=60, seed=2, side=6.2, algorithm="greedy", kernel="auto")
        expected = grid_fingerprint(
            [cell_key(SweepCell(n=60, side=6.2, seed=2))], "solve:greedy:auto"
        )
        assert request_fingerprint(req) == expected
        assert request_label(req) == "solve:greedy:auto"

    def test_fingerprint_changes_with_every_dimension(self):
        base = _norm(n=60, seed=2, side=6.2)
        variants = [
            _norm(n=61, seed=2, side=6.2),
            _norm(n=60, seed=3, side=6.2),
            _norm(n=60, seed=2, side=6.3),
            _norm(n=60, seed=2, side=6.2, algorithm="waf"),
            _norm(n=60, seed=2, side=6.2, kernel="bitset"),
        ]
        fingerprints = {request_fingerprint(v) for v in variants}
        assert request_fingerprint(base) not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_edge_order_does_not_change_fingerprint(self):
        a = _norm(edges=[[2, 1], [0, 1]], nodes=3)
        b = _norm(edges=[[0, 1], [1, 2], [1, 2]], nodes=3)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_edge_instances_keyed_by_content(self):
        a = _norm(edges=[[0, 1], [1, 2]], nodes=3)
        b = _norm(edges=[[0, 1], [0, 2]], nodes=3)
        assert request_fingerprint(a) != request_fingerprint(b)
        assert request_key(a).startswith("nodes=3;edges=sha256:")


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("fp") is None
        cache.put("fp", {"x": 1})
        assert cache.get("fp") == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert "fp" in cache and len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0 and cache.evictions == 0

    def test_stats_snapshot(self):
        cache = ResultCache(1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)
        assert cache.stats() == {
            "capacity": 1,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
        }
