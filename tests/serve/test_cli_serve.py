"""End-to-end tests for the ``serve`` / ``serve-client`` CLI modes,
driven over a Unix socket with the daemon on a background thread."""

import json
import os
import threading
import time

import pytest

from repro.cli import main


@pytest.fixture
def daemon(tmp_path):
    """A ``python -m repro serve`` daemon on a tmp Unix socket."""
    path = str(tmp_path / "serve.sock")
    thread = threading.Thread(
        target=main, args=(["serve", "--socket", path],), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 15
    while not os.path.exists(path):
        assert time.monotonic() < deadline, "daemon did not bind its socket"
        time.sleep(0.02)
    yield path
    main(["serve-client", "--connect", path, "--shutdown"])
    thread.join(15)
    assert not thread.is_alive()


def _client(daemon, *argv):
    return main(["serve-client", "--connect", daemon, *argv])


class TestServeClientCli:
    def test_ping(self, daemon, capsys):
        assert _client(daemon, "--ping") == 0
        assert "ping: ok" in capsys.readouterr().out

    def test_solve_then_cached(self, daemon, capsys):
        assert _client(daemon, "--n", "20", "--seed", "1") == 0
        first = capsys.readouterr().out
        assert "cached=False" in first and "|CDS|=" in first
        assert _client(daemon, "--n", "20", "--seed", "1") == 0
        second = capsys.readouterr().out
        assert "cached=True" in second

    def test_json_output_is_schema_valid(self, daemon, capsys):
        from repro.serve import validate_response

        assert _client(daemon, "--n", "20", "--seed", "2", "--json") == 0
        response = json.loads(capsys.readouterr().out)
        assert validate_response(response) == []

    def test_stats_prints_json(self, daemon, capsys):
        assert _client(daemon, "--stats") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert "cache" in payload["stats"]

    def test_loadgen_writes_report(self, daemon, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert _client(
            daemon, "--loadgen", "--ns", "20", "--seeds", "0:3",
            "--requests", "12", "--concurrency", "2", "--out", str(out),
        ) == 0
        assert "req/s" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.serve/load-report/v1"
        assert report["ok"] is True and report["requests"] == 12

    def test_no_op_selected_is_usage_error(self, daemon, capsys):
        assert _client(daemon) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_unreachable_daemon(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.sock")
        assert main(["serve-client", "--connect", missing, "--ping"]) == 1
        assert "cannot reach daemon" in capsys.readouterr().err


class TestServeCli:
    def test_drain_summary_printed(self, tmp_path, capsys):
        path = str(tmp_path / "s.sock")
        thread = threading.Thread(
            target=main, args=(["serve", "--socket", path],), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 15
        while not os.path.exists(path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert main(["serve-client", "--connect", path, "--n", "20"]) == 0
        assert main(["serve-client", "--connect", path, "--shutdown"]) == 0
        thread.join(15)
        out = capsys.readouterr().out
        assert "serving on" in out
        assert "drained: " in out and "1 cell(s) solved" in out

    def test_bad_config_rejected(self, capsys):
        assert main(["serve", "--batch-window", "-1"]) == 2
        assert "batch_window" in capsys.readouterr().err

    def test_bad_metrics_interval_rejected(self, capsys):
        assert main(["serve", "--metrics-interval", "0"]) == 2
        assert "metrics-interval" in capsys.readouterr().err


class TestServeTelemetryCli:
    def test_exporter_and_snapshots_end_to_end(self, tmp_path, capsys):
        """The acceptance path: scrape a live exposition mid-run, then
        check the drained stream's final counters are bit-identical to
        the --stats-out run record."""
        import re
        import urllib.request

        from repro.obs.expose import read_snapshots, validate_exposition

        path = str(tmp_path / "s.sock")
        snaps_path = tmp_path / "metrics.jsonl"
        record_path = tmp_path / "record.json"
        thread = threading.Thread(
            target=main,
            args=([
                "serve", "--socket", path,
                "--metrics-port", "0",
                "--metrics-out", str(snaps_path),
                "--metrics-interval", "0.05",
                "--stats-out", str(record_path),
            ],),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 15
        while not os.path.exists(path):
            assert time.monotonic() < deadline, "daemon did not bind"
            time.sleep(0.02)
        url = None
        buffer = ""
        while url is None:
            assert time.monotonic() < deadline, "exporter URL never printed"
            buffer += capsys.readouterr().out
            match = re.search(r"http://[\d.]+:\d+/metrics", buffer)
            if match:
                url = match.group(0)
            else:
                time.sleep(0.02)

        assert main(["serve-client", "--connect", path, "--n", "20"]) == 0
        assert main(["serve-client", "--connect", path, "--n", "20"]) == 0
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read().decode("utf-8")
        assert validate_exposition(body) == []
        assert "serve_requests_total" in body
        assert "serve_latency_wall_bucket" in body

        assert main(["serve-client", "--connect", path, "--shutdown"]) == 0
        thread.join(15)
        assert not thread.is_alive()
        record = json.loads(record_path.read_text())
        snaps = read_snapshots(snaps_path)
        # the final (post-drain) snapshot and the run record describe
        # the same lifetime: counters and histograms bit-identical.
        assert snaps[-1]["counters"] == record["counters"]
        assert snaps[-1]["histograms"] == record["histograms"]
        assert record["counters"]["serve.requests"] >= 2
