"""Tests for the deterministic load generator and its audit report."""

import pytest

from repro.serve import (
    LOAD_REPORT_SCHEMA_ID,
    ServeConfig,
    ServerThread,
    request_sequence,
    run_load,
)


class TestRequestSequence:
    def test_deterministic_per_seed(self):
        a = request_sequence([20, 40], [0, 1], 30, rng_seed=7)
        b = request_sequence([20, 40], [0, 1], 30, rng_seed=7)
        assert a == b
        c = request_sequence([20, 40], [0, 1], 30, rng_seed=8)
        assert a != c

    def test_covers_only_the_grid(self):
        sequence = request_sequence([20], [1, 2], 50, rng_seed=0)
        assert len(sequence) == 50
        drawn = {
            (r["instance"]["n"], r["instance"]["seed"]) for r in sequence
        }
        assert drawn <= {(20, 1), (20, 2)}

    def test_request_ids_unique(self):
        sequence = request_sequence([20], [1], 10)
        assert len({r["id"] for r in sequence}) == 10

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            request_sequence([], [1], 5)
        with pytest.raises(ValueError):
            request_sequence([20], [1], 0)


class TestRunLoad:
    def test_load_report_audits_clean(self):
        sequence = request_sequence([20, 30], [1, 2], 40, rng_seed=3)
        with ServerThread(ServeConfig()) as thread:
            report = run_load(thread.address, sequence, concurrency=4)
        assert report["schema"] == LOAD_REPORT_SCHEMA_ID
        assert report["ok"] is True
        assert report["requests"] == 40
        assert report["errors"] == 0
        assert report["schema_violations"] == []
        assert report["identity_violations"] == []
        assert report["requests_per_second"] > 0
        latency = report["latency_seconds"]
        assert latency["count"] == 40
        assert latency["p50"] <= latency["p99"] <= latency["max"]
        # 40 requests over a 4-instance grid: most were repeats, so the
        # daemon's cache must have absorbed the bulk of the load.
        assert report["server"]["cache_hit_rate"] > 0.5
        stats = report["server"]["stats"]
        assert stats["cells_solved"] == 4

    def test_errors_flagged_not_raised(self):
        # An unknown algorithm makes every request fail server-side;
        # the load run must complete and report it, not blow up.
        sequence = request_sequence([20], [1], 5, algorithm="greedy")
        for request in sequence:
            request["algorithm"] = "nope"
        with ServerThread(ServeConfig()) as thread:
            report = run_load(thread.address, sequence, concurrency=2)
        assert report["ok"] is False
        assert report["errors"] == 5

    def test_concurrency_validation(self):
        with pytest.raises(ValueError):
            run_load(("127.0.0.1", 1), [], concurrency=0)
