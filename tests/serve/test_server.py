"""End-to-end tests for the solve daemon: cache correctness (the
bit-identity contract), single-flight coalescing, CellError
propagation, protocol errors, and drain-time obs emission."""

import json
import threading

import pytest

from repro.experiments.instances import default_side
from repro.experiments.parallel import SweepCell, solve_cell
from repro.obs import OBS
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
    validate_response,
)


def canonical(result: dict) -> str:
    """The bit-identity rendering: canonical JSON of the result object."""
    return json.dumps(result, sort_keys=True)


@pytest.fixture
def server():
    with ServerThread(ServeConfig()) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServeClient(server.address, timeout=30) as c:
        yield c


class TestCacheCorrectness:
    def test_repeat_request_bit_identical_to_cold_solve(self, server, client):
        cold = client.solve(n=24, seed=1)
        warm = client.solve(n=24, seed=1)
        assert validate_response(cold) == []
        assert validate_response(warm) == []
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert canonical(warm["result"]) == canonical(cold["result"])
        assert warm["fingerprint"] == cold["fingerprint"]
        # ... and both are bit-identical to solving the cell directly
        # through the sweep machinery, counters included.
        direct = solve_cell(
            SweepCell(n=24, side=default_side(24), seed=1), algorithm="greedy"
        )
        assert canonical(cold["result"]) == canonical(direct)
        assert server.server.stats.cells_solved == 1

    def test_changed_spec_changes_fingerprint_and_resolves(self, client):
        first = client.solve(n=24, seed=1)
        for kwargs in (
            {"n": 25, "seed": 1},
            {"n": 24, "seed": 2},
            {"n": 24, "seed": 1, "side": 4.4},
            {"n": 24, "seed": 1, "algorithm": "waf"},
            {"n": 24, "seed": 1, "kernel": "bitset"},
        ):
            other = client.solve(**kwargs)
            assert other["status"] == "ok"
            assert other["cached"] is False, kwargs
            assert other["fingerprint"] != first["fingerprint"], kwargs

    def test_concurrent_identical_requests_solve_once(self, server):
        responses = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def go():
            with ServeClient(server.address, timeout=30) as c:
                barrier.wait()
                response = c.solve(n=30, seed=5)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=go) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert len(responses) == 6
        assert all(r["status"] == "ok" for r in responses)
        # single-flight: one solve serves everyone, whether a follower
        # coalesced onto the in-flight future or hit the cache after.
        assert server.server.stats.cells_solved == 1
        renderings = {canonical(r["result"]) for r in responses}
        assert len(renderings) == 1

    def test_eviction_forces_resolve(self):
        with ServerThread(ServeConfig(cache_size=1)) as small:
            with ServeClient(small.address, timeout=30) as c:
                a1 = c.solve(n=20, seed=1)
                c.solve(n=20, seed=2)  # evicts seed=1
                a2 = c.solve(n=20, seed=1)  # re-solves, evicts seed=2
            assert a1["cached"] is False and a2["cached"] is False
            assert small.server.stats.cells_solved == 3
            assert small.server.cache.evictions == 2
            assert canonical(a1["result"]) == canonical(a2["result"])

    def test_cache_false_bypasses_cache(self, server, client):
        r1 = client.solve(n=20, seed=3, cache=False)
        r2 = client.solve(n=20, seed=3, cache=False)
        assert r1["cached"] is False and r2["cached"] is False
        assert server.server.stats.cells_solved == 2
        assert canonical(r1["result"]) == canonical(r2["result"])


class TestSolvePaths:
    def test_inline_edges_instance(self, client):
        response = client.solve(
            edges=[[0, 1], [1, 2], [2, 3], [3, 0]], algorithm="waf"
        )
        assert response["status"] == "ok"
        result = response["result"]
        assert result["nodes"] == 4 and result["edges"] == 4
        assert result["cds_size"] >= 2
        assert result["counters"]

    def test_edge_order_hits_same_cache_entry(self, client):
        a = client.solve(edges=[[0, 1], [1, 2]])
        b = client.solve(edges=[[2, 1], [1, 0]])
        assert a["cached"] is False and b["cached"] is True
        assert canonical(a["result"]) == canonical(b["result"])

    def test_algorithm_choice_respected(self, client):
        response = client.solve(n=24, seed=1, algorithm="guha-khuller")
        assert response["result"]["algorithm"].startswith("guha-khuller")


class TestErrorPaths:
    def test_disconnected_edges_structured_error(self, client):
        response = client.solve(edges=[[0, 1], [2, 3]])
        assert response["status"] == "error"
        assert validate_response(response) == []
        assert response["error"]["type"] == "ValueError"
        assert "disconnected" in response["error"]["message"]
        # the CellError context came along: which item, at which index
        assert "index" in response["error"]
        assert "edges" in response["error"]["item"]
        # regression: the connection survives the failure
        assert client.ping()["status"] == "ok"

    def test_cellerror_in_batch_spares_batchmates(self, server):
        # One bad request (disconnected instance) sharing a batching
        # window with good ones: parallel_map's fail-fast CellError
        # must become a structured error for the bad request only.
        with ServerThread(ServeConfig(batch_window=0.4)) as thread:
            responses = {}
            lock = threading.Lock()
            barrier = threading.Barrier(3)

            def go(name, **kwargs):
                with ServeClient(thread.address, timeout=30) as c:
                    barrier.wait()
                    response = c.solve(**kwargs)
                with lock:
                    responses[name] = response

            threads = [
                threading.Thread(
                    target=go, args=("bad",),
                    kwargs={"edges": [[0, 1], [2, 3]]},
                ),
                threading.Thread(
                    target=go, args=("good-a",), kwargs={"n": 20, "seed": 1}
                ),
                threading.Thread(
                    target=go, args=("good-b",), kwargs={"n": 20, "seed": 2}
                ),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert responses["bad"]["status"] == "error"
            assert responses["bad"]["error"]["type"] == "ValueError"
            assert responses["good-a"]["status"] == "ok"
            assert responses["good-b"]["status"] == "ok"
            assert thread.server.stats.batch_fallbacks >= 1

    def test_unknown_algorithm_is_request_error(self, client):
        response = client.solve(n=20, seed=1, algorithm="magic")
        assert response["status"] == "error"
        assert response["error"]["type"] == "ValueError"

    def test_kernel_on_unkernelized_algorithm(self, client):
        response = client.solve(
            edges=[[0, 1], [1, 2]], algorithm="steiner", kernel="bitset"
        )
        assert response["status"] == "error"
        assert "kernel" in response["error"]["message"]

    def test_invalid_json_keeps_connection_open(self, client):
        client._file.write(b"{not json\n")
        client._file.flush()
        response = json.loads(client._file.readline())
        assert response["status"] == "error"
        assert response["id"] is None
        assert response["error"]["type"] == "ProtocolError"
        assert validate_response(response) == []
        assert client.ping()["status"] == "ok"

    def test_schema_violation_reported_with_id(self, client):
        response = client.request(
            {"schema": "repro.serve/request/v1", "id": "bad-1", "op": "solve",
             "instance": {"kind": "spec", "n": 0, "seed": 0}}
        )
        assert response["status"] == "error"
        assert response["id"] == "bad-1"
        assert "instance.n" in response["error"]["message"]


class TestControlAndStats:
    def test_ping_and_stats(self, server, client):
        assert client.ping()["status"] == "ok"
        client.solve(n=20, seed=1)
        client.solve(n=20, seed=1)
        stats = client.stats()["stats"]
        assert stats["requests"] >= 3
        assert stats["cells_solved"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["latency"]["count"] == 2
        assert stats["latency"]["p50"] <= stats["latency"]["p99"]

    def test_shutdown_drains(self):
        thread = ServerThread(ServeConfig()).start()
        with ServeClient(thread.address, timeout=30) as c:
            c.solve(n=20, seed=1)
            ack = c.shutdown()
            assert ack["status"] == "ok" and ack["draining"] is True
        thread._thread.join(10)
        assert not thread._thread.is_alive()

    def test_emit_obs_materialises_counters(self):
        with ServerThread(ServeConfig()) as thread:
            with ServeClient(thread.address, timeout=30) as c:
                c.solve(n=20, seed=1)
                c.solve(n=20, seed=1)
        with OBS.capture() as reg:
            thread.server.emit_obs()
            counters = reg.counters()
        assert counters["serve.requests"] == 2
        assert counters["serve.cells.solved"] == 1
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.requests.solve"] == 2
        # merged solver counters ride along with the serve.* ones
        assert any(name.startswith("greedy.") for name in counters)
        timers = reg.timers()
        assert timers["serve.request"].count == 2


class TestLiveTelemetry:
    """The live metrics fold: stats must answer with histogram
    percentiles *while* requests are in flight — no drain required —
    and the exporter-facing registry must carry the same numbers."""

    def test_stats_mid_flight_reports_histograms(self):
        # A long batch window holds the second request in the batcher;
        # a second connection queries stats while it is queued.
        with ServerThread(ServeConfig(batch_window=0.5)) as thread:
            with ServeClient(thread.address, timeout=30) as warm:
                warm.solve(n=20, seed=1)  # one completed sample

            done = threading.Event()
            inflight_response = {}

            def hold():
                with ServeClient(thread.address, timeout=30) as c:
                    inflight_response["r"] = c.solve(n=24, seed=9)
                done.set()

            holder = threading.Thread(target=hold)
            holder.start()
            try:
                with ServeClient(thread.address, timeout=30) as probe:
                    seen_inflight = False
                    for _ in range(200):
                        stats = probe.stats()["stats"]
                        if stats["inflight"] >= 1 and not done.is_set():
                            seen_inflight = True
                            break
                    assert seen_inflight, "never observed the held request"
                    # mid-flight, the completed sample is already folded
                    wall = stats["histograms"]["serve.latency.wall"]
                    assert wall["count"] >= 1
                    assert wall["p50"] <= wall["p99"] <= wall["max"]
                    assert "serve.latency.queue" in stats["histograms"]
                    assert "serve.latency.solve" in stats["histograms"]
            finally:
                holder.join(30)
            assert inflight_response["r"]["status"] == "ok"

    def test_metrics_registry_matches_drain_record(self, server, client):
        client.solve(n=20, seed=1)
        client.solve(n=20, seed=1)
        live = server.server.metrics_registry()
        assert live.counters()["serve.requests"] == 2
        assert live.counters()["serve.cache.hits"] == 1
        assert live.histogram("serve.latency.wall").count == 2
        # drain-time emission folds the identical state
        with OBS.capture() as reg:
            server.server.emit_obs()
        assert reg.counters() == live.counters()
        assert (
            reg.histogram("serve.latency.wall").state()
            == live.histogram("serve.latency.wall").state()
        )

    def test_queue_wait_histogram_fills_under_batching(self):
        with ServerThread(ServeConfig(batch_window=0.1)) as thread:
            with ServeClient(thread.address, timeout=30) as c:
                c.solve(n=20, seed=1)
                c.solve(n=20, seed=2)
            queue = thread.server.stats.queue_wait
            solve = thread.server.stats.solve
        assert queue.count == 2  # one sample per enqueued request
        assert solve.count == 2
        # queued at least as long as the batch window makes them wait
        assert queue.max >= 0.0


class TestTraceCorrelation:
    def test_traces_unique_and_increasing(self, client):
        responses = [
            client.solve(n=20, seed=1),
            client.solve(n=20, seed=1),  # cache hit still gets a trace
            client.solve(n=20, seed=2),
        ]
        traces = [r["trace"] for r in responses]
        assert all(isinstance(t, int) and t >= 1 for t in traces)
        assert traces == sorted(traces)
        assert len(set(traces)) == 3
        assert validate_response(responses[0]) == []

    def test_error_response_carries_trace(self, client):
        response = client.solve(edges=[[0, 1], [2, 3]])
        assert response["status"] == "error"
        assert isinstance(response["trace"], int)
        assert validate_response(response) == []

    def test_batch_note_lists_member_traces(self, server):
        notes = []

        class Recorder:
            def begin(self, name):
                return None

            def end(self, name, token, seconds):
                pass

            def note(self, name, data):
                notes.append((name, data))

        recorder = Recorder()
        OBS.enable()
        OBS.add_hook(recorder)
        try:
            with ServeClient(server.address, timeout=30) as c:
                first = c.solve(n=20, seed=1)
                second = c.solve(n=20, seed=1)
        finally:
            OBS.remove_hook(recorder)
            OBS.disable()
        batches = [d for n, d in notes if n == "serve.batch"]
        requests = [d for n, d in notes if n == "serve.request"]
        assert len(batches) == 1
        assert batches[0]["traces"] == [first["trace"]]
        assert batches[0]["cells"] == 1
        # request notes correlate back: the solved one names its batch,
        # the cache hit names none.
        by_trace = {d["trace"]: d for d in requests}
        assert by_trace[first["trace"]]["batch_seq"] == batches[0]["seq"]
        assert by_trace[second["trace"]]["cached"] is True

    def test_trace_rejected_when_malformed(self, client):
        response = client.solve(n=20, seed=1)
        assert validate_response(response) == []
        response["trace"] = 0
        assert any("trace" in v for v in validate_response(response))
        response["trace"] = True
        assert any("trace" in v for v in validate_response(response))


class TestUnixSocket:
    def test_round_trip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with ServerThread(ServeConfig(socket_path=path)) as thread:
            assert thread.address == path
            with ServeClient(path, timeout=30) as c:
                response = c.solve(n=20, seed=1)
                assert response["status"] == "ok"
