"""Tests for the solve daemon (repro.serve)."""
