"""Unit tests for the experiment harness."""

import pytest

from repro.experiments import Table, all_experiments, get_experiment
from repro.experiments.harness import ExperimentResult


class TestTable:
    def test_add_row_and_render(self):
        t = Table(title="demo", headers=["a", "b"])
        t.add_row(1, 2.5)
        out = t.render()
        assert "demo" in out and "2.500" in out

    def test_row_arity_checked(self):
        t = Table(title="demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_csv(self):
        t = Table(title="demo", headers=["a", "b"])
        t.add_row("x", 1)
        assert t.to_csv() == "a,b\nx,1\n"

    def test_render_empty(self):
        t = Table(title="empty", headers=["a"])
        assert "empty" in t.render()


class TestExperimentResult:
    def test_render_status(self):
        r = ExperimentResult(
            experiment_id="X", title="t", tables=[], passed=True, notes="n"
        )
        assert "PASS" in r.render()
        r2 = ExperimentResult(experiment_id="X", title="t", tables=[], passed=False)
        assert "FAIL" in r2.render()


class TestRegistry:
    def test_all_registered(self):
        registry = all_experiments()
        expected = {"T3", "T6", "C7", "T8", "T10", "F1F2", "LEM", "CMP", "DIST", "S5"}
        assert expected <= set(registry)

    def test_lookup_case_insensitive(self):
        assert get_experiment("t3") is get_experiment("T3")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_ids_match_design_doc(self):
        # Every experiment id in the registry appears in DESIGN.md's index.
        import pathlib

        design = pathlib.Path(__file__).resolve().parents[2] / "DESIGN.md"
        text = design.read_text()
        for key in all_experiments():
            lookup = {"F1F2": "F1", "LEM": "L1"}.get(key, key)
            assert lookup in text
