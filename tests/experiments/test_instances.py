"""Tests for the shared experiment instance helpers."""

import math

import pytest

from repro.experiments.instances import (
    connected_planar_sets,
    connected_udg_instances,
    default_side,
    int_labeled,
    random_star,
)
from repro.geometry import Point, is_star
from repro.graphs import is_connected


class TestDefaultSide:
    def test_targets_mean_degree(self):
        for n in (20, 50, 100):
            side = default_side(n, mean_degree=6.0)
            implied = math.pi * n / side**2
            assert implied == pytest.approx(6.0, rel=0.01) or side == 1.5

    def test_floor_for_tiny_n(self):
        assert default_side(2) == 1.5

    def test_grows_with_n(self):
        assert default_side(100) > default_side(25)


class TestInstanceStreams:
    def test_connected_udg_instances(self):
        for pts, g in connected_udg_instances(12, default_side(12), range(3)):
            assert len(pts) == 12
            assert is_connected(g)

    def test_connected_planar_sets(self):
        for pts in connected_planar_sets(10, default_side(10), range(2)):
            assert len(pts) == 10

    def test_deterministic(self):
        a = list(connected_udg_instances(10, 2.4, range(2)))
        b = list(connected_udg_instances(10, 2.4, range(2)))
        assert [p for p, _ in a] == [p for p, _ in b]


class TestRandomStar:
    def test_is_star_with_center_first(self):
        for n in (1, 2, 4, 6):
            star = random_star(n, seed=n)
            assert len(star) == n
            assert star[0] == Point(0.0, 0.0)
            assert is_star(star)

    def test_deterministic(self):
        assert random_star(5, seed=9) == random_star(5, seed=9)


class TestIntLabeled:
    def test_preserves_structure(self, small_udg):
        _, g = small_udg
        labeled = int_labeled(g)
        assert len(labeled) == len(g)
        assert labeled.edge_count() == g.edge_count()
        assert set(labeled.nodes()) == set(range(len(g)))

    def test_sorted_by_coordinates(self, small_udg):
        _, g = small_udg
        labeled = int_labeled(g)
        # id 0 must correspond to the lexicographically smallest point:
        # its degree matches.
        smallest = min(g.nodes())
        assert labeled.degree(0) == g.degree(smallest)
