"""The parallel sweep runner must be invisible in the results.

``jobs=N`` is only admissible because output is bit-identical to the
serial loop — same cells, same order, same numbers.  These tests pin
that on the map primitive, the sweep workers, and the experiment
runner (using the cheapest registered experiments to keep the forked
runs fast).
"""

import pickle

import pytest

from repro.experiments.instances import default_side
from repro.experiments.parallel import (
    SweepCell,
    cell_key,
    default_jobs,
    merge_cell_counters,
    parallel_map,
    run_experiments_parallel,
    solve_cell,
    solve_cells,
    solve_cells_resilient,
    sweep_cells,
)
from repro.reliability import CellError


def _square(x):
    """Module-level so it pickles across pool workers."""
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise ZeroDivisionError("boom on two")
    return x


class TestParallelMap:
    def test_serial_semantics(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]
        assert parallel_map(_square, []) == []

    def test_parallel_matches_serial_in_order(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2) == [
            _square(x) for x in items
        ]

    def test_single_item_stays_in_process(self):
        # len < 2 short-circuits: even unpicklable workers are fine.
        assert parallel_map(lambda x: x + 1, [41], jobs=4) == [42]

    def test_default_jobs_is_sane(self):
        assert default_jobs() >= 1


class TestCellErrorContext:
    """Regression: a worker exception must name the failing cell.

    Before the reliability PR a pool-worker exception surfaced as a
    bare traceback with no indication of *which* item died; now both
    the serial and pool paths raise a :class:`CellError` carrying the
    item repr, its input index, and the worker-side traceback.
    """

    def test_serial_path_wraps_with_context(self):
        with pytest.raises(CellError) as excinfo:
            parallel_map(_fail_on_two, [1, 2, 3])
        err = excinfo.value
        assert err.index == 1
        assert err.item_repr == "2"
        assert err.error_type == "ZeroDivisionError"
        assert "boom on two" in str(err)
        assert "_fail_on_two" in err.worker_traceback
        assert isinstance(err.__cause__, ZeroDivisionError)

    def test_pool_path_wraps_with_context(self):
        with pytest.raises(CellError) as excinfo:
            parallel_map(_fail_on_two, [1, 2, 3], jobs=2)
        err = excinfo.value
        assert err.index == 1
        assert err.item_repr == "2"
        assert err.error_type == "ZeroDivisionError"
        assert "_fail_on_two" in err.worker_traceback

    def test_cell_error_survives_pickling_intact(self):
        try:
            parallel_map(_fail_on_two, [1, 2, 3])
        except CellError as err:
            clone = pickle.loads(pickle.dumps(err))
            assert clone.index == err.index
            assert clone.item_repr == err.item_repr
            assert clone.error_type == err.error_type
            assert clone.worker_traceback == err.worker_traceback
            assert str(clone) == str(err)
        else:  # pragma: no cover
            pytest.fail("expected CellError")


class TestSweepCells:
    def test_grid_is_n_major_and_deterministic(self):
        cells = sweep_cells([10, 20], [1, 2], side=5.0)
        assert cells == [
            SweepCell(10, 5.0, 1),
            SweepCell(10, 5.0, 2),
            SweepCell(20, 5.0, 1),
            SweepCell(20, 5.0, 2),
        ]

    def test_side_callable(self):
        cells = sweep_cells([4, 9], [0], side=lambda n: float(n) ** 0.5)
        assert [c.side for c in cells] == [2.0, 3.0]

    def test_side_default(self):
        (cell,) = sweep_cells([25], [7])
        assert cell.side == default_side(25)


class TestSolveCells:
    def test_solve_cell_shape(self):
        out = solve_cell(SweepCell(12, 3.0, 5), algorithm="greedy")
        assert out["n"] == 12 and out["seed"] == 5
        assert out["cds_size"] == out["dominators"] + out["connectors"]
        assert out["counters"]["mis.selected"] == out["dominators"]
        assert out["counters"]["gain.evaluations"] > 0

    @pytest.mark.parametrize("algorithm", ["greedy", "waf"])
    def test_parallel_results_identical_to_serial(self, algorithm):
        cells = sweep_cells([10, 14], [1, 2], side=3.2)
        serial = solve_cells(cells, algorithm=algorithm, jobs=1)
        parallel = solve_cells(cells, algorithm=algorithm, jobs=2)
        assert serial == parallel  # counters included, order included

    def test_cell_key_unique_per_grid(self):
        cells = sweep_cells([10, 14], [1, 2], side=3.2)
        assert len({cell_key(c) for c in cells}) == len(cells)

    def test_kernel_pinned_and_echoed(self):
        cell = SweepCell(12, 3.0, 5)
        auto = solve_cell(cell, algorithm="greedy")
        pinned = solve_cell(cell, algorithm="greedy", kernel="bitset")
        assert pinned["kernel"] == "bitset"
        assert "kernel" not in auto  # shape unchanged without pinning
        assert pinned["cds_size"] == auto["cds_size"]

    def test_kernel_rejected_for_unkernelized_solver(self):
        with pytest.raises(ValueError, match="does not take a kernel"):
            solve_cell(SweepCell(10, 3.0, 0), algorithm="steiner", kernel="bitset")

    def test_resilient_matches_plain_solve_cells(self):
        cells = sweep_cells([10, 14], [1, 2], side=3.2)
        plain = solve_cells(cells, algorithm="greedy", jobs=1)
        report = solve_cells_resilient(cells, algorithm="greedy", jobs=2)
        assert report.ok
        assert report.results == plain
        assert merge_cell_counters(report.results) == merge_cell_counters(plain)

    def test_merge_cell_counters_sums_and_sorts(self):
        merged = merge_cell_counters(
            [
                {"counters": {"b": 2, "a": 1}},
                {"counters": {"a": 3}},
                {},  # a summary without counters is fine
            ]
        )
        assert merged == {"a": 4, "b": 2}
        assert list(merged) == ["a", "b"]


class TestRunExperimentsParallel:
    CHEAP = ["F1F2", "T6"]

    def test_matches_serial_run(self):
        serial = run_experiments_parallel(self.CHEAP, jobs=1)
        forked = run_experiments_parallel(self.CHEAP, jobs=2)
        assert [r.experiment_id for r in forked] == [
            r.experiment_id for r in serial
        ]
        assert [r.render() for r in forked] == [r.render() for r in serial]
        assert all(r.passed for r in forked)

    def test_unknown_id_raises_before_forking(self):
        with pytest.raises(KeyError):
            run_experiments_parallel(["NOPE"], jobs=2)


class TestCollectObs:
    """collect_obs=True: instrumentation crosses the process boundary."""

    CHEAP = ["F1F2", "T6"]

    @staticmethod
    def merge(outcomes):
        from repro.obs import Registry

        reg = Registry()
        for _result, state, _events in outcomes:
            reg.merge_state(state)
        return reg

    def test_triples_returned_and_results_match_plain_run(self):
        plain = run_experiments_parallel(self.CHEAP, jobs=1)
        triples = run_experiments_parallel(self.CHEAP, jobs=2, collect_obs=True)
        assert [r.render() for r, _, _ in triples] == [
            r.render() for r in plain
        ]
        for _result, state, events in triples:
            assert set(state) == {"counters", "timers"}
            assert events is None  # collect_events was off

    def test_merged_parallel_counters_equal_serial(self):
        serial = run_experiments_parallel(self.CHEAP, jobs=1, collect_obs=True)
        forked = run_experiments_parallel(self.CHEAP, jobs=2, collect_obs=True)
        assert self.merge(forked).counters() == self.merge(serial).counters()
        # Timer counts (span executions) must agree too; totals are
        # wall-clock and thus machine noise.
        serial_timers = self.merge(serial).timings()
        forked_timers = self.merge(forked).timings()
        assert {
            name: t["count"] for name, t in forked_timers.items()
        } == {name: t["count"] for name, t in serial_timers.items()}

    def test_collect_events_returns_per_worker_logs(self):
        from repro.obs.events import merge_events, replay, validate_events

        triples = run_experiments_parallel(
            self.CHEAP, jobs=2, collect_obs=True, collect_events=True
        )
        logs = [events for _, _, events in triples]
        assert all(logs)
        for index, log in enumerate(logs):
            assert log[0]["run"] == f"worker-{index}"
            assert validate_events(log) == []
        merged = merge_events(logs)
        assert validate_events(merged) == []
        roots = replay(merged)
        root_names = {(r.name, r.worker) for r in roots}
        assert ("experiment.F1F2", 0) in root_names
        assert ("experiment.T6", 1) in root_names

    def test_mem_trace_collects_peak_counters(self):
        triples = run_experiments_parallel(
            ["F1F2"], jobs=1, collect_obs=True, mem_trace=True
        )
        reg = self.merge(triples)
        counters = reg.counters()
        assert counters["mem.run.peak_bytes"] > 0
        assert counters["mem.experiment.F1F2.peak_bytes"] > 0
