"""The parallel sweep runner must be invisible in the results.

``jobs=N`` is only admissible because output is bit-identical to the
serial loop — same cells, same order, same numbers.  These tests pin
that on the map primitive, the sweep workers, and the experiment
runner (using the cheapest registered experiments to keep the forked
runs fast).
"""

import pytest

from repro.experiments.instances import default_side
from repro.experiments.parallel import (
    SweepCell,
    default_jobs,
    parallel_map,
    run_experiments_parallel,
    solve_cell,
    solve_cells,
    sweep_cells,
)


def _square(x):
    """Module-level so it pickles across pool workers."""
    return x * x


class TestParallelMap:
    def test_serial_semantics(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]
        assert parallel_map(_square, []) == []

    def test_parallel_matches_serial_in_order(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2) == [
            _square(x) for x in items
        ]

    def test_single_item_stays_in_process(self):
        # len < 2 short-circuits: even unpicklable workers are fine.
        assert parallel_map(lambda x: x + 1, [41], jobs=4) == [42]

    def test_default_jobs_is_sane(self):
        assert default_jobs() >= 1


class TestSweepCells:
    def test_grid_is_n_major_and_deterministic(self):
        cells = sweep_cells([10, 20], [1, 2], side=5.0)
        assert cells == [
            SweepCell(10, 5.0, 1),
            SweepCell(10, 5.0, 2),
            SweepCell(20, 5.0, 1),
            SweepCell(20, 5.0, 2),
        ]

    def test_side_callable(self):
        cells = sweep_cells([4, 9], [0], side=lambda n: float(n) ** 0.5)
        assert [c.side for c in cells] == [2.0, 3.0]

    def test_side_default(self):
        (cell,) = sweep_cells([25], [7])
        assert cell.side == default_side(25)


class TestSolveCells:
    def test_solve_cell_shape(self):
        out = solve_cell(SweepCell(12, 3.0, 5), algorithm="greedy")
        assert out["n"] == 12 and out["seed"] == 5
        assert out["cds_size"] == out["dominators"] + out["connectors"]
        assert out["counters"]["mis.selected"] == out["dominators"]
        assert out["counters"]["gain.evaluations"] > 0

    @pytest.mark.parametrize("algorithm", ["greedy", "waf"])
    def test_parallel_results_identical_to_serial(self, algorithm):
        cells = sweep_cells([10, 14], [1, 2], side=3.2)
        serial = solve_cells(cells, algorithm=algorithm, jobs=1)
        parallel = solve_cells(cells, algorithm=algorithm, jobs=2)
        assert serial == parallel  # counters included, order included


class TestRunExperimentsParallel:
    CHEAP = ["F1F2", "T6"]

    def test_matches_serial_run(self):
        serial = run_experiments_parallel(self.CHEAP, jobs=1)
        forked = run_experiments_parallel(self.CHEAP, jobs=2)
        assert [r.experiment_id for r in forked] == [
            r.experiment_id for r in serial
        ]
        assert [r.render() for r in forked] == [r.render() for r in serial]
        assert all(r.passed for r in forked)

    def test_unknown_id_raises_before_forking(self):
        with pytest.raises(KeyError):
            run_experiments_parallel(["NOPE"], jobs=2)


class TestCollectObs:
    """collect_obs=True: instrumentation crosses the process boundary."""

    CHEAP = ["F1F2", "T6"]

    @staticmethod
    def merge(outcomes):
        from repro.obs import Registry

        reg = Registry()
        for _result, state, _events in outcomes:
            reg.merge_state(state)
        return reg

    def test_triples_returned_and_results_match_plain_run(self):
        plain = run_experiments_parallel(self.CHEAP, jobs=1)
        triples = run_experiments_parallel(self.CHEAP, jobs=2, collect_obs=True)
        assert [r.render() for r, _, _ in triples] == [
            r.render() for r in plain
        ]
        for _result, state, events in triples:
            assert set(state) == {"counters", "timers"}
            assert events is None  # collect_events was off

    def test_merged_parallel_counters_equal_serial(self):
        serial = run_experiments_parallel(self.CHEAP, jobs=1, collect_obs=True)
        forked = run_experiments_parallel(self.CHEAP, jobs=2, collect_obs=True)
        assert self.merge(forked).counters() == self.merge(serial).counters()
        # Timer counts (span executions) must agree too; totals are
        # wall-clock and thus machine noise.
        serial_timers = self.merge(serial).timings()
        forked_timers = self.merge(forked).timings()
        assert {
            name: t["count"] for name, t in forked_timers.items()
        } == {name: t["count"] for name, t in serial_timers.items()}

    def test_collect_events_returns_per_worker_logs(self):
        from repro.obs.events import merge_events, replay, validate_events

        triples = run_experiments_parallel(
            self.CHEAP, jobs=2, collect_obs=True, collect_events=True
        )
        logs = [events for _, _, events in triples]
        assert all(logs)
        for index, log in enumerate(logs):
            assert log[0]["run"] == f"worker-{index}"
            assert validate_events(log) == []
        merged = merge_events(logs)
        assert validate_events(merged) == []
        roots = replay(merged)
        root_names = {(r.name, r.worker) for r in roots}
        assert ("experiment.F1F2", 0) in root_names
        assert ("experiment.T6", 1) in root_names

    def test_mem_trace_collects_peak_counters(self):
        triples = run_experiments_parallel(
            ["F1F2"], jobs=1, collect_obs=True, mem_trace=True
        )
        reg = self.merge(triples)
        counters = reg.counters()
        assert counters["mem.run.peak_bytes"] > 0
        assert counters["mem.experiment.F1F2.peak_bytes"] > 0
