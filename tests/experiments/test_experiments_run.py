"""Smoke-run every experiment with quick parameters — each must PASS.

These are the reproduction's acceptance tests: an experiment failing
means a paper claim did not hold on our implementation.
"""

import pytest

from repro.experiments import get_experiment


class TestExperimentsPass:
    def test_t3_star_packing(self):
        result = get_experiment("T3")(max_n=4, seeds_per_n=2, grid_step=0.3)
        assert result.passed

    def test_t6_neighborhood_packing(self):
        result = get_experiment("T6")(
            chain_sizes=(3, 4, 6), random_n=6, random_seeds=2, grid_step=0.3
        )
        assert result.passed

    def test_c7_alpha_gamma(self):
        result = get_experiment("C7")(sizes=(10, 14), seeds=3)
        assert result.passed

    def test_t8_waf_ratio(self):
        result = get_experiment("T8")(sizes=(12, 16), seeds=3)
        assert result.passed

    def test_t10_greedy_ratio(self):
        result = get_experiment("T10")(sizes=(12, 16), seeds=3)
        assert result.passed

    def test_f1f2_tightness(self):
        result = get_experiment("F1F2")(chain_sizes=(3, 4, 6))
        assert result.passed

    def test_lemmas(self):
        result = get_experiment("LEM")(trials=4, step=0.35)
        assert result.passed

    def test_cmp_comparison(self):
        result = get_experiment("CMP")(n=20, seeds=2)
        assert result.passed

    def test_dist_messages(self):
        result = get_experiment("DIST")(sizes=(10, 16))
        assert result.passed

    def test_s5_funke(self):
        result = get_experiment("S5")(chain_sizes=(3, 5), resolution=180)
        assert result.passed

    def test_results_render(self):
        result = get_experiment("F1F2")(chain_sizes=(3,))
        text = result.render()
        assert "PASS" in text
        assert "Figure" in text


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "T8" in out and "CMP" in out

    def test_run_one(self, capsys):
        from repro.cli import main

        assert main(["F1F2"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["NOPE"]) == 2
