"""Unit tests for the instrumentation primitives."""

import pytest

from repro.obs import OBS, Registry, trace, traced


@pytest.fixture(autouse=True)
def _clean_default_registry():
    """Leave the shared registry how we found it: disabled and empty."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestRegistry:
    def test_disabled_by_default(self):
        assert not Registry().enabled

    def test_counter_increments(self):
        reg = Registry(enabled=True)
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counters() == {"a": 5}

    def test_counters_sorted_by_name(self):
        reg = Registry(enabled=True)
        reg.incr("z")
        reg.incr("a")
        assert list(reg.counters()) == ["a", "z"]

    def test_timer_records_spans(self):
        reg = Registry(enabled=True)
        with reg.time("t"):
            pass
        with reg.time("t"):
            pass
        timer = reg.timer("t")
        assert timer.count == 2
        assert timer.total >= 0.0
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_time_is_noop_when_disabled(self):
        reg = Registry()
        span = reg.time("t")
        assert not span.active
        with span:
            pass
        assert reg.timings() == {}

    def test_reset_clears_but_keeps_enabled(self):
        reg = Registry(enabled=True)
        reg.incr("a")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot() == {"counters": {}, "timings": {}}

    def test_capture_restores_prior_state(self):
        reg = Registry()
        reg.incr("stale")
        with reg.capture() as inner:
            assert inner is reg
            assert reg.enabled
            assert reg.counters() == {}  # reset dropped the stale counter
            reg.incr("fresh")
        assert not reg.enabled
        assert reg.counters() == {"fresh": 1}

    def test_capture_without_reset(self):
        reg = Registry()
        reg.incr("kept")
        with reg.capture(reset=False):
            reg.incr("kept")
        assert reg.counters() == {"kept": 2}

    def test_snapshot_shape(self):
        reg = Registry(enabled=True)
        reg.incr("c", 2)
        with reg.time("t"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timings"]["t"]["count"] == 1
        assert snap["timings"]["t"]["seconds"] >= 0.0


class TestTraceHelpers:
    def test_trace_records_on_default_registry(self):
        OBS.enable()
        with trace("phase"):
            pass
        assert OBS.timer("phase").count == 1

    def test_trace_noop_when_disabled(self):
        with trace("phase"):
            pass
        assert OBS.timings() == {}

    def test_traced_bare_decorator(self):
        @traced
        def work():
            return 42

        OBS.enable()
        assert work() == 42
        (name,) = OBS.timings()
        assert "work" in name

    def test_traced_named_decorator(self):
        @traced("custom.label")
        def work(x, y=1):
            return x + y

        OBS.enable()
        assert work(2, y=3) == 5
        assert OBS.timer("custom.label").count == 1

    def test_traced_disabled_passthrough(self):
        @traced("never.recorded")
        def work():
            return "ok"

        assert work() == "ok"
        assert OBS.timings() == {}

    def test_traced_preserves_metadata(self):
        @traced("label")
        def documented():
            """Docstring survives."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring survives."


class TestInstrumentedHotPaths:
    def test_greedy_reports_counters_and_phases(self, medium_udg):
        from repro.cds import greedy_connector_cds

        _, graph = medium_udg
        with OBS.capture() as reg:
            result = greedy_connector_cds(graph)
        counters = reg.counters()
        assert counters["gain.evaluations"] > 0
        assert counters["gain.dsu_unions"] > 0
        assert counters["greedy.connectors_chosen"] == len(result.connectors)
        assert counters["mis.selected"] == len(result.dominators)
        timings = reg.timings()
        assert timings["greedy.phase1"]["count"] == 1
        assert timings["greedy.phase2"]["count"] == 1

    def test_waf_reports_counters(self, medium_udg):
        from repro.cds import waf_cds

        _, graph = medium_udg
        with OBS.capture() as reg:
            result = waf_cds(graph)
        counters = reg.counters()
        assert counters["waf.coverage_evaluations"] > 0
        assert counters["waf.connectors_chosen"] == len(result.connectors)
        assert reg.timings()["waf.phase2"]["count"] == 1

    def test_udg_builders_report_pair_economy(self, small_udg):
        from repro.graphs.udg import unit_disk_graph, unit_disk_graph_naive

        points, _ = small_udg
        n = len(points)
        with OBS.capture() as reg:
            fast = unit_disk_graph(points)
            slow = unit_disk_graph_naive(points)
        counters = reg.counters()
        assert counters["udg.naive.pairs_tested"] == n * (n - 1) // 2
        assert counters["udg.grid.pairs_tested"] <= counters["udg.naive.pairs_tested"]
        assert counters["udg.grid.edges_emitted"] == fast.edge_count()
        assert counters["udg.naive.edges_emitted"] == slow.edge_count()

    def test_simulator_mirrors_metrics(self, path5):
        from repro.distributed import distributed_waf_cds
        from repro.experiments.instances import int_labeled

        graph = int_labeled(path5)
        with OBS.capture() as reg:
            _, metrics = distributed_waf_cds(graph)
        counters = reg.counters()
        assert counters["sim.transmissions"] == metrics.transmissions
        assert counters["sim.rounds"] == metrics.rounds
        assert reg.timings()["distributed.waf"]["count"] == 1

    def test_disabled_registry_records_nothing(self, small_udg):
        from repro.cds import greedy_connector_cds

        _, graph = small_udg
        greedy_connector_cds(graph)
        assert OBS.snapshot() == {"counters": {}, "timings": {}}
