"""Unit tests for the instrumentation primitives."""

import pytest

from repro.obs import OBS, Registry, trace, traced


@pytest.fixture(autouse=True)
def _clean_default_registry():
    """Leave the shared registry how we found it: disabled and empty."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestRegistry:
    def test_disabled_by_default(self):
        assert not Registry().enabled

    def test_counter_increments(self):
        reg = Registry(enabled=True)
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counters() == {"a": 5}

    def test_counters_sorted_by_name(self):
        reg = Registry(enabled=True)
        reg.incr("z")
        reg.incr("a")
        assert list(reg.counters()) == ["a", "z"]

    def test_timer_records_spans(self):
        reg = Registry(enabled=True)
        with reg.time("t"):
            pass
        with reg.time("t"):
            pass
        timer = reg.timer("t")
        assert timer.count == 2
        assert timer.total >= 0.0
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_time_is_noop_when_disabled(self):
        reg = Registry()
        span = reg.time("t")
        assert not span.active
        with span:
            pass
        assert reg.timings() == {}

    def test_reset_clears_but_keeps_enabled(self):
        reg = Registry(enabled=True)
        reg.incr("a")
        reg.reset()
        assert reg.enabled
        assert reg.snapshot() == {"counters": {}, "timings": {}}

    def test_capture_restores_prior_state(self):
        reg = Registry()
        reg.incr("stale")
        with reg.capture() as inner:
            assert inner is reg
            assert reg.enabled
            assert reg.counters() == {}  # reset dropped the stale counter
            reg.incr("fresh")
        assert not reg.enabled
        assert reg.counters() == {"fresh": 1}

    def test_capture_without_reset(self):
        reg = Registry()
        reg.incr("kept")
        with reg.capture(reset=False):
            reg.incr("kept")
        assert reg.counters() == {"kept": 2}

    def test_snapshot_shape(self):
        reg = Registry(enabled=True)
        reg.incr("c", 2)
        with reg.time("t"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timings"]["t"]["count"] == 1
        assert snap["timings"]["t"]["seconds"] >= 0.0


class TestTimerMax:
    def test_max_tracks_longest_span(self):
        from repro.obs.core import Timer

        t = Timer("t")
        for seconds in (0.2, 0.5, 0.1):
            t.record(seconds)
        assert t.max == 0.5
        assert t.last == 0.1
        assert t.count == 3


class RecordingHook:
    """A SpanHook that logs its calls, for attachment tests."""

    def __init__(self):
        self.calls = []

    def begin(self, name):
        self.calls.append(("begin", name))
        return f"token:{name}"

    def end(self, name, token, seconds):
        self.calls.append(("end", name, token, seconds >= 0))


class TestSpanHooks:
    def test_hook_sees_begin_and_end_with_token(self):
        reg = Registry(enabled=True)
        hook = RecordingHook()
        reg.add_hook(hook)
        with reg.time("phase"):
            pass
        assert hook.calls == [
            ("begin", "phase"),
            ("end", "phase", "token:phase", True),
        ]

    def test_hooks_never_fire_while_disabled(self):
        reg = Registry()
        hook = RecordingHook()
        reg.add_hook(hook)
        with reg.time("phase"):
            pass
        assert hook.calls == []

    def test_remove_hook_detaches(self):
        reg = Registry(enabled=True)
        hook = RecordingHook()
        reg.add_hook(hook)
        reg.remove_hook(hook)
        assert reg.hooks == ()
        with reg.time("phase"):
            pass
        assert hook.calls == []

    def test_hooks_survive_reset(self):
        reg = Registry(enabled=True)
        hook = RecordingHook()
        reg.add_hook(hook)
        reg.reset()
        with reg.time("phase"):
            pass
        assert hook.calls

    def test_later_hook_nests_inside_earlier(self):
        order = []

        class Ordered(RecordingHook):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def begin(self, name):
                order.append(f"begin:{self.tag}")

            def end(self, name, token, seconds):
                order.append(f"end:{self.tag}")

        reg = Registry(enabled=True)
        reg.add_hook(Ordered("a"))
        reg.add_hook(Ordered("b"))
        with reg.time("phase"):
            pass
        assert order == ["begin:a", "begin:b", "end:b", "end:a"]

    def test_trace_and_traced_reach_hooks(self):
        hook = RecordingHook()
        OBS.enable()
        OBS.add_hook(hook)
        try:

            @traced("hooked.fn")
            def fn():
                return 7

            with trace("hooked.block"):
                fn()
        finally:
            OBS.remove_hook(hook)
        assert [c[:2] for c in hook.calls] == [
            ("begin", "hooked.block"),
            ("begin", "hooked.fn"),
            ("end", "hooked.fn"),
            ("end", "hooked.block"),
        ]

    def test_timer_still_records_under_hooks(self):
        reg = Registry(enabled=True)
        reg.add_hook(RecordingHook())
        with reg.time("t"):
            pass
        assert reg.timer("t").count == 1


class TestStateMerging:
    def make_worker(self, evals, span_seconds):
        reg = Registry(enabled=True)
        reg.incr("gain.evaluations", evals)
        reg.timer("solve").record(span_seconds)
        return reg

    def test_export_state_shape(self):
        reg = self.make_worker(5, 0.25)
        state = reg.export_state()
        assert state["counters"] == {"gain.evaluations": 5}
        assert state["timers"]["solve"] == {
            "total": 0.25,
            "count": 1,
            "max": 0.25,
        }

    def test_merge_sums_counters_and_combines_timers(self):
        a = self.make_worker(5, 0.25)
        b = self.make_worker(7, 0.10)
        a.merge_state(b.export_state())
        assert a.counters() == {"gain.evaluations": 12}
        solve = a.timer("solve")
        assert solve.total == pytest.approx(0.35)
        assert solve.count == 2
        assert solve.max == 0.25

    def test_merge_is_commutative_on_counters(self):
        states = [self.make_worker(k, 0.01 * k).export_state() for k in (1, 2, 3)]
        fwd, rev = Registry(), Registry()
        for s in states:
            fwd.merge_state(s)
        for s in reversed(states):
            rev.merge_state(s)
        assert fwd.counters() == rev.counters()
        # Timer totals are float sums: order-independent up to rounding.
        assert fwd.timings()["solve"]["count"] == rev.timings()["solve"]["count"]
        assert fwd.timings()["solve"]["seconds"] == pytest.approx(
            rev.timings()["solve"]["seconds"]
        )

    def test_merge_into_empty_registry_reproduces_worker(self):
        worker = self.make_worker(9, 0.5)
        parent = Registry()
        parent.merge_state(worker.export_state())
        assert parent.counters() == worker.counters()
        assert parent.timings() == worker.timings()


class TestTraceHelpers:
    def test_trace_records_on_default_registry(self):
        OBS.enable()
        with trace("phase"):
            pass
        assert OBS.timer("phase").count == 1

    def test_trace_noop_when_disabled(self):
        with trace("phase"):
            pass
        assert OBS.timings() == {}

    def test_traced_bare_decorator(self):
        @traced
        def work():
            return 42

        OBS.enable()
        assert work() == 42
        (name,) = OBS.timings()
        assert "work" in name

    def test_traced_named_decorator(self):
        @traced("custom.label")
        def work(x, y=1):
            return x + y

        OBS.enable()
        assert work(2, y=3) == 5
        assert OBS.timer("custom.label").count == 1

    def test_traced_disabled_passthrough(self):
        @traced("never.recorded")
        def work():
            return "ok"

        assert work() == "ok"
        assert OBS.timings() == {}

    def test_traced_preserves_metadata(self):
        @traced("label")
        def documented():
            """Docstring survives."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring survives."


class TestInstrumentedHotPaths:
    def test_greedy_reports_counters_and_phases(self, medium_udg):
        from repro.cds import greedy_connector_cds

        _, graph = medium_udg
        with OBS.capture() as reg:
            result = greedy_connector_cds(graph)
        counters = reg.counters()
        assert counters["gain.evaluations"] > 0
        assert counters["gain.dsu_unions"] > 0
        assert counters["greedy.connectors_chosen"] == len(result.connectors)
        assert counters["mis.selected"] == len(result.dominators)
        timings = reg.timings()
        assert timings["greedy.phase1"]["count"] == 1
        assert timings["greedy.phase2"]["count"] == 1

    def test_waf_reports_counters(self, medium_udg):
        from repro.cds import waf_cds

        _, graph = medium_udg
        with OBS.capture() as reg:
            result = waf_cds(graph)
        counters = reg.counters()
        assert counters["waf.coverage_evaluations"] > 0
        assert counters["waf.connectors_chosen"] == len(result.connectors)
        assert reg.timings()["waf.phase2"]["count"] == 1

    def test_udg_builders_report_pair_economy(self, small_udg):
        from repro.graphs.udg import unit_disk_graph, unit_disk_graph_naive

        points, _ = small_udg
        n = len(points)
        with OBS.capture() as reg:
            fast = unit_disk_graph(points)
            slow = unit_disk_graph_naive(points)
        counters = reg.counters()
        assert counters["udg.naive.pairs_tested"] == n * (n - 1) // 2
        assert counters["udg.grid.pairs_tested"] <= counters["udg.naive.pairs_tested"]
        assert counters["udg.grid.edges_emitted"] == fast.edge_count()
        assert counters["udg.naive.edges_emitted"] == slow.edge_count()

    def test_simulator_mirrors_metrics(self, path5):
        from repro.distributed import distributed_waf_cds
        from repro.experiments.instances import int_labeled

        graph = int_labeled(path5)
        with OBS.capture() as reg:
            _, metrics = distributed_waf_cds(graph)
        counters = reg.counters()
        assert counters["sim.transmissions"] == metrics.transmissions
        assert counters["sim.rounds"] == metrics.rounds
        assert reg.timings()["distributed.waf"]["count"] == 1

    def test_disabled_registry_records_nothing(self, small_udg):
        from repro.cds import greedy_connector_cds

        _, graph = small_udg
        greedy_connector_cds(graph)
        assert OBS.snapshot() == {"counters": {}, "timings": {}}
