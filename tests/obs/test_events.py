"""Tests for the structured event stream (``repro.obs/event/v1``)."""

import json

import pytest

from repro.obs import OBS, Registry
from repro.obs.events import (
    EVENT_SCHEMA_ID,
    EventLog,
    merge_events,
    parse_events,
    read_events,
    replay,
    validate_events,
    write_events,
)


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


def make_log():
    """A registry + attached log with a small nested span history."""
    reg = Registry(enabled=True)
    log = EventLog(reg, run_id="test-run", worker=0)
    reg.add_hook(log)
    with reg.time("outer"):
        reg.incr("work.outer", 2)
        with reg.time("inner"):
            reg.incr("work.inner", 5)
        with reg.time("inner"):
            reg.incr("work.inner", 7)
    with reg.time("second_root"):
        pass
    reg.remove_hook(log)
    return reg, log


class TestEventEmission:
    def test_header_first(self):
        _, log = make_log()
        head = log.events[0]
        assert head["type"] == "run"
        assert head["schema"] == EVENT_SCHEMA_ID
        assert head["run"] == "test-run"

    def test_begin_end_pairing_and_parents(self):
        _, log = make_log()
        begins = [e for e in log.events if e["type"] == "begin"]
        ends = [e for e in log.events if e["type"] == "end"]
        assert len(begins) == len(ends) == 4
        by_name = {e["name"]: e for e in begins}
        assert by_name["outer"]["parent"] is None
        assert by_name["second_root"]["parent"] is None
        inner_parents = {
            e["parent"] for e in begins if e["name"] == "inner"
        }
        assert inner_parents == {by_name["outer"]["span"]}

    def test_counter_deltas_scoped_to_span(self):
        _, log = make_log()
        ends = {(e["name"], e["span"]): e for e in log.events if e["type"] == "end"}
        inner_deltas = sorted(
            e["counters"]["work.inner"]
            for (name, _), e in ends.items()
            if name == "inner"
        )
        assert inner_deltas == [5, 7]
        (outer,) = [e for (name, _), e in ends.items() if name == "outer"]
        # The outer span absorbs its own counter and both children's.
        assert outer["counters"] == {"work.outer": 2, "work.inner": 12}
        (second,) = [e for (name, _), e in ends.items() if name == "second_root"]
        assert second["counters"] == {}

    def test_timestamps_monotone_within_log(self):
        _, log = make_log()
        ts = [e["t"] for e in log.events if "t" in e]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_no_events_while_detached_or_disabled(self):
        reg = Registry(enabled=True)
        log = EventLog(reg)
        with reg.time("unhooked"):
            pass
        reg.add_hook(log)
        reg.disable()
        with reg.time("disabled"):
            pass
        assert [e["type"] for e in log.events] == ["run"]


class TestNoteEvents:
    def make_noted_log(self):
        reg = Registry(enabled=True)
        log = EventLog(reg, run_id="noted", worker=0)
        reg.add_hook(log)
        with reg.time("outer"):
            reg.note("reliability.retry", {"cell": "n=10;seed=1", "attempt": 1})
        reg.note("reliability.failure", {"cell": "n=10;seed=2", "kind": "crash"})
        reg.remove_hook(log)
        return reg, log

    def test_note_event_shape(self):
        _, log = self.make_noted_log()
        notes = [e for e in log.events if e["type"] == "note"]
        assert [n["name"] for n in notes] == [
            "reliability.retry", "reliability.failure",
        ]
        for note in notes:
            assert isinstance(note["data"], dict)
            assert note["t"] >= 0
            assert note["seq"] == log.events.index(note)
        assert validate_events(log.events) == []

    def test_note_outside_hooks_or_disabled_is_dropped(self):
        reg = Registry(enabled=True)
        log = EventLog(reg)
        reg.note("unhooked", {})
        reg.add_hook(log)
        reg.disable()
        reg.note("disabled", {})
        assert [e["type"] for e in log.events] == ["run"]

    def test_note_defaults_to_empty_data(self):
        reg = Registry(enabled=True)
        log = EventLog(reg)
        reg.add_hook(log)
        reg.note("bare")
        (note,) = [e for e in log.events if e["type"] == "note"]
        assert note["data"] == {}

    def test_replay_attaches_notes_to_innermost_open_span(self):
        _, log = self.make_noted_log()
        (root,) = replay(log.events)
        assert root.name == "outer"
        (attached,) = root.notes
        assert attached["name"] == "reliability.retry"
        assert attached["cell"] == "n=10;seed=1"
        # The span-less note is not in the forest but stays readable
        # straight off the event list.
        assert any(
            e["type"] == "note" and e["name"] == "reliability.failure"
            for e in log.events
        )

    def test_note_round_trips_through_jsonl(self, tmp_path):
        _, log = self.make_noted_log()
        path = tmp_path / "noted.jsonl"
        log.write(path)
        assert read_events(path) == json.loads(json.dumps(log.events))

    def test_validation_rejects_malformed_notes(self):
        _, log = self.make_noted_log()
        events = [dict(e) for e in log.events]
        for e in events:
            if e["type"] == "note":
                e["data"] = "not-a-dict"
        assert any("data" in err for err in validate_events(events))
        events = [dict(e) for e in log.events]
        for e in events:
            if e["type"] == "note":
                del e["name"]
        assert any("name" in err for err in validate_events(events))


class TestZeroNewCallSites:
    def test_existing_solver_sites_emit_events(self, medium_udg):
        """The greedy's trace() sites stream events with no solver change."""
        from repro.cds import greedy_connector_cds

        _, graph = medium_udg
        with OBS.capture() as reg:
            log = EventLog(reg, run_id="solver")
            reg.add_hook(log)
            greedy_connector_cds(graph)
            reg.remove_hook(log)
        names = {e["name"] for e in log.events if e["type"] == "begin"}
        assert {"greedy.phase1", "greedy.phase2", "mis.first_fit"} <= names
        (phase2,) = [
            e
            for e in log.events
            if e["type"] == "end" and e["name"] == "greedy.phase2"
        ]
        assert phase2["counters"]["gain.evaluations"] > 0
        assert phase2["counters"]["greedy.connectors_chosen"] > 0
        # mis.first_fit nests inside greedy.phase1.
        roots = replay(log.events)
        tree = {n.name: n for r in roots for n in r.walk()}
        assert tree["mis.first_fit"].parent.name == "greedy.phase1"

    def test_traced_decorator_emits_events(self):
        from repro.obs import traced

        @traced("decorated.fn")
        def fn():
            return 1

        OBS.enable()
        log = EventLog(OBS)
        OBS.add_hook(log)
        fn()
        OBS.remove_hook(log)
        assert any(
            e["type"] == "begin" and e["name"] == "decorated.fn"
            for e in log.events
        )


class TestRoundTrip:
    def test_emit_parse_replay_exact(self, tmp_path):
        """Emit → write → parse → replay reproduces tree and deltas."""
        _, log = make_log()
        path = tmp_path / "run.events.jsonl"
        log.write(path)
        events = read_events(path)
        assert events == json.loads(
            json.dumps(log.events)
        )  # byte-level fidelity mod JSON typing
        roots = replay(events)
        assert [r.name for r in roots] == ["outer", "second_root"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.counters == {"work.outer": 2, "work.inner": 12}
        assert [c.counters["work.inner"] for c in outer.children] == [5, 7]
        in_memory = replay(log.events)
        assert [n.counters for r in roots for n in r.walk()] == [
            n.counters for r in in_memory for n in r.walk()
        ]
        assert all(n.duration is not None and n.duration >= 0
                   for r in roots for n in r.walk())

    def test_unclosed_span_survives_replay(self):
        reg = Registry(enabled=True)
        log = EventLog(reg)
        reg.add_hook(log)
        span = reg.time("crashed")
        span.__enter__()  # never exited: simulates a crash mid-span
        (root,) = replay(log.events)
        assert root.name == "crashed"
        assert root.duration is None


class TestValidation:
    def test_unknown_schema_version_rejected(self, tmp_path):
        _, log = make_log()
        events = [dict(e) for e in log.events]
        events[0]["schema"] = "repro.obs/event/v99"
        path = tmp_path / "bad.jsonl"
        write_events(events, path)
        with pytest.raises(ValueError, match="unknown event schema"):
            read_events(path)

    def test_missing_header_rejected(self):
        _, log = make_log()
        assert validate_events(log.events[1:])

    def test_empty_stream_rejected(self):
        assert validate_events([])
        with pytest.raises(ValueError):
            parse_events([])

    def test_negative_duration_rejected(self):
        _, log = make_log()
        events = [dict(e) for e in log.events]
        for e in events:
            if e["type"] == "end":
                e["dur"] = -1.0
        assert any("dur" in err for err in validate_events(events))

    def test_corrupt_nesting_raises_on_replay(self):
        _, log = make_log()
        events = [dict(e) for e in log.events]
        for e in events:
            if e["type"] == "end":
                e["span"] = 999
        with pytest.raises(ValueError, match="corrupt"):
            replay(events)


class TestMerge:
    def make_worker_log(self, run_id, names):
        reg = Registry(enabled=True)
        log = EventLog(reg, run_id=run_id)
        reg.add_hook(log)
        for name in names:
            with reg.time(name):
                reg.incr(f"{name}.count")
        reg.remove_hook(log)
        return log.events

    def test_merge_is_deterministic_and_renumbers_workers(self):
        a = self.make_worker_log("w0", ["alpha"])
        b = self.make_worker_log("w1", ["beta", "gamma"])
        merged = merge_events([a, b])
        again = merge_events([a, b])
        assert merged == again
        assert {e["worker"] for e in merged if e["type"] != "run"} == {0, 1}
        # Headers first, then events; per-worker order preserved.
        assert [e["type"] for e in merged[:2]] == ["run", "run"]
        b_names = [
            e["name"] for e in merged if e["type"] == "begin" and e["worker"] == 1
        ]
        assert b_names == ["beta", "gamma"]

    def test_replay_of_merged_stream_keeps_workers_apart(self):
        a = self.make_worker_log("w0", ["alpha"])
        b = self.make_worker_log("w1", ["beta"])
        roots = replay(merge_events([a, b]))
        assert sorted((r.name, r.worker) for r in roots) == [
            ("alpha", 0),
            ("beta", 1),
        ]
        assert all(not r.children for r in roots)
