"""Tests for the memory/profile hooks (``repro.obs.profile``)."""

import pstats
import tracemalloc

import pytest

from repro.obs import OBS, Registry
from repro.obs.profile import MemTracker, mem_tracing, profile_to


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestMemTracing:
    def test_records_per_span_and_run_peaks(self):
        reg = Registry(enabled=True)
        with mem_tracing(reg):
            with reg.time("alloc"):
                blob = bytearray(512 * 1024)
            del blob
        counters = reg.counters()
        assert counters["mem.alloc.peak_bytes"] >= 512 * 1024
        assert counters["mem.run.peak_bytes"] >= counters["mem.alloc.peak_bytes"]

    def test_nested_peak_propagates_to_parent(self):
        """A child's allocation must show in the enclosing span's peak.

        ``reset_peak()`` at child close would otherwise blind the
        parent — the regression the frame stack exists to prevent.
        """
        reg = Registry(enabled=True)
        with mem_tracing(reg):
            with reg.time("outer"):
                with reg.time("inner"):
                    blob = bytearray(512 * 1024)
                del blob
                # After the child closes (and resets the peak), the
                # parent does nothing big of its own.
        counters = reg.counters()
        assert counters["mem.inner.peak_bytes"] >= 512 * 1024
        assert counters["mem.outer.peak_bytes"] >= counters["mem.inner.peak_bytes"]

    def test_repeated_spans_keep_the_max(self):
        reg = Registry(enabled=True)
        with mem_tracing(reg):
            with reg.time("work"):
                blob = bytearray(1024 * 1024)
            del blob
            with reg.time("work"):
                pass  # allocates ~nothing; must not shrink the counter
        assert reg.counters()["mem.work.peak_bytes"] >= 1024 * 1024

    def test_stops_tracing_only_if_it_started_it(self):
        reg = Registry(enabled=True)
        assert not tracemalloc.is_tracing()
        with mem_tracing(reg):
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

        tracemalloc.start()
        try:
            with mem_tracing(reg):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_tracker_inert_without_tracemalloc(self):
        # Attached but tracemalloc never started: spans work, no counters.
        reg = Registry(enabled=True)
        reg.add_hook(MemTracker(reg))
        with reg.time("quiet"):
            pass
        assert "mem.quiet.peak_bytes" not in reg.counters()

    def test_peak_counters_max_merge_across_workers(self):
        reg = Registry(enabled=True)
        reg.counter("mem.solve.peak_bytes").value = 1000
        reg.counter("gain.evaluations").value = 10
        reg.merge_state(
            {
                "counters": {"mem.solve.peak_bytes": 700, "gain.evaluations": 5},
                "timers": {},
            }
        )
        counters = reg.counters()
        # Peaks take the max (700 < 1000), plain counters sum.
        assert counters["mem.solve.peak_bytes"] == 1000
        assert counters["gain.evaluations"] == 15


class TestProfileTo:
    def test_writes_loadable_pstats(self, tmp_path):
        out = tmp_path / "run.pstats"

        def work():
            return sum(i * i for i in range(1000))

        with profile_to(out):
            work()
        stats = pstats.Stats(str(out))
        names = {fn for (_, _, fn) in stats.stats}
        assert "work" in names

    def test_writes_even_when_block_raises(self, tmp_path):
        out = tmp_path / "crash.pstats"
        with pytest.raises(RuntimeError):
            with profile_to(out):
                raise RuntimeError("boom")
        assert out.exists()
        pstats.Stats(str(out))  # still loadable
