"""Tests for the log-scaled histogram: bucketing, percentile accuracy
against a sorted-list reference, exact merge algebra, and the
worker-merge == serial equivalence that ``--jobs N`` relies on."""

import math
import random

import pytest

from repro.experiments.parallel import parallel_map
from repro.obs import OBS, Registry
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    LAYOUT_ID,
    Histogram,
    bucket_upper_bound,
    record_percentile,
    validate_histogram_record,
)

#: One bucket spans this ratio; percentile error is bounded by it.
BUCKET_RATIO = 10 ** (1 / BUCKETS_PER_DECADE)


def reference_percentile(samples, pct):
    """Nearest-rank percentile on the raw sorted samples."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * pct / 100.0))
    return ordered[rank - 1]


def _observe_chunk(values):
    """Module-level worker (pickles across pool processes): observe a
    chunk into a fresh capture and hand back the registry state, the
    same shape sweep workers ship to the parent under ``--jobs``."""
    with OBS.capture() as reg:
        reg.enable()
        for value in values:
            reg.observe("w.latency", value)
            reg.incr("w.samples")
        return reg.export_state()


class TestBucketing:
    def test_boundaries_are_exact(self):
        # A value sitting exactly on a bucket's upper bound belongs to
        # that bucket — bucketing must be a pure function of the value.
        for index in (-1, 0, 7, 71, 100):
            bound = bucket_upper_bound(index)
            h = Histogram("h")
            h.observe(bound)
            assert h.buckets() == {index: 1}

    def test_just_above_boundary_moves_up(self):
        bound = bucket_upper_bound(40)
        h = Histogram("h")
        h.observe(bound * (1 + 1e-12))
        assert h.buckets() == {41: 1}

    def test_underflow_and_overflow(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(-3.0)
        h.observe(1e-300)
        h.observe(1e12)
        assert h.count == 4
        assert set(h.buckets()) == {-1, 144}
        assert h.min == -3.0 and h.max == 1e12

    def test_overflow_bucket_has_no_bound(self):
        with pytest.raises(ValueError, match="overflow"):
            bucket_upper_bound(144)

    def test_nan_and_inf_rejected(self):
        h = Histogram("h")
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                h.observe(bad)
        assert h.count == 0

    def test_exact_aggregates(self):
        h = Histogram("h")
        h.observe_many([0.5, 2.0, 8.0])
        assert h.count == 3
        assert h.sum == 10.5
        assert h.min == 0.5 and h.max == 8.0
        assert h.mean == 3.5


class TestPercentile:
    def test_randomized_against_sorted_reference(self):
        # 1k samples spanning six decades: every histogram percentile
        # must sit within one bucket ratio above the nearest-rank
        # reference (and never below it).
        rng = random.Random(20260808)
        samples = [10 ** rng.uniform(-5, 1) for _ in range(1000)]
        h = Histogram("h")
        h.observe_many(samples)
        for pct in (1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100):
            ref = reference_percentile(samples, pct)
            got = h.percentile(pct)
            assert ref <= got <= ref * BUCKET_RATIO * (1 + 1e-9), pct

    def test_extremes_are_exact(self):
        rng = random.Random(7)
        samples = [rng.expovariate(10.0) + 1e-6 for _ in range(257)]
        h = Histogram("h")
        h.observe_many(samples)
        assert h.percentile(100) == max(samples)
        assert h.percentile(0) <= min(samples) * BUCKET_RATIO

    def test_single_sample_everywhere(self):
        h = Histogram("h")
        h.observe(0.042)
        for pct in (0, 50, 100):
            assert h.percentile(pct) == pytest.approx(0.042, rel=0.34)

    def test_empty_returns_zero(self):
        assert Histogram("h").percentile(99) == 0.0

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError, match="0..100"):
            Histogram("h").percentile(101)

    def test_record_percentile_matches_object(self):
        rng = random.Random(3)
        h = Histogram("h")
        h.observe_many(rng.uniform(0.001, 5.0) for _ in range(400))
        record = h.to_record()
        for pct in (50, 90, 95, 99):
            assert record_percentile(record, pct) == h.percentile(pct)


class TestMergeAlgebra:
    """Merging is exact arithmetic on integer bucket counts, so it must
    be associative and commutative — the property that makes worker
    fold order irrelevant."""

    @staticmethod
    def _hist(values):
        h = Histogram("m")
        h.observe_many(values)
        return h

    # Powers of two: exact in float, so ``sum`` is order-independent
    # and states can be compared for full equality.
    A = [2.0**k for k in range(-8, 0)]
    B = [2.0**k for k in range(0, 8)]
    C = [0.25, 4.0, 4.0, 1024.0]

    def test_commutative(self):
        ab = self._hist(self.A)
        ab.merge(self._hist(self.B))
        ba = self._hist(self.B)
        ba.merge(self._hist(self.A))
        assert ab.state() == ba.state()

    def test_associative(self):
        left = self._hist(self.A)
        left.merge(self._hist(self.B))
        left.merge(self._hist(self.C))
        bc = self._hist(self.B)
        bc.merge(self._hist(self.C))
        right = self._hist(self.A)
        right.merge(bc)
        assert left.state() == right.state()

    def test_merge_equals_observing_everything(self):
        merged = self._hist(self.A)
        merged.merge(self._hist(self.B))
        assert merged.state() == self._hist(self.A + self.B).state()

    def test_merge_into_empty(self):
        h = Histogram("m")
        h.merge(self._hist(self.C))
        assert h.state() == self._hist(self.C).state()
        assert h.min == 0.25 and h.max == 1024.0

    def test_layout_mismatch_rejected(self):
        h = Histogram("m")
        state = self._hist(self.A).state()
        state["layout"] = "log2/4@-3:3"
        with pytest.raises(ValueError, match="layout"):
            h.merge_state(state)

    def test_state_round_trip(self):
        h = self._hist(self.A + self.C)
        clone = Histogram.from_state("m", h.state())
        assert clone.state() == h.state()
        assert clone.percentile(50) == h.percentile(50)


class TestWorkerMergeEquivalence:
    def test_jobs2_merge_matches_serial(self):
        # The --jobs contract, end to end: two pool workers observe
        # their chunks, export registry state, and the parent's fold
        # must equal one serial histogram over all values.
        values = [2.0**k for k in range(-10, 10)] * 3
        chunks = [values[0::2], values[1::2]]
        states = parallel_map(_observe_chunk, chunks, jobs=2)

        merged = Registry()
        for state in states:
            merged.merge_state(state)
        serial = Registry()
        for value in values:
            serial.observe("w.latency", value)
            serial.incr("w.samples")

        assert merged.counters() == {"w.samples": len(values)}
        assert (
            merged.histogram("w.latency").state()
            == serial.histogram("w.latency").state()
        )

    def test_registry_export_state_carries_histograms(self):
        reg = Registry()
        reg.observe("h", 0.5)
        state = reg.export_state()
        assert state["histograms"]["h"]["layout"] == LAYOUT_ID
        empty = Registry()
        empty.incr("c")
        assert "histograms" not in empty.export_state()


class TestRecordForm:
    def test_to_record_is_cumulative_and_valid(self):
        h = Histogram("r")
        h.observe_many([0.001, 0.01, 0.01, 0.1])
        record = h.to_record()
        assert record["count"] == 4
        bounds = [b for b, _ in record["buckets"]]
        cums = [c for _, c in record["buckets"]]
        assert bounds == sorted(bounds)
        assert cums == sorted(cums) and cums[-1] == 4
        assert validate_histogram_record("r", record) == []

    def test_overflow_samples_only_in_count(self):
        h = Histogram("r")
        h.observe(1e12)
        record = h.to_record()
        assert record["count"] == 1 and record["buckets"] == []
        assert all(math.isfinite(b) for b, _ in record["buckets"])
        assert validate_histogram_record("r", record) == []

    def test_validator_rejects_nonfinite_bounds(self):
        h = Histogram("r")
        h.observe(0.5)
        for bad in (float("nan"), float("inf")):
            record = h.to_record()
            record["buckets"][0][0] = bad
            assert any(
                "finite" in e for e in validate_histogram_record("r", record)
            )

    def test_validator_rejects_decreasing_cumulative(self):
        record = {
            "layout": LAYOUT_ID,
            "count": 3,
            "sum": 1.0,
            "min": 0.1,
            "max": 0.5,
            "buckets": [[0.1, 2], [0.2, 1]],
        }
        assert any(
            "decreases" in e
            for e in validate_histogram_record("r", record)
        )

    def test_validator_rejects_cumulative_beyond_count(self):
        record = {
            "layout": LAYOUT_ID,
            "count": 1,
            "sum": 1.0,
            "min": 0.1,
            "max": 0.5,
            "buckets": [[0.1, 5]],
        }
        assert any(
            "exceeds" in e for e in validate_histogram_record("r", record)
        )

    def test_summary_shape(self):
        h = Histogram("r")
        h.observe_many([0.01, 0.02, 0.04])
        summary = h.summary()
        assert set(summary) == {
            "count", "mean", "min", "p50", "p90", "p95", "p99", "max",
        }
        assert summary["count"] == 3
        assert summary["p50"] <= summary["p99"] <= summary["max"]
