"""Tests for the RunRecord schema, serialisation and validation."""

import json

import pytest

from repro.obs import (
    RUN_RECORD_SCHEMA,
    SCHEMA_ID,
    OBS,
    Registry,
    RunRecord,
    assert_valid_run_record,
    records_to_csv,
    render_record,
    render_report,
    validate_run_record,
)


def make_record(**overrides) -> RunRecord:
    base = dict(
        algorithm="greedy",
        instance={"n": 20, "side": 3.8},
        seed=1,
        counters={"gain.evaluations": 120, "gain.dsu_unions": 9},
        timings={"greedy.phase2": {"seconds": 0.01, "count": 1}},
        results={"cds_size": 9},
        meta={"note": "test"},
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        rec = make_record()
        path = tmp_path / "rec.json"
        rec.write(path)
        loaded = RunRecord.load(path)
        assert loaded == rec

    def test_serialised_object_is_schema_valid(self):
        assert validate_run_record(make_record().to_json_obj()) == []

    def test_schema_id_embedded(self):
        assert make_record().to_json_obj()["schema"] == SCHEMA_ID

    def test_from_registry_snapshot(self):
        reg = Registry(enabled=True)
        reg.incr("ops", 3)
        with reg.time("t"):
            pass
        rec = RunRecord.from_registry(
            reg, algorithm="x", instance={"n": 5}, seed=None, results={"size": 2}
        )
        assert rec.counters == {"ops": 3}
        assert rec.timings["t"]["count"] == 1
        assert rec.seed is None
        assert validate_run_record(rec.to_json_obj()) == []


class TestValidation:
    def test_missing_field_reported(self):
        obj = make_record().to_json_obj()
        del obj["counters"]
        assert any("counters" in e for e in validate_run_record(obj))

    def test_wrong_schema_id(self):
        obj = make_record().to_json_obj()
        obj["schema"] = "something/else"
        assert validate_run_record(obj)

    def test_non_numeric_counter(self):
        obj = make_record().to_json_obj()
        obj["counters"]["bad"] = "many"
        assert any("bad" in e for e in validate_run_record(obj))

    def test_bool_counter_rejected(self):
        obj = make_record().to_json_obj()
        obj["counters"]["flag"] = True
        assert validate_run_record(obj)

    def test_malformed_timing(self):
        obj = make_record().to_json_obj()
        obj["timings"]["t"] = {"seconds": -1.0, "count": 1}
        assert validate_run_record(obj)
        obj["timings"]["t"] = {"seconds": 0.1}
        assert validate_run_record(obj)

    def test_nan_timing_rejected(self):
        # NaN compares False to everything, so a naive `seconds < 0`
        # check waves it through — the validator must catch it.
        obj = make_record().to_json_obj()
        obj["timings"]["t"] = {"seconds": float("nan"), "count": 1}
        assert any("finite" in e for e in validate_run_record(obj))

    def test_infinite_timing_rejected(self):
        obj = make_record().to_json_obj()
        obj["timings"]["t"] = {"seconds": float("inf"), "count": 1}
        assert any("finite" in e for e in validate_run_record(obj))

    def test_nan_and_infinite_counters_rejected(self):
        obj = make_record().to_json_obj()
        obj["counters"]["bad.nan"] = float("nan")
        obj["counters"]["bad.inf"] = float("-inf")
        errors = validate_run_record(obj)
        assert any("bad.nan" in e for e in errors)
        assert any("bad.inf" in e for e in errors)

    def test_nan_from_json_text_rejected(self):
        # json.loads happily parses bare NaN — the validator is the
        # only line of defence for records edited or produced outside
        # this package.
        text = json.dumps(make_record().to_json_obj()).replace(
            "0.01", "NaN"
        )
        obj = json.loads(text)
        assert validate_run_record(obj)

    def test_unknown_schema_version_rejected(self):
        obj = make_record().to_json_obj()
        obj["schema"] = "repro.obs/run-record/v99"
        assert any("schema" in e for e in validate_run_record(obj))
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_json_obj(obj)

    def test_empty_registry_record_is_valid(self):
        rec = RunRecord.from_registry(Registry(), algorithm="noop")
        obj = rec.to_json_obj()
        assert obj["counters"] == {} and obj["timings"] == {}
        assert validate_run_record(obj) == []

    def test_seed_must_be_int_or_null(self):
        obj = make_record().to_json_obj()
        obj["seed"] = "one"
        assert validate_run_record(obj)

    def test_non_object_rejected(self):
        assert validate_run_record([1, 2, 3])

    def test_assert_valid_raises_with_all_errors(self):
        obj = make_record().to_json_obj()
        obj["seed"] = "one"
        obj["algorithm"] = ""
        with pytest.raises(ValueError, match="seed"):
            assert_valid_run_record(obj)

    def test_schema_constant_required_fields_match_validator(self):
        # The documented schema and the validator agree on what is required.
        obj = make_record().to_json_obj()
        for field in RUN_RECORD_SCHEMA["required"]:
            broken = dict(obj)
            del broken[field]
            assert validate_run_record(broken), f"{field} should be required"


class TestHistogramSection:
    """The optional ``histograms`` section added with the live
    telemetry tier: present only when non-empty, validated like the
    counters (finite numbers only)."""

    @staticmethod
    def _registry_with_histogram() -> Registry:
        reg = Registry(enabled=True)
        reg.incr("ops")
        reg.observe("latency", 0.01)
        reg.observe("latency", 0.04)
        return reg

    def test_from_registry_carries_histograms(self):
        rec = RunRecord.from_registry(
            self._registry_with_histogram(), algorithm="x"
        )
        obj = rec.to_json_obj()
        assert obj["histograms"]["latency"]["count"] == 2
        assert validate_run_record(obj) == []

    def test_histogram_free_record_has_no_section(self):
        # Pre-histogram record shape is preserved bit-for-bit.
        reg = Registry(enabled=True)
        reg.incr("ops")
        obj = RunRecord.from_registry(reg, algorithm="x").to_json_obj()
        assert "histograms" not in obj

    def test_json_round_trip_with_histograms(self, tmp_path):
        rec = RunRecord.from_registry(
            self._registry_with_histogram(), algorithm="x"
        )
        path = tmp_path / "rec.json"
        rec.write(path)
        assert RunRecord.load(path) == rec

    def test_nan_and_inf_bucket_bounds_rejected(self):
        rec = RunRecord.from_registry(
            self._registry_with_histogram(), algorithm="x"
        )
        for bad in (float("nan"), float("inf"), float("-inf")):
            obj = rec.to_json_obj()
            obj["histograms"]["latency"]["buckets"][0][0] = bad
            assert any(
                "finite" in e for e in validate_run_record(obj)
            ), bad

    def test_malformed_histogram_entry_rejected(self):
        rec = RunRecord.from_registry(
            self._registry_with_histogram(), algorithm="x"
        )
        obj = rec.to_json_obj()
        obj["histograms"]["latency"] = ["not", "a", "histogram"]
        assert any("latency" in e for e in validate_run_record(obj))


class TestCSV:
    def test_union_of_columns(self):
        a = make_record()
        b = make_record(
            algorithm="waf",
            counters={"waf.coverage_evaluations": 5},
            timings={},
            seed=None,
        )
        csv = records_to_csv([a, b])
        lines = csv.strip().splitlines()
        assert len(lines) == 3
        header = lines[0].split(",")
        assert "counter.gain.evaluations" in header
        assert "counter.waf.coverage_evaluations" in header
        # b has no gain counters: its cell is empty.
        b_row = lines[2].split(",")
        assert b_row[header.index("counter.gain.evaluations")] == ""

    def test_cells_with_commas_are_quoted(self):
        csv = records_to_csv([make_record()])
        assert '"{""n"": 20' in csv


class TestRendering:
    def test_render_record_mentions_key_facts(self):
        text = render_record(make_record())
        assert "greedy" in text
        assert "gain.evaluations" in text
        assert "cds_size" in text

    def test_render_report_empty_registry(self):
        assert "no activity" in render_report(Registry())


class TestValidateCLI:
    def test_valid_file_passes(self, tmp_path, capsys):
        from repro.obs.validate import main

        path = tmp_path / "rec.json"
        make_record().write(path)
        assert main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        from repro.obs.validate import main

        path = tmp_path / "rec.json"
        obj = make_record().to_json_obj()
        del obj["timings"]
        path.write_text(json.dumps(obj))
        assert main([str(path)]) == 1
        assert "timings" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path):
        from repro.obs.validate import main

        assert main([str(tmp_path / "nope.json")]) == 1

    def test_no_args_usage(self):
        from repro.obs.validate import main

        assert main([]) == 2


@pytest.fixture(autouse=True)
def _clean_default_registry():
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()
