"""Tests for the live-telemetry export layer: Prometheus exposition
rendering and validation, the metrics-snapshot JSONL stream, the
periodic snapshotter, the HTTP exporter, and the ``obs tail`` view."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import Registry
from repro.obs.expose import (
    EXPOSITION_VERSION,
    SNAPSHOT_SCHEMA_ID,
    MetricsExporter,
    PeriodicSnapshotter,
    SnapshotStream,
    metric_name,
    parse_snapshots,
    read_snapshots,
    render_exposition,
    snapshot_state,
    validate_exposition,
    validate_snapshot,
)


def busy_registry() -> Registry:
    reg = Registry(enabled=True)
    reg.incr("serve.requests", 5)
    reg.incr("serve.cache.hits", 2)
    with reg.time("serve.request"):
        pass
    reg.observe("serve.latency.wall", 0.002)
    reg.observe("serve.latency.wall", 0.004)
    reg.observe("serve.latency.wall", 1.5)
    return reg


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("serve.requests", "_total") == "serve_requests_total"

    def test_illegal_chars_sanitised(self):
        assert metric_name("a-b c%d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert metric_name("9lives") == "_9lives"


class TestRenderExposition:
    def test_counters_timers_histograms_render(self):
        text = render_exposition(busy_registry())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 5" in text
        assert "# TYPE serve_request_seconds summary" in text
        assert "serve_request_seconds_count 1" in text
        assert "# TYPE serve_latency_wall histogram" in text
        assert 'serve_latency_wall_bucket{le="+Inf"} 3' in text
        assert "serve_latency_wall_count 3" in text

    def test_output_is_deterministic(self):
        reg = busy_registry()
        assert render_exposition(reg) == render_exposition(reg)

    def test_empty_registry_renders_empty(self):
        assert render_exposition(Registry()) == ""

    def test_rendered_text_validates(self):
        assert validate_exposition(render_exposition(busy_registry())) == []

    def test_bucket_series_cumulative(self):
        text = render_exposition(busy_registry())
        cums = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("serve_latency_wall_bucket")
        ]
        assert cums == sorted(cums)
        assert cums[-1] == 3


class TestValidateExposition:
    def test_malformed_sample_flagged(self):
        assert validate_exposition("not a metric line at all!\n")

    def test_malformed_comment_flagged(self):
        errors = validate_exposition("# HELLO there\n")
        assert any("comment" in e for e in errors)

    def test_decreasing_cumulative_flagged(self):
        text = (
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="0.2"} 3\n'
        )
        assert any("decreases" in e for e in validate_exposition(text))

    def test_nonincreasing_le_flagged(self):
        text = (
            'h_bucket{le="0.2"} 1\n'
            'h_bucket{le="0.1"} 2\n'
        )
        assert any("increase" in e for e in validate_exposition(text))

    def test_blank_lines_ignored(self):
        assert validate_exposition("\n\nserve_requests_total 1\n") == []


class TestSnapshotStream:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        with SnapshotStream(path, source="test") as stream:
            stream.write(busy_registry())
            stream.write(busy_registry(), extra={"phase": "warm"})
        snaps = read_snapshots(path)
        assert [s["seq"] for s in snaps] == [0, 1]
        assert all(s["schema"] == SNAPSHOT_SCHEMA_ID for s in snaps)
        assert all(s["source"] == "test" for s in snaps)
        assert snaps[0]["counters"]["serve.requests"] == 5
        assert snaps[0]["histograms"]["serve.latency.wall"]["count"] == 3
        assert snaps[1]["extra"] == {"phase": "warm"}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        with SnapshotStream(path, source="test") as stream:
            stream.write(busy_registry())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.obs/metr')  # killed mid-write
        assert len(read_snapshots(path)) == 1

    def test_malformed_middle_line_raises(self):
        good = json.dumps(
            snapshot_state(Registry(), seq=0, source="t", now=1.0)
        )
        with pytest.raises(ValueError, match="invalid JSON"):
            parse_snapshots([good, "{broken", good])

    def test_schema_violation_raises(self):
        bad = json.dumps({"schema": "something/else", "seq": 0})
        good = json.dumps(
            snapshot_state(Registry(), seq=1, source="t", now=1.0)
        )
        with pytest.raises(ValueError, match="schema"):
            parse_snapshots([bad, good])

    def test_validate_snapshot_checks_fields(self):
        snap = snapshot_state(busy_registry(), seq=3, source="t", now=2.0)
        assert validate_snapshot(snap) == []
        assert validate_snapshot({"schema": SNAPSHOT_SCHEMA_ID})
        snap["counters"]["bad"] = float("nan")
        assert any("finite" in e for e in validate_snapshot(snap))


class TestPeriodicSnapshotter:
    def test_writes_lines_and_final_snapshot_on_stop(self, tmp_path):
        path = tmp_path / "snaps.jsonl"
        reg = busy_registry()
        stream = SnapshotStream(path, source="test")
        snapshotter = PeriodicSnapshotter(stream, lambda: reg, interval=0.02)
        snapshotter.start()
        ticked = threading.Event()
        deadline = threading.Event()
        for _ in range(200):
            if stream.seq >= 2:
                ticked.set()
                break
            deadline.wait(0.01)
        assert ticked.is_set(), "snapshotter never ticked"
        reg.incr("late.counter", 7)
        snapshotter.stop()
        stream.close()
        snaps = read_snapshots(path)
        assert len(snaps) >= 3
        # the final line reflects state at stop(), not the last tick
        assert snaps[-1]["counters"]["late.counter"] == 7
        assert [s["seq"] for s in snaps] == list(range(len(snaps)))

    def test_bad_interval_rejected(self, tmp_path):
        stream = SnapshotStream(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="interval"):
            PeriodicSnapshotter(stream, Registry, interval=0)


class TestMetricsExporter:
    def test_scrape_round_trip(self):
        reg = busy_registry()
        with MetricsExporter(lambda: render_exposition(reg)) as exporter:
            host, port = exporter.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                assert EXPOSITION_VERSION in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        assert validate_exposition(body) == []
        assert "serve_requests_total 5" in body

    def test_scrape_sees_live_updates(self):
        reg = Registry()
        with MetricsExporter(lambda: render_exposition(reg)) as exporter:
            host, port = exporter.address

            def scrape():
                with urllib.request.urlopen(
                    f"http://{host}:{port}/", timeout=10
                ) as response:
                    return response.read().decode("utf-8")

            assert scrape() == ""
            reg.incr("live.hits", 3)
            assert "live_hits_total 3" in scrape()

    def test_unknown_path_is_404(self):
        with MetricsExporter(lambda: "") as exporter:
            host, port = exporter.address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/other", timeout=10
                )
            assert excinfo.value.code == 404


class TestTail:
    def test_once_renders_snapshot_stream(self, tmp_path, capsys):
        from repro.obs.tail import main

        path = tmp_path / "snaps.jsonl"
        with SnapshotStream(path, source="test") as stream:
            stream.write(busy_registry())
        assert main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "serve.requests" in out
        assert "serve.latency.wall" in out
        assert "p99" in out

    def test_once_renders_exposition(self, tmp_path, capsys):
        from repro.obs.tail import main

        path = tmp_path / "metrics.prom"
        path.write_text(render_exposition(busy_registry()))
        assert main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "serve_requests_total" in out

    def test_bad_interval_rejected(self, tmp_path):
        from repro.obs.tail import main

        path = tmp_path / "x.jsonl"
        path.write_text("")
        assert main([str(path), "--interval", "0", "--once"]) == 2


class TestValidateCLISnapshots:
    def test_snapshot_stream_validates(self, tmp_path, capsys):
        from repro.obs.validate import main

        path = tmp_path / "snaps.jsonl"
        with SnapshotStream(path, source="test") as stream:
            stream.write(busy_registry())
            stream.write(busy_registry())
        assert main([str(path)]) == 0
        assert SNAPSHOT_SCHEMA_ID in capsys.readouterr().out

    def test_bad_snapshot_line_fails(self, tmp_path, capsys):
        from repro.obs.validate import main

        path = tmp_path / "snaps.jsonl"
        good = json.dumps(
            snapshot_state(Registry(), seq=0, source="t", now=1.0)
        )
        path.write_text(good + "\n" + '{"schema": "nope"}' + "\n" + good + "\n")
        assert main([str(path)]) == 1
        assert "schema" in capsys.readouterr().err
