"""Tests for the bench-trend observatory (``repro.obs.trend``)."""

import json
from pathlib import Path

import pytest

from repro.obs.trend import (
    BENCH_SCHEMA_ID,
    BenchSnapshot,
    compare_snapshots,
    counter_drift,
    load_snapshot,
    main,
    render_trend_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def make_snapshot_obj(cases, *, repeats=3, commit="deadbeef"):
    """A minimal valid bench snapshot.

    ``cases`` maps ``"<case>/<fixture>"`` to
    ``(seconds_median, counters)``.
    """
    return {
        "schema": BENCH_SCHEMA_ID,
        "git_commit": commit,
        "repeats": repeats,
        "fixtures": {"udg20": {"n": 20, "side": 3.8, "seed": 1}},
        "runs": [
            {
                "algorithm": name,
                "counters": dict(counters),
                "meta": {"seconds_median": median},
            }
            for name, (median, counters) in cases.items()
        ],
    }


def write_snapshot(tmp_path, name, cases, **kw):
    path = tmp_path / name
    path.write_text(json.dumps(make_snapshot_obj(cases, **kw)))
    return str(path)


BASE = {
    "greedy/udg20": (0.010, {"gain.evaluations": 100}),
    "waf/udg20": (0.005, {"mis.selected": 7}),
}


class TestCounterDrift:
    def test_exact_match_is_empty(self):
        assert counter_drift({"a": 3, "b": 0.5}, {"a": 3, "b": 0.5}) == {}

    def test_any_change_drifts_at_zero_budget(self):
        assert counter_drift({"a": 100}, {"a": 101}) == {"a": (100, 101)}

    def test_appear_and_disappear_count_as_drift(self):
        assert counter_drift({"gone": 5}, {"new": 2}) == {
            "gone": (5, 0),
            "new": (0, 2),
        }

    def test_threshold_is_relative(self):
        # 1% change passes a 5% budget; 10% change does not.
        assert counter_drift({"a": 100}, {"a": 101}, threshold=0.05) == {}
        assert counter_drift({"a": 100}, {"a": 110}, threshold=0.05) == {
            "a": (100, 110)
        }


class TestSnapshotLoading:
    def test_load_and_median(self, tmp_path):
        path = write_snapshot(tmp_path, "a.json", BASE)
        snap = load_snapshot(path)
        assert snap.label == "a"
        assert snap.median("greedy/udg20") == 0.010
        assert set(snap.cases) == set(BASE)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unknown bench schema"):
            BenchSnapshot.from_obj({"schema": "repro.obs/bench-baseline/v99"}, "x")

    def test_malformed_run_rejected(self):
        obj = {"schema": BENCH_SCHEMA_ID, "runs": [{"algorithm": "a"}]}
        with pytest.raises(ValueError, match="malformed run"):
            BenchSnapshot.from_obj(obj, "x")


class TestComparison:
    def test_alignment_tracks_added_and_removed_cases(self):
        old = BenchSnapshot.from_obj(make_snapshot_obj(BASE), "old")
        new_cases = dict(BASE)
        del new_cases["waf/udg20"]
        new_cases["steiner/udg20"] = (0.02, {})
        new = BenchSnapshot.from_obj(make_snapshot_obj(new_cases), "new")
        comp = compare_snapshots(old, new)
        assert [d.case for d in comp.deltas] == ["greedy/udg20"]
        assert comp.only_old == ["waf/udg20"]
        assert comp.only_new == ["steiner/udg20"]

    def test_time_regression_respects_threshold(self):
        old = BenchSnapshot.from_obj(make_snapshot_obj(BASE), "old")
        slower = {k: (m * 1.5, c) for k, (m, c) in BASE.items()}
        new = BenchSnapshot.from_obj(make_snapshot_obj(slower), "new")
        comp = compare_snapshots(old, new)
        assert len(comp.time_regressions(0.20)) == 2
        assert comp.time_regressions(0.60) == []
        assert comp.counter_regressions() == []

    def test_counter_regression_detected(self):
        old = BenchSnapshot.from_obj(make_snapshot_obj(BASE), "old")
        drifted = dict(BASE)
        drifted["greedy/udg20"] = (0.010, {"gain.evaluations": 120})
        new = BenchSnapshot.from_obj(make_snapshot_obj(drifted), "new")
        comp = compare_snapshots(old, new)
        (d,) = comp.counter_regressions()
        assert d.counters == {"gain.evaluations": (100, 120)}


class TestCli:
    def test_improvement_series_passes(self, tmp_path, capsys):
        a = write_snapshot(tmp_path, "a.json", BASE)
        faster = {k: (m / 4, c) for k, (m, c) in BASE.items()}
        b = write_snapshot(tmp_path, "b.json", faster)
        assert main([a, b]) == 0
        out = capsys.readouterr().out
        assert "# Bench trend report" in out
        assert "improved (4.0x)" in out
        assert "No regression beyond budget" in out

    def test_synthetic_time_regression_exits_nonzero(self, tmp_path, capsys):
        a = write_snapshot(tmp_path, "a.json", BASE)
        regressed = {k: (m * 3, c) for k, (m, c) in BASE.items()}
        b = write_snapshot(tmp_path, "b.json", regressed)
        assert main([a, b, "--threshold", "20"]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "median time" in err

    def test_no_time_gate_downgrades_time_but_not_counters(self, tmp_path):
        a = write_snapshot(tmp_path, "a.json", BASE)
        regressed = {k: (m * 3, c) for k, (m, c) in BASE.items()}
        b = write_snapshot(tmp_path, "b.json", regressed)
        assert main([a, b, "--no-time-gate"]) == 0
        drifted = dict(BASE)
        drifted["greedy/udg20"] = (0.010, {"gain.evaluations": 999})
        c = write_snapshot(tmp_path, "c.json", drifted)
        assert main([a, c, "--no-time-gate"]) == 1

    def test_gate_applies_to_newest_pair_only(self, tmp_path):
        # a -> b regresses, b -> c recovers: the series must pass.
        a = write_snapshot(tmp_path, "a.json", BASE)
        regressed = {k: (m * 3, c) for k, (m, c) in BASE.items()}
        b = write_snapshot(tmp_path, "b.json", regressed)
        c = write_snapshot(tmp_path, "c.json", BASE)
        assert main([a, b, c, "--threshold", "20"]) == 0

    def test_report_written_to_out_file(self, tmp_path):
        a = write_snapshot(tmp_path, "a.json", BASE)
        b = write_snapshot(tmp_path, "b.json", BASE)
        out = tmp_path / "trend.md"
        assert main([a, b, "--out", str(out)]) == 0
        text = out.read_text()
        assert "## Median seconds across the series" in text
        assert "greedy/udg20" in text

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        a = write_snapshot(tmp_path, "a.json", BASE)
        assert main([a]) == 2
        (tmp_path / "bad.json").write_text('{"schema": "nope"}')
        assert main([a, str(tmp_path / "bad.json")]) == 2
        assert main([a, str(tmp_path / "missing.json")]) == 2

    def test_committed_series_renders(self, capsys):
        """The acceptance command over the repo's real BENCH files."""
        paths = [
            REPO_ROOT / "BENCH_baseline.json",
            REPO_ROOT / "BENCH_pr2.json",
            REPO_ROOT / "BENCH_pr3.json",
        ]
        if not all(p.exists() for p in paths):
            pytest.skip("committed BENCH series not present")
        # Time gate off: the committed snapshots intentionally got faster,
        # but CI re-running this on other hardware must not flake.
        assert main([str(p) for p in paths] + ["--no-time-gate"]) == 0
        out = capsys.readouterr().out
        assert "greedy/udg150" in out


class TestRendering:
    def test_render_marks_slower_and_drift(self):
        old = BenchSnapshot.from_obj(make_snapshot_obj(BASE), "old")
        bad = {
            "greedy/udg20": (0.030, {"gain.evaluations": 120}),
            "waf/udg20": (0.015, {"mis.selected": 7}),
        }
        new = BenchSnapshot.from_obj(make_snapshot_obj(bad), "new")
        comp = compare_snapshots(old, new)
        report = render_trend_report([old, new], [comp], time_threshold=0.2)
        assert "**COUNTER DRIFT**" in report
        assert "**SLOWER**" in report
        assert "`gain.evaluations`: 100 → 120" in report
        assert "**REGRESSED:**" in report
