"""Shared fixtures: canonical small graphs and UDG instances."""

from __future__ import annotations

import pytest

from repro.geometry import Point
from repro.graphs import Graph, random_connected_udg


@pytest.fixture
def path5() -> Graph[int]:
    """A path 0-1-2-3-4."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star_graph() -> Graph[int]:
    """A star: center 0, leaves 1..5."""
    return Graph(edges=[(0, i) for i in range(1, 6)])


@pytest.fixture
def cycle6() -> Graph[int]:
    """A 6-cycle."""
    return Graph(edges=[(i, (i + 1) % 6) for i in range(6)])


@pytest.fixture
def complete4() -> Graph[int]:
    """K4."""
    return Graph(edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])


@pytest.fixture
def two_triangles_bridge() -> Graph[int]:
    """Two triangles joined by a bridge: {0,1,2} - 2-3 - {3,4,5}."""
    return Graph(
        edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
    )


@pytest.fixture
def small_udg():
    """A connected 20-node random UDG with its points."""
    return random_connected_udg(20, 4.0, seed=42)


@pytest.fixture
def medium_udg():
    """A connected 40-node random UDG with its points."""
    return random_connected_udg(40, 5.5, seed=7)


@pytest.fixture
def chain_udg():
    """The Figure 2 adversarial family: a unit chain of 8 nodes."""
    from repro.graphs import chain_points, unit_disk_graph

    pts = chain_points(8, spacing=1.0)
    return pts, unit_disk_graph(pts)


def make_udg_suite(count: int = 10, n: int = 18, side: float = 3.8):
    """A list of (points, graph) connected UDG instances."""
    return [random_connected_udg(n, side, seed=s) for s in range(count)]


@pytest.fixture(scope="session")
def udg_suite():
    """Ten connected 18-node UDGs, shared across tests for speed."""
    return make_udg_suite()
