"""Edge-case battery: corners the per-module suites don't reach.

Failure injection and boundary inputs across the public API — the
behaviors a downstream user hits first when they misuse the library.
"""

import math

import pytest

from repro.cds import (
    CDSResult,
    GainTracker,
    connected_domination_number,
    greedy_connector_cds,
    minimum_cds,
    waf_cds,
)
from repro.geometry import Point, figure2_linear, is_independent, phi
from repro.graphs import (
    Graph,
    chain_points,
    is_connected_dominating_set,
    unit_disk_graph,
)


class TestDegenerateGraphs:
    def test_two_node_graph_everything(self):
        g = Graph(edges=[("a", "b")])
        for algorithm in (waf_cds, greedy_connector_cds):
            result = algorithm(g)
            assert result.is_valid(g)
            assert result.size <= 2
        assert connected_domination_number(g) == 1

    def test_triangle(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert connected_domination_number(g) == 1
        assert greedy_connector_cds(g).size <= 2

    def test_very_dense_clique_udg(self):
        pts = [Point(0.01 * i, 0.0) for i in range(25)]
        g = unit_disk_graph(pts)
        # Complete graph: MIS = 1 node, no connectors.
        result = greedy_connector_cds(g)
        assert result.size <= 2
        assert result.is_valid(g)

    def test_exactly_unit_spaced_chain(self):
        # Distance exactly 1.0: edges exist (closed disk model).
        g = unit_disk_graph(chain_points(6, 1.0))
        assert g.edge_count() == 5
        assert waf_cds(g).is_valid(g)

    def test_barely_disconnected_chain(self):
        g = unit_disk_graph(chain_points(6, 1.0 + 1e-6))
        assert g.edge_count() == 0


class TestGainTrackerStress:
    def test_interleaved_queries_and_adds(self, medium_udg):
        from repro.mis import first_fit_mis

        _, g = medium_udg
        mis = first_fit_mis(g)
        tracker = GainTracker(g, mis.nodes)
        # Query gains between every add; totals must telescope.
        initial_q = tracker.component_count
        total_gain = 0
        while tracker.component_count > 1:
            w, gain = tracker.best_connector()
            assert tracker.gain(w) == gain
            tracker.add(w)
            total_gain += gain
        assert initial_q - total_gain == 1

    def test_tie_break_modes_all_terminate(self, small_udg):
        _, g = small_udg
        for tie_break in ("min", "max", "degree"):
            result = greedy_connector_cds(g, tie_break=tie_break)
            assert result.is_valid(g)


class TestExactSolverCorners:
    def test_upper_bound_equal_to_optimum(self, path5):
        assert len(minimum_cds(path5, upper_bound=3)) == 3

    def test_star_with_pendant(self):
        # Star + chain tail of 2.
        g = Graph(edges=[(0, i) for i in range(1, 5)] + [(4, 5), (5, 6)])
        opt = minimum_cds(g)
        assert is_connected_dominating_set(g, opt)
        assert len(opt) == 3  # {0, 4, 5}

    def test_two_cliques_bridge(self):
        g = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(i, j)
                g.add_edge(10 + i, 10 + j)
        g.add_edge(3, 10)
        assert connected_domination_number(g) == 2


class TestConstructionParameterSpace:
    @pytest.mark.parametrize("eps", [5e-3, 1e-2, 3e-2])
    def test_figure2_across_eps(self, eps):
        delta = eps * eps / 4
        centers, witness = figure2_linear(5, eps=eps, delta=delta)
        assert is_independent(witness)
        assert len(witness) == 18

    def test_phi_is_monotone(self):
        values = [phi(n) for n in range(1, 12)]
        assert values == sorted(values)


class TestResultInvariants:
    def test_frozen_result(self, path5):
        result = CDSResult(algorithm="x", nodes=frozenset([1, 2, 3]))
        with pytest.raises(AttributeError):
            result.nodes = frozenset([0])  # type: ignore[misc]

    def test_meta_is_per_instance(self):
        a = CDSResult(algorithm="x", nodes=frozenset([1]))
        b = CDSResult(algorithm="x", nodes=frozenset([1]))
        a.meta["k"] = 1
        assert "k" not in b.meta

    def test_connectors_order_preserved(self, small_udg):
        _, g = small_udg
        result = greedy_connector_cds(g)
        gains = result.meta["gain_history"]
        assert len(result.connectors) == len(gains)


class TestFloatRobustness:
    def test_points_near_unit_distance(self):
        # Pairs straddling the EPS tolerance around distance 1.
        base = Point(0.0, 0.0)
        inside = Point(1.0 - 1e-12, 0.0)
        boundary = Point(1.0, 0.0)
        outside = Point(1.0 + 1e-6, 0.0)
        g = unit_disk_graph([base, inside, boundary, outside])
        assert g.has_edge(base, inside)
        assert g.has_edge(base, boundary)
        assert not g.has_edge(base, outside)

    def test_large_coordinates(self):
        shift = 1e6
        pts = [Point(shift + x, shift) for x in (0.0, 0.5, 1.2)]
        g = unit_disk_graph(pts)
        assert g.has_edge(pts[0], pts[1])
        assert g.has_edge(pts[1], pts[2])
        assert not g.has_edge(pts[0], pts[2])
