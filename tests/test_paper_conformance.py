"""Paper conformance: every literal constant the paper states, pinned.

One test per numeric claim in the text, in paper order — a conformance
checklist doubling as documentation.  If any of these fails, the
reproduction no longer encodes the paper it claims to.
"""

import math
from fractions import Fraction

from repro.cds import bounds
from repro.geometry import WEGNER_RADIUS2_CAPACITY, phi


class TestAbstract:
    def test_waf_ratio_is_seven_and_one_third(self):
        assert bounds.WAF_RATIO == 7 + Fraction(1, 3)

    def test_previous_best_was_seven_point_six(self):
        assert bounds.waf_bound_wu2006(1) == 7.6 + 1.4

    def test_new_algorithm_ratio_is_six_and_seven_eighteenths(self):
        assert bounds.GREEDY_RATIO == 6 + Fraction(7, 18)


class TestIntroduction:
    def test_loose_relation_of_wan2004(self):
        # alpha <= 4 gamma_c + 1
        assert bounds.alpha_bound_wan2004(10) == 41.0

    def test_implied_ratio_eight_from_loose_relation(self):
        # the upper bound of 8 on [4]/[10]'s ratios
        assert bounds.waf_bound_wan2004(10) == 8 * 10 - 1

    def test_refined_relation_of_wu2006(self):
        assert math.isclose(bounds.alpha_bound_wu2006(10), 39.2)

    def test_this_papers_relation(self):
        # alpha <= 3 2/3 gamma_c + 1
        assert bounds.alpha_bound_this_paper(3) == 12
        assert bounds.ALPHA_SLOPE == 3 + Fraction(2, 3)

    def test_funke_claim_constants(self):
        assert math.isclose(bounds.alpha_bound_funke_claim(1), 3.453 + 8.291)

    def test_alzoubi_large_constant(self):
        # "its approximation ratio is a large constant (but less than 192)"
        assert 192 > bounds.WAF_RATIO


class TestSectionII:
    def test_trivial_disk_capacity(self):
        assert phi(1) == 5

    def test_lemma1_constant(self):
        # |I(o) Δ I(u)| <= 7, not the naive 8.
        assert 7 == 5 + 4 - 2  # the paper's 5 + 4 cap minus the refinement

    def test_phi_small_values(self):
        assert phi(1) == 5 and phi(2) == 8

    def test_phi_midrange(self):
        assert phi(3) == 12 and phi(4) == 15 and phi(5) == 18

    def test_phi_wegner_cap(self):
        assert phi(6) == phi(7) == phi(100) == 21
        assert WEGNER_RADIUS2_CAPACITY == 21

    def test_phi_below_eleven_thirds(self):
        # "It's easy to verify that phi_n <= 11n/3 + 1 for n >= 2."
        for n in range(2, 40):
            assert phi(n) <= Fraction(11, 3) * n + 1

    def test_theorem6_constants(self):
        assert bounds.neighborhood_bound(3) == 12
        assert bounds.neighborhood_bound_capped_degree(3) == 11
        assert bounds.neighborhood_bound_intersecting(3) == 10


class TestSectionIII:
    def test_gamma_one_case(self):
        # "If gamma_c = 1, then |I| <= 5 and |C| = 1, hence |I ∪ C| <= 6"
        assert phi(1) + 1 == 6

    def test_theorem8_statement(self):
        assert bounds.waf_bound_this_paper(3) == 22

    def test_improvement_chain(self):
        for gc in range(1, 30):
            assert (
                bounds.waf_bound_this_paper(gc)
                < bounds.waf_bound_wu2006(gc)
                <= bounds.waf_bound_wan2004(gc) + 2.4  # crossover near gc=6
            )


class TestSectionIV:
    def test_theorem10_statement(self):
        assert bounds.greedy_bound_this_paper(18) == 115

    def test_lemma9_floor(self):
        assert bounds.lemma9_min_gain(2, 5) == 1
        assert bounds.lemma9_min_gain(16, 5) == 3

    def test_c2_threshold_identity_for_small_gamma(self):
        # "when 3 <= gamma_c <= 5: floor(floor(5/3 gc - 3)/2) = floor(13/18 gc) - 1"
        for gc in (3, 4, 5):
            lhs = math.floor(math.floor(5 * gc / 3 - 3) / 2)
            rhs = math.floor(13 * gc / 18) - 1
            assert lhs == rhs

    def test_gamma_two_collapse(self):
        # "for otherwise floor(3 2/3 gc) - 3 = 2 gc" at gc = 2.
        assert math.floor(11 * 2 / 3) - 3 == 2 * 2


class TestSectionV:
    def test_figure1_counts(self):
        assert phi(2) == 8 and phi(3) == 12

    def test_figure2_formula(self):
        for n in range(3, 20):
            assert 3 * (n + 1) == 3 * n + 3

    def test_conjectured_ratios(self):
        assert bounds.waf_bound_conjectured(1) == 6.0
        assert bounds.greedy_bound_conjectured(1) == 5.5

    def test_hexagon_constants(self):
        from repro.geometry import HEXAGON_SIDE, hexagon_area

        assert math.isclose(HEXAGON_SIDE, 1 / math.sqrt(3))
        assert math.isclose(hexagon_area(), math.sqrt(3) / 2)

    def test_fejes_toth_density(self):
        from repro.geometry import FEJES_TOTH_DENSITY

        assert math.isclose(FEJES_TOTH_DENSITY, math.pi / math.sqrt(12))
