"""Tests for the 'solve' CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.graphs import random_connected_udg
from repro.io import load_result, save_points


@pytest.fixture
def deployment(tmp_path):
    pts, _ = random_connected_udg(20, 4.0, seed=3)
    path = tmp_path / "deploy.csv"
    save_points(pts, path)
    return str(path)


class TestSolve:
    def test_basic_run(self, deployment, capsys):
        assert main(["solve", deployment]) == 0
        out = capsys.readouterr().out
        assert "backbone size" in out
        assert "greedy-connector" in out

    def test_algorithm_choice(self, deployment, capsys):
        assert main(["solve", deployment, "--algorithm", "waf"]) == 0
        assert "waf" in capsys.readouterr().out

    def test_baseline_choice(self, deployment, capsys):
        assert main(["solve", deployment, "--algorithm", "guha-khuller"]) == 0
        assert "guha-khuller" in capsys.readouterr().out

    def test_out_file_roundtrips(self, deployment, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main(["solve", deployment, "--out", str(out_file)]) == 0
        result = load_result(out_file)
        assert result.size > 0

    def test_prune_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--prune"]) == 0
        assert "+prune" in capsys.readouterr().out

    def test_ratio_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--ratio"]) == 0
        assert "gamma_c" in capsys.readouterr().out

    def test_viz_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--viz"]) == 0
        out = capsys.readouterr().out
        assert "D dominator" in out

    def test_missing_file(self, capsys):
        assert main(["solve", "/nonexistent/deploy.csv"]) == 2

    def test_empty_deployment(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        assert main(["solve", str(path)]) == 2

    def test_disconnected_uses_giant_component(self, tmp_path, capsys):
        from repro.geometry import Point
        from repro.io import save_points as sp

        pts = [Point(0, 0), Point(0.5, 0), Point(0.9, 0.2), Point(50, 50)]
        path = tmp_path / "disc.csv"
        sp(pts, path)
        assert main(["solve", str(path)]) == 0
        out = capsys.readouterr().out
        assert "largest component" in out

    def test_unknown_algorithm_rejected(self, deployment):
        with pytest.raises(SystemExit):
            main(["solve", deployment, "--algorithm", "magic"])


class TestKernelFlag:
    @pytest.mark.parametrize("kernel", ["auto", "indexed", "bitset", "array"])
    def test_kernel_accepted_for_greedy(self, deployment, kernel, capsys):
        assert main(["solve", deployment, "--kernel", kernel]) == 0
        assert "backbone size" in capsys.readouterr().out

    def test_kernels_solve_identically(self, deployment, tmp_path):
        sizes = {}
        for kernel in ("indexed", "bitset", "array"):
            out_file = tmp_path / f"{kernel}.json"
            assert main(
                ["solve", deployment, "--kernel", kernel, "--out", str(out_file)]
            ) == 0
            result = load_result(out_file)
            sizes[kernel] = (result.size, sorted(map(str, result.nodes)))
        assert sizes["indexed"] == sizes["bitset"] == sizes["array"]

    @pytest.mark.parametrize("kernel", ["bitset", "array"])
    def test_kernel_accepted_for_waf(self, deployment, kernel, capsys):
        assert (
            main(
                ["solve", deployment, "--algorithm", "waf", "--kernel", kernel]
            )
            == 0
        )

    def test_unknown_kernel_rejected(self, deployment):
        with pytest.raises(SystemExit):
            main(["solve", deployment, "--kernel", "numpy"])

    def test_kernel_rejected_for_unkernelized_solver(self, deployment, capsys):
        code = main(
            ["solve", deployment, "--algorithm", "steiner", "--kernel", "bitset"]
        )
        assert code == 2
        assert "not supported" in capsys.readouterr().err

    def test_auto_kernel_fine_for_unkernelized_solver(self, deployment):
        assert main(["solve", deployment, "--algorithm", "steiner"]) == 0


class TestJobsValidation:
    def test_zero_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--all", "--jobs", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["T8", "--jobs", "-3"])
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["T8", "--jobs", "many"])
        assert "invalid int value" in capsys.readouterr().err

    def test_bench_script_rejects_bad_jobs(self, capsys):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import bench_to_json
        finally:
            sys.path.pop(0)
        with pytest.raises(SystemExit):
            bench_to_json.main(["--jobs", "0", "-o", "/tmp/never.json"])
        assert "positive integer" in capsys.readouterr().err


class TestSolveStats:
    def test_stats_out_writes_valid_record(self, deployment, tmp_path, capsys):
        from repro.obs import validate_run_record

        rec_file = tmp_path / "rec.json"
        assert main(["solve", deployment, "--stats-out", str(rec_file)]) == 0
        obj = json.loads(rec_file.read_text())
        assert validate_run_record(obj) == []
        # The acceptance contract: greedy emits non-zero operation
        # counts and phase timings.
        assert obj["algorithm"] == "greedy-connector"
        assert obj["counters"]["gain.evaluations"] > 0
        assert obj["counters"]["gain.dsu_unions"] > 0
        assert obj["timings"]["greedy.phase1"]["seconds"] >= 0
        assert obj["timings"]["greedy.phase2"]["count"] == 1
        assert obj["results"]["cds_size"] > 0
        assert obj["instance"]["nodes"] == 20

    def test_trace_prints_report(self, deployment, capsys):
        assert main(["solve", deployment, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation" in out
        assert "gain.evaluations" in out

    def test_stats_off_by_default(self, deployment, capsys):
        from repro.obs import OBS

        assert main(["solve", deployment]) == 0
        assert not OBS.enabled

    def test_experiments_stats_out(self, tmp_path, capsys):
        from repro.obs import validate_run_record

        rec_file = tmp_path / "rec.json"
        assert main(["LEM", "--stats-out", str(rec_file)]) == 0
        obj = json.loads(rec_file.read_text())
        assert validate_run_record(obj) == []
        assert obj["algorithm"] == "experiment:LEM"
        assert obj["results"]["failed"] == []

    def test_run_recorded_helper(self):
        from repro.experiments import run_recorded
        from repro.obs import validate_run_record

        result, record = run_recorded("LEM")
        assert result.passed
        assert record.results["passed"] is True
        assert record.timings["experiment.LEM"]["count"] == 1
        assert validate_run_record(record.to_json_obj()) == []


class TestParallelStats:
    """--jobs N with observability: merged output must equal serial."""

    CHEAP = ["F1F2", "T6"]

    def run_stats(self, tmp_path, name, jobs):
        rec_file = tmp_path / name
        argv = self.CHEAP + ["--stats-out", str(rec_file)]
        if jobs > 1:
            argv += ["--jobs", str(jobs)]
        assert main(argv) == 0
        return json.loads(rec_file.read_text())

    def test_parallel_record_valid_and_counters_equal_serial(
        self, tmp_path, capsys
    ):
        from repro.obs import validate_run_record

        serial = self.run_stats(tmp_path, "serial.json", jobs=1)
        merged = self.run_stats(tmp_path, "parallel.json", jobs=2)
        assert validate_run_record(merged) == []
        assert merged["counters"] == serial["counters"]
        assert merged["results"] == serial["results"] == {
            "ran": 2,
            "failed": [],
        }
        # Same spans executed, whatever the process layout.
        assert {
            name: t["count"] for name, t in merged["timings"].items()
        } == {name: t["count"] for name, t in serial["timings"].items()}

    def test_parallel_trace_prints_merged_report(self, tmp_path, capsys):
        assert main(self.CHEAP + ["--jobs", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation" in out
        assert "experiment.T6" in out


class TestEventLogFlag:
    CHEAP = ["F1F2", "T6"]

    def test_serial_events_replay_experiment_spans(self, tmp_path, capsys):
        from repro.obs.events import read_events, replay

        log_file = tmp_path / "run.events.jsonl"
        assert main(["T6", "--events-out", str(log_file)]) == 0
        assert "event log written" in capsys.readouterr().out
        roots = replay(read_events(log_file))
        assert any(r.name == "experiment.T6" for r in roots)

    def test_parallel_events_cover_every_worker(self, tmp_path, capsys):
        from repro.obs.events import read_events, replay

        log_file = tmp_path / "merged.events.jsonl"
        assert (
            main(self.CHEAP + ["--jobs", "2", "--events-out", str(log_file)])
            == 0
        )
        events = read_events(log_file)
        headers = [e for e in events if e["type"] == "run"]
        assert [h["worker"] for h in headers] == [0, 1]
        roots = replay(events)
        assert {r.name for r in roots} == {
            "experiment.F1F2",
            "experiment.T6",
        }

    def test_solve_events(self, deployment, tmp_path, capsys):
        from repro.obs.events import read_events, replay

        log_file = tmp_path / "solve.events.jsonl"
        assert (
            main(["solve", deployment, "--events-out", str(log_file)]) == 0
        )
        # The log also covers spans before the solver (the UDG build),
        # so find the solve root among possibly several.
        roots = replay(read_events(log_file))
        (solve,) = [r for r in roots if r.name == "solve.total"]
        child_names = {c.name for c in solve.children}
        assert "greedy.phase1" in child_names


class TestMemAndProfileFlags:
    def test_solve_mem_trace_in_record(self, deployment, tmp_path, capsys):
        rec_file = tmp_path / "rec.json"
        assert (
            main(
                [
                    "solve",
                    deployment,
                    "--mem-trace",
                    "--stats-out",
                    str(rec_file),
                ]
            )
            == 0
        )
        counters = json.loads(rec_file.read_text())["counters"]
        assert counters["mem.run.peak_bytes"] > 0
        assert counters["mem.solve.total.peak_bytes"] > 0

    def test_solve_profile_out(self, deployment, tmp_path, capsys):
        import pstats

        out = tmp_path / "solve.pstats"
        assert main(["solve", deployment, "--profile-out", str(out)]) == 0
        assert "profile written" in capsys.readouterr().out
        pstats.Stats(str(out))  # loadable

    def test_experiments_profile_out(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "t6.pstats"
        assert main(["T6", "--profile-out", str(out)]) == 0
        pstats.Stats(str(out))


class TestBenchSubcommand:
    def test_requires_compare(self, capsys):
        assert main(["bench"]) == 2
        assert "usage" in capsys.readouterr().err
        assert main(["bench", "diff"]) == 2

    def test_compare_dispatches_to_trend(self, tmp_path, capsys):
        from repro.obs.trend import BENCH_SCHEMA_ID

        snap = {
            "schema": BENCH_SCHEMA_ID,
            "repeats": 1,
            "fixtures": {},
            "runs": [
                {
                    "algorithm": "greedy/udg20",
                    "counters": {"gain.evaluations": 10},
                    "meta": {"seconds_median": 0.01},
                }
            ],
        }
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snap))
        b.write_text(json.dumps(snap))
        assert main(["bench", "compare", str(a), str(b)]) == 0
        assert "Bench trend report" in capsys.readouterr().out
