"""Tests for the 'solve' CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.graphs import random_connected_udg
from repro.io import load_result, save_points


@pytest.fixture
def deployment(tmp_path):
    pts, _ = random_connected_udg(20, 4.0, seed=3)
    path = tmp_path / "deploy.csv"
    save_points(pts, path)
    return str(path)


class TestSolve:
    def test_basic_run(self, deployment, capsys):
        assert main(["solve", deployment]) == 0
        out = capsys.readouterr().out
        assert "backbone size" in out
        assert "greedy-connector" in out

    def test_algorithm_choice(self, deployment, capsys):
        assert main(["solve", deployment, "--algorithm", "waf"]) == 0
        assert "waf" in capsys.readouterr().out

    def test_baseline_choice(self, deployment, capsys):
        assert main(["solve", deployment, "--algorithm", "guha-khuller"]) == 0
        assert "guha-khuller" in capsys.readouterr().out

    def test_out_file_roundtrips(self, deployment, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main(["solve", deployment, "--out", str(out_file)]) == 0
        result = load_result(out_file)
        assert result.size > 0

    def test_prune_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--prune"]) == 0
        assert "+prune" in capsys.readouterr().out

    def test_ratio_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--ratio"]) == 0
        assert "gamma_c" in capsys.readouterr().out

    def test_viz_flag(self, deployment, capsys):
        assert main(["solve", deployment, "--viz"]) == 0
        out = capsys.readouterr().out
        assert "D dominator" in out

    def test_missing_file(self, capsys):
        assert main(["solve", "/nonexistent/deploy.csv"]) == 2

    def test_empty_deployment(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        assert main(["solve", str(path)]) == 2

    def test_disconnected_uses_giant_component(self, tmp_path, capsys):
        from repro.geometry import Point
        from repro.io import save_points as sp

        pts = [Point(0, 0), Point(0.5, 0), Point(0.9, 0.2), Point(50, 50)]
        path = tmp_path / "disc.csv"
        sp(pts, path)
        assert main(["solve", str(path)]) == 0
        out = capsys.readouterr().out
        assert "largest component" in out

    def test_unknown_algorithm_rejected(self, deployment):
        with pytest.raises(SystemExit):
            main(["solve", deployment, "--algorithm", "magic"])
