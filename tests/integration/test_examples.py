"""Smoke tests: every example script runs end-to-end.

Examples are the public face of the library; these tests execute each
one in a subprocess with small arguments and assert a clean exit plus
the expected headline in the output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "18", "1")
        assert proc.returncode == 0, proc.stderr
        assert "paper bounds respected" in proc.stdout
        assert "D dominator" in proc.stdout  # the map legend

    def test_sensor_backbone_broadcast(self):
        proc = run_example("sensor_backbone_broadcast.py", "60", "1")
        assert proc.returncode == 0, proc.stderr
        assert "saves" in proc.stdout
        assert "blind flooding" in proc.stdout

    def test_density_sweep(self):
        proc = run_example("density_sweep.py", "20", "2")
        assert proc.returncode == 0, proc.stderr
        assert "mean CDS size" in proc.stdout

    def test_mobile_network_churn(self):
        proc = run_example("mobile_network_churn.py", "25", "30", "1")
        assert proc.returncode == 0, proc.stderr
        assert "valid CDS through every event" in proc.stdout

    def test_energy_rotation(self):
        proc = run_example("energy_rotation.py", "24", "3")
        assert proc.returncode == 0, proc.stderr
        assert "lifetime" in proc.stdout

    @pytest.mark.slow
    def test_theory_verification(self):
        proc = run_example("theory_verification.py", timeout=1200)
        assert proc.returncode == 0, proc.stderr
        assert "every paper claim verified" in proc.stdout
