"""Integration tests: whole pipelines on realistic deployments."""

from repro.baselines import ALL_BASELINES
from repro.cds import (
    greedy_connector_cds,
    minimum_cds,
    prune_cds,
    steiner_cds,
    waf_cds,
)
from repro.graphs import (
    chain_points,
    clustered_points,
    corridor_points,
    is_connected,
    is_connected_dominating_set,
    is_dominating_set,
    largest_component_udg,
    quasi_unit_disk_graph,
    random_connected_udg,
    unit_disk_graph,
)


class TestFullStackOnDeploymentFamilies:
    def test_uniform_deployment_all_algorithms(self):
        pts, g = random_connected_udg(60, 6.5, seed=3)
        results = {
            "waf": waf_cds(g),
            "greedy": greedy_connector_cds(g),
            "steiner": steiner_cds(g),
        }
        for name, fn in ALL_BASELINES.items():
            results[name] = fn(g)
        for name, result in results.items():
            assert result.is_valid(g), name

    def test_clustered_deployment(self):
        pts = clustered_points(70, 7.0, clusters=5, spread=0.6, seed=2)
        kept, g = largest_component_udg(pts)
        if len(g) < 5:
            return
        assert waf_cds(g).is_valid(g)
        assert greedy_connector_cds(g).is_valid(g)

    def test_corridor_deployment(self):
        pts = corridor_points(50, 20.0, 1.5, seed=4)
        kept, g = largest_component_udg(pts)
        if len(g) < 5:
            return
        waf = waf_cds(g)
        greedy = greedy_connector_cds(g)
        assert waf.is_valid(g) and greedy.is_valid(g)
        # Corridors force long backbones: the CDS is a large fraction.
        assert greedy.size >= len(g) // 10

    def test_chain_worst_case_family(self):
        for n in (5, 10, 20, 35):
            g = unit_disk_graph(chain_points(n, 1.0))
            waf = waf_cds(g)
            greedy = greedy_connector_cds(g)
            assert waf.is_valid(g) and greedy.is_valid(g)
            # gamma_c of an n-chain is n-2; both stay within ~1x of it.
            assert greedy.size <= n
            assert waf.size <= n


class TestPipelineComposition:
    def test_prune_after_each_algorithm(self):
        _, g = random_connected_udg(40, 5.5, seed=9)
        for algorithm in (waf_cds, greedy_connector_cds, steiner_cds):
            result = algorithm(g)
            pruned = prune_cds(g, result.nodes)
            assert is_connected_dominating_set(g, pruned)
            assert len(pruned) <= result.size

    def test_heuristic_as_upper_bound_for_exact(self):
        _, g = random_connected_udg(18, 3.6, seed=5)
        ub = greedy_connector_cds(g).size
        opt = minimum_cds(g, upper_bound=ub)
        assert len(opt) <= ub

    def test_quasi_udg_robustness(self):
        # The algorithms' correctness (not ratio) survives quasi-UDGs.
        pts, _ = random_connected_udg(40, 5.0, seed=11)
        quasi = quasi_unit_disk_graph(pts, inner_radius=0.7, seed=1)
        if not is_connected(quasi):
            kept, quasi = largest_component_udg(pts)
        # 2-hop separation still holds for any MIS, so both phase-2
        # rules still terminate with a CDS.
        assert waf_cds(quasi).is_valid(quasi)
        assert greedy_connector_cds(quasi).is_valid(quasi)

    def test_broadcast_backbone_use_case(self):
        # The motivating application: flooding via the CDS reaches all
        # nodes, with far fewer transmitting nodes than blind flooding.
        _, g = random_connected_udg(80, 5.5, seed=13)
        backbone = greedy_connector_cds(g)
        assert is_dominating_set(g, backbone.nodes)
        assert backbone.size < len(g) / 2
