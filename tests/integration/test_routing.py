"""Tests for backbone routing."""

import itertools
import random

import pytest

from repro.cds import greedy_connector_cds, waf_cds
from repro.graphs import Graph, shortest_path_lengths
from repro.routing import BackboneRouter


def make_router(graph):
    return BackboneRouter(graph, greedy_connector_cds(graph).nodes)


class TestRouteValidity:
    def test_paths_are_walks(self, udg_suite):
        for _, g in udg_suite[:5]:
            router = make_router(g)
            nodes = sorted(g.nodes())
            rng = random.Random(0)
            for _ in range(10):
                s, t = rng.sample(nodes, 2)
                path = router.route(s, t)
                assert path[0] == s and path[-1] == t
                for a, b in itertools.pairwise(path):
                    assert g.has_edge(a, b)

    def test_interior_is_backbone(self, udg_suite):
        for _, g in udg_suite[:5]:
            router = make_router(g)
            nodes = sorted(g.nodes())
            rng = random.Random(1)
            for _ in range(10):
                s, t = rng.sample(nodes, 2)
                path = router.route(s, t)
                for v in path[1:-1]:
                    assert v in router.backbone

    def test_self_route(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        assert router.route(2, 2) == [2]

    def test_adjacent_direct(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        assert router.route(0, 1) == [0, 1]

    def test_unknown_endpoint(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        with pytest.raises(KeyError):
            router.route(0, 99)

    def test_invalid_backbone_rejected(self, path5):
        with pytest.raises(ValueError):
            BackboneRouter(path5, [0, 1])


class TestStretch:
    def test_stretch_at_least_one(self, udg_suite):
        for _, g in udg_suite[:4]:
            router = make_router(g)
            nodes = sorted(g.nodes())
            rng = random.Random(2)
            for _ in range(8):
                s, t = rng.sample(nodes, 2)
                assert router.stretch(s, t) >= 1.0

    def test_stretch_bounded_for_mis_backbone(self, udg_suite):
        # MIS-based backbones detour at most a few extra hops per hop;
        # empirically mean stretch stays below 2 on random UDGs.
        for _, g in udg_suite[:4]:
            router = make_router(g)
            nodes = sorted(g.nodes())
            rng = random.Random(3)
            pairs = [tuple(rng.sample(nodes, 2)) for _ in range(12)]
            assert router.mean_stretch(pairs) < 2.0

    def test_path_graph_stretch_is_one(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        assert router.stretch(0, 4) == 1.0

    def test_mean_stretch_requires_pairs(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        with pytest.raises(ValueError):
            router.mean_stretch([])

    def test_waf_and_greedy_backbones_both_routable(self, small_udg):
        _, g = small_udg
        for cds in (waf_cds(g), greedy_connector_cds(g)):
            router = BackboneRouter(g, cds.nodes)
            nodes = sorted(g.nodes())
            s, t = nodes[0], nodes[-1]
            path = router.route(s, t)
            true = shortest_path_lengths(g, s)[t]
            assert len(path) - 1 >= true


class TestLoadProfile:
    def test_backbone_carries_interior_load(self, small_udg):
        _, g = small_udg
        router = make_router(g)
        nodes = sorted(g.nodes())
        rng = random.Random(5)
        flows = [tuple(rng.sample(nodes, 2)) for _ in range(30)]
        load = router.load_profile(flows)
        # Every flow contributes at least one forwarding (its source).
        assert sum(load.values()) >= len(flows)
        # Interior forwarding happens only on backbone nodes.
        for node, count in load.items():
            if node not in router.backbone:
                # Non-backbone nodes only forward as flow sources.
                source_count = sum(1 for s, _ in flows if s == node)
                assert count <= source_count

    def test_load_concentrates_on_backbone(self, medium_udg):
        _, g = medium_udg
        router = make_router(g)
        nodes = sorted(g.nodes())
        rng = random.Random(6)
        flows = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        load = router.load_profile(flows)
        backbone_load = sum(c for v, c in load.items() if v in router.backbone)
        total = sum(load.values())
        assert backbone_load >= 0.5 * total

    def test_empty_flows(self, path5):
        router = BackboneRouter(path5, [1, 2, 3])
        assert router.load_profile([]) == {}
