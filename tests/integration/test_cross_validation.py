"""Cross-validation: our implementations against networkx and against
each other (centralized vs distributed renditions of the same phases)."""

import networkx as nx

from repro.cds import greedy_connector_cds, waf_cds
from repro.distributed import (
    build_bfs_tree,
    distributed_greedy_cds,
    distributed_waf_cds,
    elect_leader,
)
from repro.experiments.instances import int_labeled
from repro.graphs import (
    bfs_tree,
    is_connected,
    random_connected_udg,
    to_networkx,
)


class TestAgainstNetworkx:
    def test_connectivity_agrees(self, udg_suite):
        for _, g in udg_suite:
            assert nx.is_connected(to_networkx(g)) == is_connected(g)

    def test_bfs_depths_agree(self, udg_suite):
        for _, g in udg_suite:
            root = min(g.nodes())
            ours = bfs_tree(g, root).depth
            theirs = nx.single_source_shortest_path_length(to_networkx(g), root)
            assert ours == dict(theirs)

    def test_our_cds_is_nx_dominating_and_connected(self, udg_suite):
        for _, g in udg_suite:
            nxg = to_networkx(g)
            for result in (waf_cds(g), greedy_connector_cds(g)):
                assert nx.is_dominating_set(nxg, set(result.nodes))
                assert nx.is_connected(nxg.subgraph(result.nodes))

    def test_mis_is_nx_maximal_independent(self, udg_suite):
        from repro.mis import first_fit_mis

        for _, g in udg_suite:
            nxg = to_networkx(g)
            mis = set(first_fit_mis(g).nodes)
            # Independent in networkx terms:
            assert all(
                not nxg.has_edge(u, v) for u in mis for v in mis if u != v
            )
            # Maximal: every node in or adjacent.
            assert nx.is_dominating_set(nxg, mis)


class TestDistributedVsCentralized:
    def test_leader_is_min_node(self, udg_suite):
        for _, graph in udg_suite:
            g = int_labeled(graph)
            leader, _ = elect_leader(g)
            assert leader == min(g.nodes())

    def test_tree_levels_match(self, udg_suite):
        for _, graph in udg_suite:
            g = int_labeled(graph)
            distributed, _ = build_bfs_tree(g, 0)
            centralized = bfs_tree(g, 0)
            assert distributed.level == centralized.depth

    def test_pipelines_sizes_comparable(self, udg_suite):
        # Rank order (distributed) vs queue order (centralized) differ,
        # so exact equality is not expected; sizes must stay close and
        # both valid. A gap beyond 30% would indicate a protocol bug.
        for _, graph in udg_suite:
            g = int_labeled(graph)
            d_waf, _ = distributed_waf_cds(g)
            c_waf = waf_cds(g)
            assert d_waf.is_valid(g) and c_waf.is_valid(g)
            assert abs(d_waf.size - c_waf.size) <= max(4, 0.5 * c_waf.size)

    def test_greedy_pipeline_matches_gain_semantics(self, udg_suite):
        from repro.cds import gain_of

        for _, graph in udg_suite[:4]:
            g = int_labeled(graph)
            result, _ = distributed_greedy_cds(g)
            included = set(result.dominators)
            for w in result.connectors:
                # Each winner had the max gain at its selection time.
                best = max(
                    gain_of(g, included, x) for x in g.nodes() if x not in included
                )
                assert gain_of(g, included, w) == best
                included.add(w)
