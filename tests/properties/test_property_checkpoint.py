"""Property-based tests (hypothesis) for the checkpoint ledger.

The resume guarantee reduces to three properties of the JSONL journal:
write→read is lossless for arbitrary JSON-ready payloads, the resume
set is always exactly ``grid − completed``, and damage (a partial
trailing line, duplicates) is either repaired safely or rejected —
never silently merged.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reliability import (
    CheckpointWriter,
    grid_fingerprint,
    read_checkpoint,
    repair_trailing_line,
)

#: Cell keys: non-empty, unique, printable (the runner enforces
#: uniqueness; keys are arbitrary strings otherwise).
keys_strategy = st.lists(
    st.text(
        alphabet=st.characters(codec="utf-8", exclude_characters="\n\r"),
        min_size=1,
        max_size=30,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)

#: JSON-ready result payloads (what encode() hands the writer).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)

attempts_strategy = st.integers(min_value=1, max_value=5)


class TestLedgerRoundTrip:
    @given(keys=keys_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_write_read_lossless(self, tmp_path_factory, keys, data):
        completed = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        payloads = {
            key: data.draw(json_values, label=f"result[{key}]")
            for key in completed
        }
        attempts = {key: data.draw(attempts_strategy) for key in completed}
        path = tmp_path_factory.mktemp("ledger") / "c.jsonl"
        with CheckpointWriter(path, keys=keys, label="prop") as writer:
            for key in completed:
                writer.record_cell(key, payloads[key], attempts[key])
        ledger = read_checkpoint(path)
        assert not ledger.truncated
        assert ledger.fingerprint == grid_fingerprint(keys, "prop")
        assert set(ledger.cells) == set(completed)
        for key in completed:
            assert ledger.result(key) == payloads[key]
            assert ledger.attempts(key) == attempts[key]

    @given(keys=keys_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_resume_set_is_grid_minus_completed(self, tmp_path_factory, keys, data):
        completed = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        path = tmp_path_factory.mktemp("ledger") / "c.jsonl"
        with CheckpointWriter(path, keys=keys, label="prop") as writer:
            for key in completed:
                writer.record_cell(key, {"k": key}, 1)
        missing = read_checkpoint(path).missing(keys)
        assert missing == [k for k in keys if k not in set(completed)]
        assert set(missing) | set(completed) == set(keys)
        assert not set(missing) & set(completed)


class TestLedgerDamage:
    @given(
        keys=keys_strategy,
        cut=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncated_tail_never_loses_complete_cells(
        self, tmp_path_factory, keys, cut
    ):
        """Chop bytes off the end: reads still yield every intact line."""
        path = tmp_path_factory.mktemp("ledger") / "c.jsonl"
        with CheckpointWriter(path, keys=keys, label="prop") as writer:
            for key in keys:
                writer.record_cell(key, {"k": key}, 1)
        data = path.read_bytes()
        intact = data[: len(data) - min(cut, len(data))]
        surviving_lines = intact.count(b"\n")
        if surviving_lines == 0:
            return  # header gone: read_checkpoint rightly refuses
        path.write_bytes(intact)
        ledger = read_checkpoint(path)
        # Every cell whose line (with newline) survived intact is there.
        assert len(ledger.cells) == surviving_lines - 1
        for key in ledger.cells:
            assert ledger.result(key) == {"k": key}
        # Repair then re-read: the partial tail is gone for good.
        repair_trailing_line(path)
        assert not read_checkpoint(path).truncated

    @given(keys=keys_strategy)
    @settings(max_examples=30, deadline=None)
    def test_duplicate_cell_lines_rejected(self, tmp_path_factory, keys):
        path = tmp_path_factory.mktemp("ledger") / "c.jsonl"
        with CheckpointWriter(path, keys=keys, label="prop") as writer:
            for key in keys:
                writer.record_cell(key, 1, 1)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_checkpoint(path)
