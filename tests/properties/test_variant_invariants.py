"""Property suite for the fault-tolerant variants and the full registry.

Three invariants over random connected UDGs:

* every solver in the CLI registry — the paper algorithms, the
  baselines, the distributed renditions, and the new fault-tolerant
  variants — emits a set passing its structural validator;
* the kernelized solvers are bit-identical across the indexed / bitset
  / array kernels;
* a ``(2, m)`` output survives the death of any single backbone node:
  what remains is still a connected dominating set of the whole graph
  (the acceptance property of this PR, checked literally with
  :func:`repro.graphs.properties.survives_node_removal`).
"""

import inspect

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cds import mfold_2conn_cds, mfold_greedy_cds
from repro.cli import _solver_registry
from repro.graphs import (
    is_k_connected,
    is_m_fold_cds,
    random_connected_udg,
    survives_node_removal,
)
from repro.graphs.biconnectivity import is_biconnected


def udg_instances(min_n=2, max_n=16, density=0.8):
    """Strategy: small connected random UDGs (seeded, so shrinkable)."""
    return st.tuples(
        st.integers(min_value=min_n, max_value=max_n),
        st.integers(min_value=0, max_value=10_000),
    ).map(
        lambda t: random_connected_udg(
            t[0], side=max(1.0, density * t[0] ** 0.5), seed=t[1], max_attempts=500
        )[1]
    )


class TestRegistryValidity:
    @settings(max_examples=15, deadline=None)
    @given(udg_instances())
    def test_every_registry_solver_emits_valid_set(self, g):
        for name, solver in sorted(_solver_registry().items()):
            if name == "mfold-2conn" and len(g) >= 3 and not is_k_connected(g, 2):
                # no (2,m)-CDS exists; the solver must say so, not
                # return something broken
                with pytest.raises(ValueError):
                    solver(g)
                continue
            result = solver(g)
            assert result.is_valid(g), name
            if "m" in inspect.signature(solver).parameters:
                assert is_m_fold_cds(g, result.nodes, result.meta["m"]), name

    @settings(max_examples=10, deadline=None)
    @given(udg_instances(min_n=4))
    def test_kernelized_solvers_bit_identical(self, g):
        for name, solver in sorted(_solver_registry().items()):
            if "kernel" not in inspect.signature(solver).parameters:
                continue
            if name == "mfold-2conn" and len(g) >= 3 and not is_k_connected(g, 2):
                continue
            outputs = {
                kernel: solver(g, kernel=kernel)
                for kernel in ("indexed", "bitset", "array")
            }
            traces = {
                k: (r.dominators, r.connectors) for k, r in outputs.items()
            }
            assert traces["indexed"] == traces["bitset"] == traces["array"], name


class TestMfoldInvariants:
    @settings(max_examples=20, deadline=None)
    @given(udg_instances(), st.integers(min_value=1, max_value=4))
    def test_mfold_greedy_is_m_fold_cds(self, g, m):
        result = mfold_greedy_cds(g, m=m)
        assert result.is_valid(g)
        assert is_m_fold_cds(g, result.nodes, m)

    @settings(max_examples=20, deadline=None)
    @given(udg_instances())
    def test_m1_never_larger_than_m2(self, g):
        assert mfold_greedy_cds(g, m=1).size <= mfold_greedy_cds(g, m=2).size


class Test2ConnSurvivability:
    @settings(max_examples=15, deadline=None)
    @given(udg_instances(min_n=4, max_n=18, density=0.62))
    def test_survives_any_single_backbone_death(self, g):
        assume(is_k_connected(g, 2))
        result = mfold_2conn_cds(g, m=2)
        assert result.is_valid(g)
        assert is_m_fold_cds(g, result.nodes, 2)
        assert is_biconnected(g.subgraph(set(result.nodes)))
        # the acceptance criterion, stated literally: remove any one
        # backbone node and the rest still connectedly dominates G
        assert survives_node_removal(g, result.nodes, m=1)

    @settings(max_examples=15, deadline=None)
    @given(udg_instances(min_n=4, max_n=18, density=0.62), st.integers(2, 3))
    def test_augmentation_only_adds(self, g, m):
        assume(is_k_connected(g, 2))
        base = mfold_greedy_cds(g, m=m)
        hardened = mfold_2conn_cds(g, m=m)
        assert set(base.nodes) <= set(hardened.nodes)
        assert hardened.meta["augmentation_cost"] == hardened.size - base.size
