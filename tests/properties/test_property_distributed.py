"""Property-based tests for the distributed protocols.

Over randomized connected topologies (integer ids): leader = min id,
distributed BFS levels = centralized hop distances, the MIS election
equals centralized first-fit in rank order and costs exactly 2n
transmissions, and both pipelines end in valid CDSs.
"""

from hypothesis import given, settings, strategies as st

from repro.distributed import (
    build_bfs_tree,
    distributed_greedy_cds,
    distributed_waf_cds,
    elect_leader,
    elect_mis,
)
from repro.graphs import (
    Graph,
    bfs_tree,
    is_connected,
    is_maximal_independent_set,
)
from repro.mis import first_fit_mis_in_order


def connected_graphs():
    """Strategy: small connected integer-labeled graphs.

    Built from a random tree skeleton (guarantees connectivity) plus
    random extra edges.
    """

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=14))
        g = Graph(nodes=range(n))
        for v in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=v - 1))
            g.add_edge(v, parent)
        extra = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=10,
            )
        )
        for u, v in extra:
            if u != v:
                g.add_edge(u, v)
        return g

    return build()


class TestDistributedProperties:
    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_leader_is_min(self, g):
        leader, _ = elect_leader(g)
        assert leader == min(g.nodes())

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_bfs_levels_match_centralized(self, g):
        tree, metrics = build_bfs_tree(g, 0)
        assert tree.level == bfs_tree(g, 0).depth
        assert metrics.transmissions == len(g)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_mis_election_matches_rank_order_first_fit(self, g):
        tree, _ = build_bfs_tree(g, 0)
        mis, metrics = elect_mis(g, tree)
        assert is_maximal_independent_set(g, mis)
        expected = first_fit_mis_in_order(g, sorted(g.nodes(), key=tree.rank))
        assert sorted(mis) == sorted(expected)
        assert metrics.transmissions == 2 * len(g)

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_pipelines_valid(self, g):
        waf_result, _ = distributed_waf_cds(g)
        greedy_result, _ = distributed_greedy_cds(g)
        assert waf_result.is_valid(g)
        assert greedy_result.is_valid(g)

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_pipelines_share_phase_one(self, g):
        waf_result, _ = distributed_waf_cds(g)
        greedy_result, _ = distributed_greedy_cds(g)
        assert set(waf_result.dominators) == set(greedy_result.dominators)
