"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry import (
    Point,
    chord_length,
    circle_circle_intersection,
    convex_hull,
    diameter,
    greedy_independent_subset,
    is_independent,
    is_star,
    point_in_polygon,
    star_decomposition,
    is_nontrivial_star_decomposition,
)

# Coordinates are quantized to 6 decimals: the geometry predicates use an
# absolute tolerance (EPS = 1e-9), so inputs whose meaningful differences
# live below that scale (subnormals, 1e-39 offsets) are outside the
# library's documented precision contract.
coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 6))
points = st.builds(Point, coords, coords)


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-12)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9

    @given(points, points)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(points)
    def test_double_negation(self, p):
        assert -(-p) == p

    @given(points, st.floats(min_value=-6.28, max_value=6.28))
    def test_rotation_preserves_norm(self, p, angle):
        assert math.isclose(p.rotated(angle).norm(), p.norm(), abs_tol=1e-6)


class TestHullProperties:
    @given(st.lists(points, min_size=3, max_size=30))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        for p in pts:
            assert point_in_polygon(p, hull, tol=1e-6)

    @given(st.lists(points, min_size=1, max_size=30))
    def test_hull_subset_of_input(self, pts):
        assert set(convex_hull(pts)) <= set(pts)

    @given(st.lists(points, min_size=2, max_size=25))
    def test_diameter_attained_by_hull(self, pts):
        # diameter of hull == diameter of set
        from repro.geometry import max_pairwise_distance

        assert math.isclose(
            diameter(pts), max_pairwise_distance(list(set(pts))), abs_tol=1e-9
        )


class TestPackingProperties:
    @given(st.lists(points, min_size=0, max_size=40))
    def test_greedy_output_independent(self, pts):
        assert is_independent(greedy_independent_subset(pts))

    @given(st.lists(points, min_size=1, max_size=40))
    def test_greedy_output_maximal(self, pts):
        chosen = greedy_independent_subset(pts)
        chosen_set = set(chosen)
        for p in pts:
            if p not in chosen_set:
                assert not is_independent(chosen + [p])

    @given(st.lists(points, min_size=2, max_size=15))
    def test_independence_is_hereditary(self, pts):
        if is_independent(pts):
            assert is_independent(pts[1:])


class TestChordProperties:
    @given(st.floats(min_value=0.01, max_value=math.pi))
    def test_chord_below_arc_length(self, measure):
        assert chord_length(1.0, measure) <= measure + 1e-12

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.01, max_value=math.pi),
    )
    def test_chord_scales_linearly_with_radius(self, r, m):
        assert math.isclose(chord_length(r, m), r * chord_length(1.0, m), rel_tol=1e-9)


class TestCircleIntersectionProperties:
    @given(points, points, st.floats(min_value=0.2, max_value=3.0), st.floats(min_value=0.2, max_value=3.0))
    def test_intersections_on_both_circles(self, c1, c2, r1, r2):
        if c1.distance_to(c2) < 1e-6:
            return
        for p in circle_circle_intersection(c1, r1, c2, r2):
            assert math.isclose(p.distance_to(c1), r1, abs_tol=1e-6)
            assert math.isclose(p.distance_to(c2), r2, abs_tol=1e-6)


def connected_point_sets():
    """Strategy: connected planar sets grown by short attachments."""
    offsets = st.tuples(
        st.floats(min_value=-0.65, max_value=0.65),
        st.floats(min_value=-0.65, max_value=0.65),
    )
    return st.lists(offsets, min_size=1, max_size=14).map(_grow)


def _grow(offsets):
    pts = [Point(0.0, 0.0)]
    for i, (dx, dy) in enumerate(offsets):
        base = pts[i % len(pts)]
        cand = Point(base.x + dx, base.y + dy)
        if cand not in pts:
            pts.append(cand)
    return pts


class TestStarProperties:
    @settings(max_examples=60)
    @given(connected_point_sets())
    def test_lemma4_star_decomposition(self, pts):
        # Lemma 4 as a property: every connected set of >= 2 points has
        # a nontrivial star decomposition, and our construction finds it.
        if len(pts) < 2:
            return
        decomposition = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(decomposition, pts)

    @settings(max_examples=60)
    @given(connected_point_sets())
    def test_every_decomposition_part_is_star(self, pts):
        if len(pts) < 2:
            return
        for part in star_decomposition(pts):
            assert is_star(part)
            assert len(part) >= 2
