"""Property-based tests for dynamic CDS maintenance.

The invariant: after any legal sequence of joins, leaves and moves, the
maintained backbone is a valid CDS of the current topology.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cds import DynamicCDS
from repro.geometry import Point
from repro.graphs import random_connected_udg


@st.composite
def churn_scripts(draw):
    """A seeded starting instance plus a list of churn decisions."""
    seed = draw(st.integers(min_value=0, max_value=500))
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["join", "leave", "move"]),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=25,
        )
    )
    return seed, events


def apply_event(dynamic: DynamicCDS, kind: str, salt: int) -> None:
    rng = random.Random(salt)
    nodes = sorted(dynamic.graph.nodes())
    if kind == "leave" and len(nodes) > 4:
        try:
            dynamic.remove_node(rng.choice(nodes))
        except ValueError:
            pass  # would disconnect: the radio layer keeps the node
        return
    if kind == "move" and len(nodes) > 4:
        mover = rng.choice(nodes)
        anchor = rng.choice(nodes)
        new_neighbors = [anchor] + [
            v for v in dynamic.graph.neighbors(anchor) if v != mover
        ]
        try:
            dynamic.move_node(mover, [v for v in new_neighbors if v != mover])
        except ValueError:
            pass
        return
    # join
    base = rng.choice(nodes)
    new = Point(base.x + rng.uniform(-0.8, 0.8), base.y + rng.uniform(-0.8, 0.8))
    if new in dynamic.graph:
        return
    in_range = [v for v in nodes if v.distance_to(new) <= 1.0]
    if in_range:
        dynamic.add_node(new, in_range)


class TestMaintenanceInvariant:
    @settings(max_examples=25, deadline=None)
    @given(churn_scripts())
    def test_backbone_always_valid(self, script):
        seed, events = script
        _, graph = random_connected_udg(15, 3.2, seed=seed, max_attempts=500)
        dynamic = DynamicCDS(graph)
        for kind, salt in events:
            apply_event(dynamic, kind, salt)
            assert dynamic.is_valid()

    @settings(max_examples=15, deadline=None)
    @given(churn_scripts())
    def test_rebuild_always_safe(self, script):
        seed, events = script
        _, graph = random_connected_udg(12, 2.9, seed=seed, max_attempts=500)
        dynamic = DynamicCDS(graph)
        for i, (kind, salt) in enumerate(events):
            apply_event(dynamic, kind, salt)
            if i % 5 == 4:
                dynamic.rebuild()
            assert dynamic.is_valid()
