"""Property-based tests for persistence and energy accounting."""

from hypothesis import given, settings, strategies as st

from repro.energy import EnergyModel
from repro.geometry import Point
from repro.graphs import Graph
from repro.io import load_points, save_points

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.builds(Point, coords, coords), max_size=40)


class TestIOProperties:
    @settings(max_examples=40)
    @given(point_lists)
    def test_points_roundtrip_exactly(self, pts):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "pts.csv"
            save_points(pts, path)
            assert load_points(path) == pts

    @settings(max_examples=20)
    @given(point_lists)
    def test_csv_line_count(self, pts):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "pts.csv"
            save_points(pts, path)
            lines = path.read_text().strip().splitlines()
            assert len(lines) == len(pts) + 1  # header


def graphs_with_duty():
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=12))
        g = Graph(nodes=range(n))
        for v in range(1, n):
            g.add_edge(v, draw(st.integers(min_value=0, max_value=v - 1)))
        duty = draw(st.lists(st.integers(min_value=0, max_value=n - 1), max_size=8))
        epochs = draw(st.integers(min_value=0, max_value=10))
        return g, duty, epochs

    return build()


class TestEnergyProperties:
    @settings(max_examples=50)
    @given(graphs_with_duty())
    def test_total_energy_conservation(self, case):
        g, duty, epochs = case
        model = EnergyModel(g, initial=1000.0, relay_cost=3.0, idle_cost=1.0)
        start_total = sum(model.charge.values())
        duty_set = set(duty)
        for _ in range(epochs):
            model.spend_epoch(duty_set)
        spent = epochs * (len(g) * 1.0 + len(duty_set) * 3.0)
        assert sum(model.charge.values()) == start_total - spent

    @settings(max_examples=50)
    @given(graphs_with_duty())
    def test_charge_monotone_decreasing(self, case):
        g, duty, epochs = case
        model = EnergyModel(g, initial=1000.0)
        previous = dict(model.charge)
        for _ in range(epochs):
            model.spend_epoch(set(duty))
            assert all(model.charge[v] <= previous[v] for v in model.charge)
            previous = dict(model.charge)

    @settings(max_examples=30)
    @given(graphs_with_duty())
    def test_weights_positive_and_inverse_ordered(self, case):
        g, duty, epochs = case
        model = EnergyModel(g, initial=100.0, relay_cost=5.0)
        for _ in range(min(epochs, 3)):
            model.spend_epoch(set(duty))
        weights = model.weights()
        assert all(w > 0 for w in weights.values())
        nodes = list(g.nodes())
        for a in nodes:
            for b in nodes:
                if model.charge[a] > model.charge[b] > 0:
                    assert weights[a] <= weights[b]
