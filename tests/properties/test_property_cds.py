"""Property-based tests (hypothesis) for the CDS algorithms.

These are the paper's invariants stated as properties over randomly
generated connected UDGs: every algorithm returns a valid CDS, the
greedy trace always satisfies Lemma 9's floor, both paper algorithms
respect their ratio bounds against the exact optimum, and Corollary 7
holds for exact alpha/gamma_c.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import prefix_decomposition
from repro.cds import (
    connected_domination_number,
    gain_of,
    greedy_connector_cds,
    minimum_cds,
    waf_cds,
)
from repro.cds.bounds import (
    alpha_bound_this_paper,
    greedy_bound_this_paper,
    lemma9_min_gain,
    waf_bound_this_paper,
)
from repro.graphs import (
    is_connected_dominating_set,
    random_connected_udg,
)
from repro.mis import independence_number


def udg_instances():
    """Strategy: small connected random UDGs (seeded, so shrinkable)."""
    return st.tuples(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=10_000),
    ).map(
        lambda t: random_connected_udg(
            t[0], side=max(1.0, 0.8 * t[0] ** 0.5), seed=t[1], max_attempts=500
        )[1]
    )


class TestAlgorithmValidity:
    @settings(max_examples=30, deadline=None)
    @given(udg_instances())
    def test_waf_valid(self, g):
        assert waf_cds(g).is_valid(g)

    @settings(max_examples=30, deadline=None)
    @given(udg_instances())
    def test_greedy_valid(self, g):
        assert greedy_connector_cds(g).is_valid(g)

    @settings(max_examples=20, deadline=None)
    @given(udg_instances())
    def test_minimum_cds_valid_and_minimal(self, g):
        opt = minimum_cds(g)
        assert is_connected_dominating_set(g, opt)
        assert len(opt) <= waf_cds(g).size


class TestPaperBounds:
    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_theorem8(self, g):
        gamma_c = connected_domination_number(g)
        assert waf_cds(g).size <= float(waf_bound_this_paper(gamma_c))

    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_theorem10(self, g):
        gamma_c = connected_domination_number(g)
        assert greedy_connector_cds(g).size <= float(greedy_bound_this_paper(gamma_c))

    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_corollary7(self, g):
        alpha = independence_number(g)
        gamma_c = connected_domination_number(g)
        assert alpha <= float(alpha_bound_this_paper(gamma_c))

    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_lemma9_along_trace(self, g):
        result = greedy_connector_cds(g)
        gamma_c = connected_domination_number(g)
        q = result.meta["q_history"]
        for i, gain in enumerate(result.meta["gain_history"]):
            assert gain >= lemma9_min_gain(q[i], gamma_c)

    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_theorem10_prefix_caps(self, g):
        result = greedy_connector_cds(g)
        gamma_c = connected_domination_number(g)
        d = prefix_decomposition(result.meta["q_history"], gamma_c)
        assert all(check.holds for check in d.checks())


class TestGreedyMechanics:
    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_selected_connector_had_max_gain(self, g):
        result = greedy_connector_cds(g)
        included = set(result.dominators)
        for w, gain in zip(result.connectors, result.meta["gain_history"]):
            best = max(gain_of(g, included, x) for x in g.nodes() if x not in included)
            assert gain == best
            included.add(w)

    @settings(max_examples=25, deadline=None)
    @given(udg_instances())
    def test_phases_partition_result(self, g):
        for result in (waf_cds(g), greedy_connector_cds(g)):
            doms = set(result.dominators)
            conns = set(result.connectors)
            assert doms | conns == set(result.nodes)
            assert not doms & conns
