"""Property-based tests (hypothesis) for the graph substrate."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point
from repro.graphs import (
    Graph,
    UnionFind,
    bfs_tree,
    connected_components,
    is_connected,
    is_dominating_set,
    is_maximal_independent_set,
    unit_disk_graph,
    unit_disk_graph_naive,
)
from repro.mis import first_fit_mis_in_order

node_ids = st.integers(min_value=0, max_value=24)
edge_lists = st.lists(st.tuples(node_ids, node_ids), max_size=60).map(
    lambda pairs: [(u, v) for u, v in pairs if u != v]
)

coords = st.floats(min_value=0.0, max_value=6.0, allow_nan=False)
point_lists = st.lists(st.builds(Point, coords, coords), max_size=40, unique=True)


class TestGraphInvariants:
    @given(edge_lists)
    def test_handshake_lemma(self, edges):
        g = Graph(edges=edges)
        assert sum(g.degree(v) for v in g) == 2 * g.edge_count()

    @given(edge_lists)
    def test_adjacency_symmetric(self, edges):
        g = Graph(edges=edges)
        for u in g:
            for v in g.neighbors(u):
                assert g.has_edge(v, u)

    @given(edge_lists)
    def test_components_partition_nodes(self, edges):
        g = Graph(edges=edges)
        comps = connected_components(g)
        flat = [v for c in comps for v in c]
        assert sorted(flat) == sorted(g.nodes())
        assert len(flat) == len(set(flat))

    @given(edge_lists, node_ids)
    def test_subgraph_edges_subset(self, edges, k):
        g = Graph(edges=edges)
        keep = [v for v in g.nodes() if v <= k]
        sub = g.subgraph(keep)
        for u, v in sub.edges():
            assert g.has_edge(u, v)

    @given(edge_lists)
    def test_bfs_tree_depths_are_shortest_paths(self, edges):
        g = Graph(edges=edges)
        if len(g) == 0:
            return
        root = next(iter(g))
        tree = bfs_tree(g, root)
        # BFS depth of any node <= depth(parent) + 1 for every edge.
        for u, v in g.edges():
            if u in tree.depth and v in tree.depth:
                assert abs(tree.depth[u] - tree.depth[v]) <= 1


class TestUDGProperties:
    @settings(max_examples=40)
    @given(point_lists)
    def test_fast_equals_naive(self, pts):
        fast = unit_disk_graph(pts)
        slow = unit_disk_graph_naive(pts)
        assert {frozenset(e) for e in fast.edges()} == {
            frozenset(e) for e in slow.edges()
        }

    @settings(max_examples=40)
    @given(point_lists, st.floats(min_value=0.25, max_value=2.5, allow_nan=False))
    def test_fast_equals_naive_any_radius(self, pts, radius):
        # The bucket side tracks the radius, so agreement must hold for
        # non-unit radii too, not just the paper's normalized model.
        fast = unit_disk_graph(pts, radius=radius)
        slow = unit_disk_graph_naive(pts, radius=radius)
        assert {frozenset(e) for e in fast.edges()} == {
            frozenset(e) for e in slow.edges()
        }

    @settings(max_examples=40)
    @given(point_lists)
    def test_edges_match_distance_predicate(self, pts):
        g = unit_disk_graph(pts)
        for u, v in g.edges():
            assert u.distance_to(v) <= 1.0 + 1e-9


class TestMISProperties:
    @given(edge_lists)
    def test_first_fit_always_mis_on_any_order(self, edges):
        g = Graph(edges=edges)
        if len(g) == 0:
            return
        order = sorted(g.nodes())
        mis = first_fit_mis_in_order(g, order)
        assert is_maximal_independent_set(g, mis)

    @given(edge_lists)
    def test_mis_dominates(self, edges):
        g = Graph(edges=edges)
        if len(g) == 0:
            return
        mis = first_fit_mis_in_order(g, sorted(g.nodes()))
        assert is_dominating_set(g, mis)


class TestUnionFindProperties:
    @given(st.lists(st.tuples(node_ids, node_ids), max_size=50))
    def test_set_count_conservation(self, unions):
        uf = UnionFind(range(25))
        merges = 0
        for a, b in unions:
            if uf.union(a, b):
                merges += 1
        assert uf.set_count == 25 - merges

    @given(st.lists(st.tuples(node_ids, node_ids), max_size=50))
    def test_matches_component_structure(self, unions):
        uf = UnionFind(range(25))
        g = Graph(nodes=range(25))
        for a, b in unions:
            uf.union(a, b)
            if a != b:
                g.add_edge(a, b)
        comps = connected_components(g)
        assert len(comps) == uf.set_count
        for comp in comps:
            for v in comp[1:]:
                assert uf.connected(comp[0], v)
