"""Property-based tests for TDMA scheduling and traffic."""

import random

from hypothesis import given, settings, strategies as st

from repro.cds import greedy_connector_cds
from repro.distributed.traffic import run_traffic
from repro.experiments.instances import int_labeled
from repro.graphs import random_connected_udg
from repro.scheduling import (
    broadcast_schedule_length,
    distance2_coloring,
    is_collision_free,
)


def instances():
    return st.tuples(
        st.integers(min_value=5, max_value=18),
        st.integers(min_value=0, max_value=2000),
    ).map(
        lambda t: int_labeled(
            random_connected_udg(
                t[0], side=max(1.0, 0.8 * t[0] ** 0.5), seed=t[1], max_attempts=500
            )[1]
        )
    )


class TestSchedulingProperties:
    @settings(max_examples=25, deadline=None)
    @given(instances())
    def test_coloring_always_collision_free(self, g):
        backbone = greedy_connector_cds(g).nodes
        slots = distance2_coloring(g, backbone)
        assert is_collision_free(g, slots)

    @settings(max_examples=25, deadline=None)
    @given(instances())
    def test_broadcast_reaches_all_within_frames_times_depth(self, g):
        backbone = greedy_connector_cds(g).nodes
        source = min(g.nodes())
        slots = distance2_coloring(g, set(backbone) | {source})
        frame = max(slots.values()) + 1
        latency = broadcast_schedule_length(g, backbone, source, slots=slots)
        # Each hop costs at most one frame; depth <= n.
        assert latency <= frame * (len(g) + 1)

    @settings(max_examples=20, deadline=None)
    @given(instances(), st.integers(min_value=0, max_value=100))
    def test_traffic_always_delivers(self, g, flow_seed):
        backbone = greedy_connector_cds(g).nodes
        rng = random.Random(flow_seed)
        nodes = sorted(g.nodes())
        if len(nodes) < 2:
            return
        flows = [tuple(rng.sample(nodes, 2)) for _ in range(6)]
        stats = run_traffic(g, backbone, flows)
        assert stats.all_delivered

    @settings(max_examples=20, deadline=None)
    @given(instances())
    def test_slot_count_at_most_backbone_size(self, g):
        backbone = greedy_connector_cds(g).nodes
        slots = distance2_coloring(g, backbone)
        assert max(slots.values()) + 1 <= len(backbone)
