"""Unit tests for repro.geometry.disks."""

import math

import pytest

from repro.geometry import (
    Disk,
    Point,
    almost_equal,
    circle_circle_intersection,
    disk_union_area,
    in_disk,
    in_neighborhood,
    points_in_neighborhood,
    unit_disk,
)


class TestDisk:
    def test_contains_closed(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.contains(Point(1, 0))
        assert d.contains(Point(0.5, 0.5))
        assert not d.contains(Point(1.1, 0))

    def test_contains_strict(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.contains_strict(Point(0.5, 0))
        assert not d.contains_strict(Point(1.0, 0))

    def test_boundary_point(self):
        d = Disk(Point(1, 1), 2.0)
        p = d.boundary_point(0.0)
        assert almost_equal(p, Point(3, 1))

    def test_area(self):
        assert math.isclose(Disk(Point(0, 0), 2.0).area(), 4 * math.pi)

    def test_unit_disk_notation(self):
        d = unit_disk(Point(3, 4))
        assert d.radius == 1.0 and d.center == Point(3, 4)


class TestNeighborhood:
    def test_in_disk(self):
        assert in_disk(Point(0.5, 0), Point(0, 0))
        assert not in_disk(Point(1.5, 0), Point(0, 0))

    def test_in_neighborhood(self):
        centers = [Point(0, 0), Point(3, 0)]
        assert in_neighborhood(Point(0.9, 0), centers)
        assert in_neighborhood(Point(3.5, 0), centers)
        assert not in_neighborhood(Point(1.6, 0), centers)

    def test_points_in_neighborhood_is_I_of_U(self):
        independent = [Point(0.5, 0), Point(5, 5), Point(2.8, 0)]
        centers = [Point(0, 0), Point(3, 0)]
        inside = points_in_neighborhood(independent, centers)
        assert inside == [Point(0.5, 0), Point(2.8, 0)]


class TestCircleIntersection:
    def test_two_points(self):
        pts = circle_circle_intersection(Point(0, 0), 1.0, Point(1, 0), 1.0)
        assert len(pts) == 2
        for p in pts:
            assert math.isclose(p.norm(), 1.0)
            assert math.isclose(p.distance_to(Point(1, 0)), 1.0)

    def test_first_point_is_left_of_directed_line(self):
        # Matches the appendix's convention: 'a' lies above ou.
        a, a_prime = circle_circle_intersection(Point(0, 0), 1.0, Point(1, 0), 1.0)
        assert a.y > 0 > a_prime.y

    def test_tangent_circles_one_point(self):
        pts = circle_circle_intersection(Point(0, 0), 1.0, Point(2, 0), 1.0)
        assert len(pts) == 1
        assert almost_equal(pts[0], Point(1, 0), tol=1e-9)

    def test_disjoint_circles_no_point(self):
        assert circle_circle_intersection(Point(0, 0), 1.0, Point(3, 0), 1.0) == []

    def test_nested_circles_no_point(self):
        assert circle_circle_intersection(Point(0, 0), 2.0, Point(0.1, 0), 0.5) == []

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            circle_circle_intersection(Point(0, 0), 1.0, Point(0, 0), 1.0)

    def test_internally_tangent(self):
        pts = circle_circle_intersection(Point(0, 0), 2.0, Point(1, 0), 1.0)
        assert len(pts) == 1
        assert almost_equal(pts[0], Point(2, 0), tol=1e-9)


class TestDiskUnionArea:
    def test_single_disk(self):
        area = disk_union_area([Point(0, 0)], radius=1.0, resolution=400)
        assert math.isclose(area, math.pi, rel_tol=0.02)

    def test_disjoint_disks_additive(self):
        area = disk_union_area([Point(0, 0), Point(10, 0)], radius=1.0, resolution=600)
        assert math.isclose(area, 2 * math.pi, rel_tol=0.03)

    def test_coincident_disks_not_double_counted(self):
        one = disk_union_area([Point(0, 0)], radius=1.0, resolution=400)
        two = disk_union_area([Point(0, 0), Point(0.01, 0)], radius=1.0, resolution=400)
        assert two < one * 1.05

    def test_empty(self):
        assert disk_union_area([], radius=1.0) == 0.0

    def test_lens_overlap_formula(self):
        # Two unit disks at distance 1: union area = 2*pi - 2 lens, with
        # lens area = 2*pi/3 - sqrt(3)/2.
        lens = 2 * math.pi / 3 - math.sqrt(3) / 2
        expected = 2 * math.pi - lens
        area = disk_union_area([Point(0, 0), Point(1, 0)], radius=1.0, resolution=700)
        assert math.isclose(area, expected, rel_tol=0.02)
