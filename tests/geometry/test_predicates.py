"""Unit tests for repro.geometry.predicates."""

import math

import pytest

from repro.geometry import (
    Point,
    angle_at,
    angle_between,
    angular_separations,
    convex_hull,
    diameter,
    is_ccw,
    is_collinear,
    is_convex_polygon,
    orientation,
    point_in_polygon,
    polygon_area,
)


class TestOrientation:
    def test_ccw_positive(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) > 0

    def test_cw_negative(self):
        assert orientation(Point(0, 0), Point(0, 1), Point(1, 0)) < 0

    def test_collinear_zero(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_is_ccw(self):
        assert is_ccw(Point(0, 0), Point(1, 0), Point(1, 1))
        assert not is_ccw(Point(0, 0), Point(1, 1), Point(1, 0))

    def test_is_collinear(self):
        assert is_collinear(Point(0, 0), Point(1, 2), Point(2, 4))
        assert not is_collinear(Point(0, 0), Point(1, 2), Point(2, 5))


class TestAngles:
    def test_right_angle(self):
        a = angle_at(Point(0, 0), Point(1, 0), Point(0, 1))
        assert math.isclose(a, math.pi / 2)

    def test_straight_angle(self):
        a = angle_at(Point(0, 0), Point(1, 0), Point(-1, 0))
        assert math.isclose(a, math.pi)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            angle_at(Point(0, 0), Point(0, 0), Point(1, 0))

    def test_angle_between_vectors(self):
        assert math.isclose(angle_between(Point(1, 0), Point(0, 2)), math.pi / 2)

    def test_angular_separations_sum_to_two_pi(self):
        center = Point(0, 0)
        pts = [Point.polar(1.0, t) for t in (0.1, 1.0, 2.5, 4.0)]
        gaps = angular_separations(center, pts)
        assert math.isclose(sum(gaps), 2 * math.pi)

    def test_angular_separations_few_points(self):
        assert angular_separations(Point(0, 0), [Point(1, 0)]) == []

    def test_angular_separations_values(self):
        center = Point(0, 0)
        pts = [Point.polar(1.0, t) for t in (0.0, math.pi / 2, math.pi)]
        gaps = sorted(angular_separations(center, pts))
        assert math.isclose(gaps[0], math.pi / 2)
        assert math.isclose(gaps[2], math.pi)

    def test_independent_points_in_disk_have_wide_separations(self):
        # The Lemma 2 proof's observation: independent points within a
        # unit disk of the center have angular gaps > 60 degrees.
        from repro.geometry import is_independent

        center = Point(0, 0)
        pts = [Point.polar(0.99, t) for t in (0.0, 1.3, 2.6, 3.9, 5.2)]
        assert is_independent(pts)
        gaps = angular_separations(center, pts)
        assert all(g > math.pi / 3 for g in gaps)


class TestConvexHull:
    def test_square_hull(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        inner = [Point(0.5, 0.5)]
        hull = convex_hull(square + inner)
        assert set(hull) == set(square)

    def test_hull_is_ccw(self):
        hull = convex_hull(
            [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2), Point(1, 1)]
        )
        area2 = sum(
            hull[i].cross(hull[(i + 1) % len(hull)]) for i in range(len(hull))
        )
        assert area2 > 0

    def test_collinear_input(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        hull = convex_hull(pts)
        assert set(hull) == {Point(0, 0), Point(2, 0)}

    def test_duplicates_removed(self):
        hull = convex_hull([Point(0, 0), Point(0, 0), Point(1, 0)])
        assert len(hull) == 2

    def test_is_convex_polygon(self):
        assert is_convex_polygon(
            [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        )
        assert not is_convex_polygon(
            [Point(0, 0), Point(2, 0), Point(1, 0.2), Point(0, 2)]
        )

    def test_is_convex_polygon_degenerate(self):
        assert not is_convex_polygon([Point(0, 0), Point(1, 0)])


class TestDiameter:
    def test_diameter_square(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert math.isclose(diameter(pts), math.sqrt(2))

    def test_diameter_large_set_uses_hull(self):
        pts = [Point.polar(1.0, 2 * math.pi * k / 200) for k in range(200)]
        assert math.isclose(diameter(pts), 2.0, rel_tol=1e-3)

    def test_diameter_singleton(self):
        assert diameter([Point(0, 0)]) == 0.0


class TestPolygon:
    def test_area_unit_square(self):
        sq = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert math.isclose(polygon_area(sq), 1.0)

    def test_area_orientation_invariant(self):
        sq = [Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)]
        assert math.isclose(polygon_area(sq), 1.0)

    def test_area_degenerate(self):
        assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0

    def test_point_in_polygon_interior(self):
        sq = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert point_in_polygon(Point(1, 1), sq)

    def test_point_in_polygon_exterior(self):
        sq = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert not point_in_polygon(Point(3, 1), sq)

    def test_point_on_boundary_counts(self):
        sq = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert point_in_polygon(Point(1, 0), sq)

    def test_point_in_polygon_degenerate(self):
        assert not point_in_polygon(Point(0, 0), [Point(0, 0), Point(1, 0)])
