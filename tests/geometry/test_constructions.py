"""Unit tests for the Figure 1/2 tightness constructions."""

import pytest

from repro.geometry import (
    Point,
    figure1_three_star,
    figure1_two_star,
    figure2_linear,
    in_neighborhood,
    is_independent,
    is_star,
    one_star_packing,
    phi,
)


def assert_witness(centers, witness, expected):
    assert len(witness) == expected
    assert is_independent(witness)
    for p in witness:
        assert in_neighborhood(p, centers)


class TestOneStarPacking:
    def test_achieves_phi1(self):
        centers, witness = one_star_packing()
        assert_witness(centers, witness, phi(1))
        assert len(centers) == 1


class TestFigure1TwoStar:
    def test_achieves_phi2(self):
        centers, witness = figure1_two_star()
        assert_witness(centers, witness, phi(2))

    def test_is_a_two_star(self):
        centers, _ = figure1_two_star()
        assert len(centers) == 2
        assert is_star(centers)

    def test_split_matches_paper(self):
        # I0 around o (4 points) and I1 on the boundary of D_{u1} (4 points).
        (o, u1), witness = figure1_two_star()
        i0 = [p for p in witness if p.distance_to(o) <= 1.0 + 1e-9]
        i1 = [p for p in witness if abs(p.distance_to(u1) - 1.0) < 1e-9]
        assert len(i0) == 4
        assert len(i1) == 4

    def test_bad_delta_rejected(self):
        with pytest.raises(ValueError):
            figure1_two_star(eps=1e-2, delta=1e-2)


class TestFigure1ThreeStar:
    def test_achieves_phi3(self):
        centers, witness = figure1_three_star()
        assert_witness(centers, witness, phi(3))

    def test_star_layout_matches_paper(self):
        (o, u1, u2), _ = figure1_three_star()
        assert o == Point(0.0, 0.0)
        assert u1 == Point(1.0, 0.0)
        assert u2 == Point(-1.0, 0.0)
        assert is_star([o, u1, u2])


class TestFigure2Linear:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 9, 10, 15])
    def test_achieves_three_n_plus_three(self, n):
        centers, witness = figure2_linear(n)
        assert_witness(centers, witness, 3 * (n + 1))

    def test_centers_are_unit_chain(self):
        centers, _ = figure2_linear(5)
        assert centers == [Point(float(i), 0.0) for i in range(5)]

    def test_even_and_odd_parities(self):
        # The paper shows (a) even, (b) odd; both must validate.
        for n in (4, 5):
            centers, witness = figure2_linear(n)
            assert is_independent(witness)

    def test_below_minimum_raises(self):
        with pytest.raises(ValueError):
            figure2_linear(2)

    def test_bad_eps_raises(self):
        with pytest.raises(ValueError):
            figure2_linear(4, eps=0.5)

    def test_bad_delta_raises(self):
        with pytest.raises(ValueError):
            figure2_linear(4, eps=1e-2, delta=1e-3)

    def test_stays_below_theorem6(self):
        # 3(n+1) <= 11n/3 + 1 for n >= 3 — the conjecture gap.
        for n in range(3, 20):
            assert 3 * (n + 1) <= 11 * n / 3 + 1

    def test_n3_matches_three_star_up_to_translation(self):
        chain_centers, chain_witness = figure2_linear(3)
        star_centers_, star_witness = figure1_three_star()
        shift = Point(-1.0, 0.0)
        assert {c + shift for c in chain_centers} == set(star_centers_)
        assert {p + shift for p in chain_witness} == set(star_witness)
