"""Unit tests for repro.geometry.packing."""

import math

import pytest

from repro.geometry import (
    Point,
    WEGNER_RADIUS2_CAPACITY,
    disk_candidates,
    greedy_independent_subset,
    grid_candidates,
    independence_violations,
    is_independent,
    max_independent_subset,
    max_independent_subset_size,
    neighborhood_candidates,
    phi,
)


class TestIsIndependent:
    def test_far_points(self):
        assert is_independent([Point(0, 0), Point(2, 0), Point(0, 2)])

    def test_touching_points_not_independent(self):
        # Distance exactly 1 is NOT independent (strictly greater than).
        assert not is_independent([Point(0, 0), Point(1, 0)])

    def test_just_over_one(self):
        assert is_independent([Point(0, 0), Point(1.001, 0)])

    def test_empty_and_singleton(self):
        assert is_independent([])
        assert is_independent([Point(0, 0)])

    def test_violations_report_pairs(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(3, 3)]
        v = independence_violations(pts)
        assert len(v) == 1
        i, j, d = v[0]
        assert (i, j) == (0, 1)
        assert math.isclose(d, 0.5)


class TestPhi:
    def test_values(self):
        assert phi(1) == 5
        assert phi(2) == 8
        assert phi(3) == 12
        assert phi(4) == 15
        assert phi(5) == 18
        assert phi(6) == 21
        assert phi(7) == 21  # capped by Wegner
        assert phi(100) == 21

    def test_bound_eleven_thirds(self):
        # The paper: phi_n <= 11n/3 + 1 for n >= 2.
        for n in range(2, 30):
            assert phi(n) <= 11 * n / 3 + 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            phi(0)


class TestGreedyPacking:
    def test_greedy_is_independent(self):
        candidates = grid_candidates(0, 3, 0, 3, 0.3)
        chosen = greedy_independent_subset(candidates)
        assert is_independent(chosen)

    def test_greedy_is_maximal(self):
        candidates = grid_candidates(0, 3, 0, 3, 0.5)
        chosen = greedy_independent_subset(candidates)
        chosen_set = set(chosen)
        for c in candidates:
            if c in chosen_set:
                continue
            assert not is_independent(list(chosen) + [c])

    def test_key_changes_order(self):
        candidates = grid_candidates(0, 2, 0, 2, 0.4)
        a = greedy_independent_subset(candidates)
        b = greedy_independent_subset(candidates, key=lambda p: (-p.x, -p.y))
        assert a != b  # different scan corners give different packings


class TestExactPacking:
    def test_exact_at_least_greedy(self):
        candidates = disk_candidates(Point(0, 0), 1.0, 0.45)
        greedy = greedy_independent_subset(candidates)
        exact = max_independent_subset(candidates)
        assert len(exact) >= len(greedy)
        assert is_independent(exact)

    def test_exact_unit_disk_capacity_five(self):
        # |I(u)| <= 5 (the paper calls it trivial) — verify on a fine
        # candidate grid *strictly inside* the disk.
        candidates = [
            p for p in disk_candidates(Point(0, 0), 1.0, 0.24)
        ]
        assert max_independent_subset_size(candidates) <= 5

    def test_exact_finds_pentagon(self):
        # Five on-circle points at 72-degree spacing are achievable.
        pts = [Point.polar(1.0, 2 * math.pi * k / 5) for k in range(5)]
        filler = disk_candidates(Point(0, 0), 1.0, 0.7)
        assert max_independent_subset_size(pts + filler) == 5

    def test_limit_short_circuits(self):
        pts = [Point(0, 0), Point(2, 0), Point(4, 0), Point(6, 0)]
        got = max_independent_subset(pts, limit=2)
        assert len(got) >= 2


class TestCandidateGenerators:
    def test_grid_candidates_bounds(self):
        pts = grid_candidates(0, 1, 0, 2, 0.5)
        assert all(0 <= p.x <= 1 and 0 <= p.y <= 2 for p in pts)
        assert len(pts) == 3 * 5

    def test_grid_candidates_bad_step(self):
        with pytest.raises(ValueError):
            grid_candidates(0, 1, 0, 1, 0)

    def test_disk_candidates_inside(self):
        pts = disk_candidates(Point(1, 1), 0.8, 0.2)
        assert all(p.distance_to(Point(1, 1)) <= 0.8 + 1e-9 for p in pts)
        assert pts

    def test_neighborhood_candidates_inside(self):
        centers = [Point(0, 0), Point(2, 0)]
        pts = neighborhood_candidates(centers, 0.3)
        from repro.geometry import in_neighborhood

        assert all(in_neighborhood(p, centers) for p in pts)
        assert pts

    def test_neighborhood_candidates_empty_centers(self):
        assert neighborhood_candidates([], 0.3) == []


class TestWegner:
    def test_capacity_constant(self):
        assert WEGNER_RADIUS2_CAPACITY == 21

    def test_grid_packings_respect_wegner(self):
        # Points at pairwise distance > 1 in a radius-2 disk: must be
        # <= 21 (Wegner allows >= 1, so strict independence is a subset).
        candidates = disk_candidates(Point(0, 0), 2.0, 0.27)
        packing = greedy_independent_subset(candidates)
        assert len(packing) <= WEGNER_RADIUS2_CAPACITY
