"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry import (
    EPS,
    ORIGIN,
    Point,
    almost_equal,
    centroid,
    distance,
    distance_squared,
    max_pairwise_distance,
    midpoint,
    min_pairwise_distance,
    pairwise_distances,
)


class TestPointArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_neg(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_scalar_mul_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_truediv(self):
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_iter_unpacks(self):
        x, y = Point(5, 7)
        assert (x, y) == (5, 7)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Point(0, 0): "origin"}
        assert d[Point(0.0, 0.0)] == "origin"

    def test_ordering_is_lexicographic(self):
        assert Point(0, 5) < Point(1, 0)
        assert Point(1, 0) < Point(1, 1)

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 3  # type: ignore[misc]


class TestPointMemoryLayout:
    """``__slots__`` regression guard: Points are allocated by the
    million in UDG deployments, so the layout (no per-instance
    ``__dict__``, cached hash) must not silently regress."""

    def test_no_instance_dict(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.__dict__  # noqa: B018

    def test_unknown_attribute_rejected(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.z = 3  # type: ignore[attr-defined]

    def test_hash_equals_value_hash(self):
        # Equal points (even fresh instances) must collide exactly.
        assert hash(Point(1.5, -2.0)) == hash(Point(1.5, -2.0))

    def test_hash_stable_across_reads(self):
        p = Point(0.1, 0.2)
        assert hash(p) == hash(p)

    def test_pickle_roundtrip(self):
        import pickle

        p = Point(3.25, -1.5)
        q = pickle.loads(pickle.dumps(p))
        assert q == p
        assert hash(q) == hash(p)
        assert q.distance_to(Point(3.25, 0.5)) == 2.0

    def test_deepcopy_roundtrip(self):
        import copy

        p = Point(1.0, 2.0)
        q = copy.deepcopy(p)
        assert q == p and hash(q) == hash(p)

    def test_equality_and_order_semantics_preserved(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert Point(1, 2) != Point(2, 1)
        assert Point(1, 2) <= Point(1, 2) < Point(1, 3)
        assert Point(2, 0) > Point(1, 9) >= Point(1, 9)


class TestPointMetrics:
    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_cross_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1

    def test_norm(self):
        assert Point(3, 4).norm() == 5

    def test_norm_squared(self):
        assert Point(3, 4).norm_squared() == 25

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5

    def test_normalized(self):
        n = Point(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ORIGIN.normalized()

    def test_perpendicular_is_ccw_rotation(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_perpendicular_preserves_norm(self):
        p = Point(3, 4)
        assert math.isclose(p.perpendicular().norm(), p.norm())

    def test_rotated_quarter_turn(self):
        r = Point(1, 0).rotated(math.pi / 2)
        assert almost_equal(r, Point(0, 1), tol=1e-12)

    def test_rotated_about_center(self):
        r = Point(2, 0).rotated(math.pi, about=Point(1, 0))
        assert almost_equal(r, Point(0, 0), tol=1e-12)

    def test_angle(self):
        assert math.isclose(Point(0, 1).angle(), math.pi / 2)

    def test_angle_to(self):
        assert math.isclose(Point(0, 0).angle_to(Point(1, 1)), math.pi / 4)

    def test_polar_roundtrip(self):
        p = Point.polar(2.0, math.pi / 3)
        assert math.isclose(p.norm(), 2.0)
        assert math.isclose(p.angle(), math.pi / 3)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestModuleHelpers:
    def test_distance(self):
        assert distance(Point(0, 0), Point(0, 2)) == 2

    def test_distance_squared(self):
        assert distance_squared(Point(0, 0), Point(3, 4)) == 25

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert almost_equal(c, Point(1, 1))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_pairwise_distances_count(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        assert len(list(pairwise_distances(pts))) == 3

    def test_min_pairwise_distance(self):
        pts = [Point(0, 0), Point(1, 0), Point(5, 0)]
        assert min_pairwise_distance(pts) == 1

    def test_min_pairwise_distance_degenerate(self):
        assert min_pairwise_distance([Point(0, 0)]) == math.inf

    def test_max_pairwise_distance(self):
        pts = [Point(0, 0), Point(1, 0), Point(5, 0)]
        assert max_pairwise_distance(pts) == 5

    def test_max_pairwise_distance_degenerate(self):
        assert max_pairwise_distance([]) == 0.0

    def test_almost_equal_tolerance(self):
        assert almost_equal(Point(0, 0), Point(EPS / 2, 0))
        assert not almost_equal(Point(0, 0), Point(1e-3, 0))
