"""Numerical verification of the appendix lemmas (Figures 3-9).

The paper omits the proofs of Lemmas 11-13 for space; these tests
verify the *statements* over randomized configurations — hundreds of
sampled instances each, zero counterexamples expected.
"""

import math
import random

import pytest

from repro.geometry import Point, diameter
from repro.geometry.lemma_checks import (
    lemma11_angle_sum,
    lemma11_holds,
    lemma12_configuration,
    lemma13_angle_sum,
)


class TestLemma11:
    def _random_config(self, rng):
        """A random convex quadrilateral o,u,p,v with |ov| = |up|."""
        o = Point(0.0, 0.0)
        u = Point(rng.uniform(0.3, 1.5), 0.0)
        r = rng.uniform(0.4, 1.5)
        # v above o, p above u, equal side lengths.
        theta_v = rng.uniform(math.radians(50), math.radians(130))
        theta_p = rng.uniform(math.radians(50), math.radians(130))
        v = o + Point.polar(r, theta_v)
        p = u + Point.polar(r, theta_p)
        return o, u, p, v

    def test_random_configurations(self):
        rng = random.Random(3)
        checked = 0
        for _ in range(600):
            o, u, p, v = self._random_config(rng)
            try:
                ok = lemma11_holds(o, u, p, v)
            except ValueError:
                continue  # non-convex sample; lemma says nothing
            # Skip knife-edge cases where both sides sit on the boundary.
            angle_sum = lemma11_angle_sum(o, u, p, v)
            if abs(angle_sum - math.pi) < 1e-3:
                continue
            if abs(v.distance_to(p) - o.distance_to(u)) < 1e-3:
                continue
            assert ok, (o, u, p, v)
            checked += 1
        assert checked > 200  # the sampler produces plenty of valid cases

    def test_square_boundary_case(self):
        # A square: |vp| = |ou| and the angle sum is exactly 180.
        o, u = Point(0, 0), Point(1, 0)
        v, p = Point(0, 1), Point(1, 1)
        assert math.isclose(lemma11_angle_sum(o, u, p, v), math.pi)
        assert lemma11_holds(o, u, p, v)

    def test_requires_equal_sides(self):
        with pytest.raises(ValueError):
            lemma11_holds(Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 1))

    def test_requires_convexity(self):
        # A dart (reflex at p-ish) with equal sides should be rejected.
        o, u = Point(0, 0), Point(1, 0)
        v = Point(0, 1)
        p = Point(0.5, 0.2) + (Point(1, 0) - Point(0.5, 0.2))  # contrived
        with pytest.raises(ValueError):
            lemma11_holds(o, u, Point(0.5, 0.1), v)


class TestLemma12:
    def test_diameter_is_one_over_samples(self):
        rng = random.Random(4)
        checked = 0
        for _ in range(400):
            o = Point(0.0, 0.0)
            u = Point(rng.uniform(0.2, 1.0), 0.0)
            # p on the unit circle around u, in the upper half toward a.
            theta = rng.uniform(math.radians(10), math.radians(170))
            p = u + Point.polar(1.0, theta)
            config = lemma12_configuration(o, u, p)
            if config is None:
                continue
            d = diameter(config)
            assert d <= 1.0 + 1e-6, (o, u, p, d)
            # The lemma says exactly one: some pair attains it.
            assert d >= 1.0 - 1e-6
            checked += 1
        assert checked > 50

    def test_preconditions_rejected(self):
        # |op| < 1 violates the lemma's precondition.
        o, u = Point(0.0, 0.0), Point(0.5, 0.0)
        p = u + Point.polar(1.0, math.radians(178))  # lands close to o side
        config = lemma12_configuration(o, u, p)
        if config is not None:
            # If accepted, the precondition |ap| <= 1 <= |op| held after all.
            assert o.distance_to(p) >= 1.0 - 1e-9


class TestLemma13:
    def test_angle_sum_at_least_150_degrees(self):
        rng = random.Random(5)
        checked = 0
        for _ in range(600):
            o = Point(0.0, 0.0)
            u = Point(rng.uniform(0.15, 1.0), 0.0)
            v = Point.polar(rng.uniform(0.0, 1.0), rng.uniform(0.0, math.pi))
            if v.distance_to(u) <= 1.0:  # must be outside D_u
                continue
            total = lemma13_angle_sum(o, u, v)
            if total is None:
                continue
            assert total >= math.radians(150) - 1e-6, (o, u, v, math.degrees(total))
            checked += 1
        assert checked > 50

    def test_degenerate_inputs_return_none(self):
        # v inside D_u: not a Lemma 13 configuration.
        assert lemma13_angle_sum(Point(0, 0), Point(0.5, 0), Point(0.6, 0)) is None
        # |ou| > 1:
        assert lemma13_angle_sum(Point(0, 0), Point(1.5, 0), Point(0, 0.9)) is None
