"""Unit tests for repro.geometry.hexagonal."""

import math

import pytest

from repro.geometry import (
    FEJES_TOTH_DENSITY,
    Point,
    hexagonal_lattice,
    hexagonal_points_in_disk,
    hexagonal_points_in_neighborhood,
    is_independent,
    min_pairwise_distance,
)


class TestLattice:
    def test_count(self):
        assert len(hexagonal_lattice(1.0, 3, 4)) == 12

    def test_nearest_neighbor_distance(self):
        pts = hexagonal_lattice(1.0, 5, 5)
        assert math.isclose(min_pairwise_distance(pts), 1.0)

    def test_spacing_scales(self):
        pts = hexagonal_lattice(2.5, 4, 4)
        assert math.isclose(min_pairwise_distance(pts), 2.5)

    def test_independent_when_spacing_above_one(self):
        pts = hexagonal_lattice(1.01, 4, 4)
        assert is_independent(pts)

    def test_bad_spacing(self):
        with pytest.raises(ValueError):
            hexagonal_lattice(0.0, 2, 2)

    def test_density_constant(self):
        assert math.isclose(FEJES_TOTH_DENSITY, math.pi / math.sqrt(12))


class TestDiskRestriction:
    def test_wegner_witness_19(self):
        # Center + ring of 6 at distance 1 + 6 at sqrt(3) + 6 at 2:
        # the classic 19-point witness for the radius-2 disk (>= 1 spacing).
        pts = hexagonal_points_in_disk(Point(0, 0), 2.0, 1.0)
        assert len(pts) == 19

    def test_strictly_independent_variant_loses_outer_ring(self):
        pts = hexagonal_points_in_disk(Point(0, 0), 2.0, 1.0001)
        assert len(pts) == 13
        assert is_independent(pts)

    def test_all_inside(self):
        pts = hexagonal_points_in_disk(Point(3, -2), 1.7, 1.0)
        assert all(p.distance_to(Point(3, -2)) <= 1.7 + 1e-9 for p in pts)

    def test_center_is_hit(self):
        pts = hexagonal_points_in_disk(Point(0.3, 0.7), 1.0, 1.0)
        assert any(p.distance_to(Point(0.3, 0.7)) < 1e-9 for p in pts)


class TestNeighborhoodRestriction:
    def test_all_inside_neighborhood(self):
        from repro.geometry import in_neighborhood

        centers = [Point(0, 0), Point(1, 0), Point(2, 0)]
        pts = hexagonal_points_in_neighborhood(centers, 1.05)
        assert pts
        assert all(in_neighborhood(p, centers) for p in pts)

    def test_empty_centers(self):
        assert hexagonal_points_in_neighborhood([], 1.05) == []

    def test_packing_respects_theorem6(self):
        centers = [Point(float(i), 0.0) for i in range(6)]
        pts = hexagonal_points_in_neighborhood(centers, 1.01)
        assert is_independent(pts)
        assert len(pts) <= 11 * len(centers) / 3 + 1
