"""Unit tests for repro.geometry.voronoi (Section V machinery)."""

import math

import pytest

from repro.geometry import (
    HEXAGON_SIDE,
    Point,
    area_argument_bound,
    hexagon_area,
    voronoi_cell_areas,
)


class TestHexagon:
    def test_side_constant(self):
        assert math.isclose(HEXAGON_SIDE, 1 / math.sqrt(3))

    def test_default_area_is_sqrt3_over_2(self):
        assert math.isclose(hexagon_area(), math.sqrt(3) / 2)

    def test_area_scales_quadratically(self):
        assert math.isclose(hexagon_area(2.0), 4 * hexagon_area(1.0))


class TestVoronoiCellAreas:
    def test_single_site_gets_whole_region(self):
        areas = voronoi_cell_areas(
            [Point(0, 0)], [Point(0, 0)], region_radius=1.0, resolution=200
        )
        assert len(areas) == 1
        assert math.isclose(areas[0], math.pi, rel_tol=0.03)

    def test_two_symmetric_sites_split_evenly(self):
        areas = voronoi_cell_areas(
            [Point(-0.5, 0), Point(0.5, 0)],
            [Point(0, 0)],
            region_radius=1.5,
            resolution=300,
        )
        assert math.isclose(areas[0], areas[1], rel_tol=0.03)

    def test_areas_tile_the_region(self):
        sites = [Point(-0.6, 0), Point(0.6, 0), Point(0, 0.8)]
        areas = voronoi_cell_areas(sites, [Point(0, 0)], 1.5, resolution=300)
        total = sum(areas)
        assert math.isclose(total, math.pi * 1.5**2, rel_tol=0.03)

    def test_empty_sites(self):
        assert voronoi_cell_areas([], [Point(0, 0)]) == []

    def test_empty_region(self):
        assert voronoi_cell_areas([Point(0, 0)], []) == [0.0]

    def test_far_site_gets_nothing(self):
        areas = voronoi_cell_areas(
            [Point(0, 0), Point(100, 0)], [Point(0, 0)], 1.0, resolution=150
        )
        assert areas[1] == 0.0


class TestAreaArgumentBound:
    def test_formula(self):
        assert area_argument_bound(10.0, 2.0) == 5.0

    def test_zero_cell_rejected(self):
        with pytest.raises(ValueError):
            area_argument_bound(10.0, 0.0)

    def test_counting_logic_on_real_instance(self):
        # area(Omega)/min-cell upper-bounds the actual site count when
        # cells tile Omega.
        sites = [Point(-0.6, 0), Point(0.6, 0), Point(0, 0.8), Point(0, -0.8)]
        areas = voronoi_cell_areas(sites, [Point(0, 0)], 1.5, resolution=300)
        omega = math.pi * 1.5**2
        assert area_argument_bound(omega, min(areas)) >= len(sites) - 0.01
