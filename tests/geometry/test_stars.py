"""Unit tests for repro.geometry.stars (Lemma 4)."""

import random

import pytest

from repro.geometry import (
    Point,
    is_nontrivial_star_decomposition,
    is_star,
    is_star_decomposition,
    star_centers,
    star_decomposition,
)


def random_connected_points(n: int, seed: int) -> list[Point]:
    """Grow a connected planar set by attaching near an existing point."""
    rng = random.Random(seed)
    pts = [Point(0.0, 0.0)]
    while len(pts) < n:
        base = rng.choice(pts)
        offset = Point(rng.uniform(-0.9, 0.9), rng.uniform(-0.9, 0.9))
        if offset.norm() > 0.9:  # keep the new point within unit range
            continue
        cand = base + offset
        if cand not in pts:
            pts.append(cand)
    return pts


class TestIsStar:
    def test_singleton_is_star(self):
        assert is_star([Point(0, 0)])

    def test_empty_is_not(self):
        assert not is_star([])

    def test_center_witnesses(self):
        pts = [Point(0, 0), Point(0.9, 0), Point(-0.9, 0)]
        assert is_star(pts)
        assert star_centers(pts) == [Point(0, 0)]

    def test_no_center(self):
        pts = [Point(0, 0), Point(1.5, 0), Point(3.0, 0)]
        assert not is_star(pts)

    def test_pair_within_unit_is_star_both_centers(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        assert len(star_centers(pts)) == 2

    def test_boundary_distance_counts(self):
        # Exactly distance 1 is within the closed disk.
        assert is_star([Point(0, 0), Point(1, 0)])


class TestStarDecomposition:
    def test_two_points(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        dec = star_decomposition(pts)
        assert dec == [pts]

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            star_decomposition([Point(0, 0)])

    def test_requires_connected(self):
        with pytest.raises(ValueError):
            star_decomposition([Point(0, 0), Point(5, 0)])

    def test_chain_of_three(self):
        pts = [Point(0, 0), Point(0.9, 0), Point(1.8, 0)]
        dec = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(dec, pts)

    def test_unit_spaced_chain(self):
        pts = [Point(float(i), 0.0) for i in range(7)]
        dec = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(dec, pts)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 12, 20])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_connected_sets(self, n, seed):
        pts = random_connected_points(n, seed * 100 + n)
        dec = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(dec, pts)

    def test_dense_cluster_single_star(self):
        pts = [Point(0, 0)] + [
            Point(0.3 * k / 10, 0.2 * k / 10) for k in range(1, 6)
        ]
        dec = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(dec, pts)

    def test_duplicates_are_deduplicated(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(0.5, 0)]
        dec = star_decomposition(pts)
        assert is_nontrivial_star_decomposition(dec, [Point(0, 0), Point(0.5, 0)])


class TestValidators:
    def test_valid_decomposition(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(2, 0), Point(2.5, 0)]
        partition = [[pts[0], pts[1]], [pts[2], pts[3]]]
        assert is_star_decomposition(partition, pts)
        assert is_nontrivial_star_decomposition(partition, pts)

    def test_rejects_non_partition(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        assert not is_star_decomposition([[pts[0]]], pts)

    def test_rejects_overlap(self):
        pts = [Point(0, 0), Point(0.5, 0)]
        assert not is_star_decomposition([[pts[0], pts[1]], [pts[1]]], pts)

    def test_rejects_non_star_part(self):
        pts = [Point(0, 0), Point(1.5, 0), Point(3, 0), Point(3.5, 0)]
        partition = [[pts[0], pts[1]], [pts[2], pts[3]]]  # first is not a star
        assert not is_star_decomposition(partition, pts)

    def test_trivial_decomposition_flagged(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(0.9, 0)]
        partition = [[pts[0], pts[1]], [pts[2]]]
        assert is_star_decomposition(partition, pts)
        assert not is_nontrivial_star_decomposition(partition, pts)
