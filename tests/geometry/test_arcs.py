"""Unit tests for repro.geometry.arcs."""

import math

import pytest

from repro.geometry import Arc, ArcPolygon, Point, arc_between, chord_length


class TestArc:
    def test_measure(self):
        a = Arc(Point(0, 0), 1.0, 0.0, math.pi / 2)
        assert math.isclose(a.measure(), math.pi / 2)

    def test_measure_wraps(self):
        a = Arc(Point(0, 0), 1.0, math.pi * 1.5, math.pi * 0.5)
        assert math.isclose(a.measure(), math.pi)

    def test_minor_major(self):
        minor = Arc(Point(0, 0), 1.0, 0.0, math.pi / 3)
        major = Arc(Point(0, 0), 1.0, 0.0, math.pi * 1.5)
        assert minor.is_minor() and not major.is_minor()
        assert major.is_major() and not minor.is_major()

    def test_half_circle_is_both(self):
        half = Arc(Point(0, 0), 1.0, 0.0, math.pi)
        assert half.is_minor() and half.is_major()

    def test_point_at_endpoints(self):
        a = Arc(Point(0, 0), 1.0, 0.0, math.pi / 2)
        start, end = a.endpoints()
        assert math.isclose(start.x, 1.0) and abs(start.y) < 1e-12
        assert abs(end.x) < 1e-12 and math.isclose(end.y, 1.0)

    def test_sample_count_and_radius(self):
        a = Arc(Point(2, 3), 1.5, 0.3, 2.0)
        pts = a.sample(9)
        assert len(pts) == 9
        for p in pts:
            assert math.isclose(p.distance_to(Point(2, 3)), 1.5)

    def test_sample_degenerate_counts(self):
        a = Arc(Point(0, 0), 1.0, 0.0, 1.0)
        assert a.sample(0) == []
        assert len(a.sample(1)) == 1

    def test_evenly_interior_matches_paper_construction(self):
        # "the two points evenly on the major arc between p1 and p2":
        # splitting into three equal sub-arcs.
        a = Arc(Point(0, 0), 1.0, 0.0, math.pi)
        q1, q2 = a.evenly_interior(2)
        assert math.isclose(Point(0, 0).angle_to(q1), math.pi / 3)
        assert math.isclose(Point(0, 0).angle_to(q2), 2 * math.pi / 3)


class TestArcBetween:
    def test_minor_arc(self):
        a = arc_between(Point(0, 0), 1.0, Point(1, 0), Point(0, 1), minor=True)
        assert a.measure() <= math.pi

    def test_major_arc(self):
        a = arc_between(Point(0, 0), 1.0, Point(1, 0), Point(0, 1), minor=False)
        assert a.measure() >= math.pi

    def test_off_circle_raises(self):
        with pytest.raises(ValueError):
            arc_between(Point(0, 0), 1.0, Point(2, 0), Point(0, 1))


class TestChordLength:
    def test_sixty_degrees_is_unit(self):
        # The workhorse fact: 60-degree gap on a unit circle = chord 1.
        assert math.isclose(chord_length(1.0, math.pi / 3), 1.0)

    def test_half_circle(self):
        assert math.isclose(chord_length(2.0, math.pi), 4.0)

    def test_monotone_in_measure(self):
        assert chord_length(1.0, 1.0) < chord_length(1.0, 2.0)


class TestArcPolygon:
    def _triangle(self) -> ArcPolygon:
        # An arc triangle with small (minor) unit arcs as edges.
        v = [Point(0, 0), Point(0.9, 0), Point(0.45, 0.7)]
        return ArcPolygon(vertices=tuple(v), edges=(None, None, None))

    def test_vertex_diameter(self):
        t = self._triangle()
        assert math.isclose(t.vertex_diameter(), 0.9)

    def test_has_unit_diameter(self):
        assert self._triangle().has_unit_diameter()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ArcPolygon(vertices=(Point(0, 0),), edges=())

    def test_major_arc_edge_rejected(self):
        major = Arc(Point(0, 0), 1.0, 0.0, math.pi * 1.7)
        with pytest.raises(ValueError):
            ArcPolygon(vertices=(Point(1, 0),), edges=(major,))

    def test_boundary_diameter_close_to_vertex_diameter_when_small(self):
        # The appendix's criterion: for arc polygons bounded by minor
        # unit arcs whose vertex diameter is <= 1, the full boundary
        # diameter equals the vertex diameter.
        c1 = Point(0.2, -0.8)
        a = Arc(c1, 1.0, math.atan2(0.8, 0.5), math.atan2(0.8, -0.2))
        assert a.is_minor(tol=1e-6)
        start, end = a.endpoints()
        poly = ArcPolygon(vertices=(start, end), edges=(a, None))
        assert poly.boundary_diameter(per_edge=64) <= poly.vertex_diameter() + 1e-6
