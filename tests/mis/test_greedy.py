"""Unit tests for the alternative MIS orders."""

from repro.graphs import is_maximal_independent_set
from repro.mis import (
    lexicographic_mis,
    max_degree_mis,
    min_degree_mis,
    random_order_mis,
)


class TestLexicographic:
    def test_path(self, path5):
        assert lexicographic_mis(path5) == [0, 2, 4]

    def test_is_mis(self, small_udg):
        _, g = small_udg
        assert is_maximal_independent_set(g, lexicographic_mis(g))


class TestRandomOrder:
    def test_is_mis(self, small_udg):
        _, g = small_udg
        for seed in range(5):
            assert is_maximal_independent_set(g, random_order_mis(g, seed=seed))

    def test_deterministic_per_seed(self, small_udg):
        _, g = small_udg
        assert random_order_mis(g, seed=3) == random_order_mis(g, seed=3)

    def test_seeds_vary(self, medium_udg):
        _, g = medium_udg
        results = {tuple(sorted(map(tuple, random_order_mis(g, seed=s)))) for s in range(10)}
        assert len(results) > 1


class TestDegreeGreedy:
    def test_max_degree_is_mis(self, small_udg):
        _, g = small_udg
        assert is_maximal_independent_set(g, max_degree_mis(g))

    def test_min_degree_is_mis(self, small_udg):
        _, g = small_udg
        assert is_maximal_independent_set(g, min_degree_mis(g))

    def test_star_center_first_for_max_degree(self, star_graph):
        mis = max_degree_mis(star_graph)
        assert mis == [0]

    def test_star_leaves_for_min_degree(self, star_graph):
        mis = min_degree_mis(star_graph)
        assert 0 not in mis
        assert len(mis) == 5

    def test_min_degree_tends_larger(self, udg_suite):
        # On UDGs, low-degree-first generally finds independent sets at
        # least as large as high-degree-first (checked in aggregate to
        # avoid flakiness on individual instances).
        total_min = total_max = 0
        for _, g in udg_suite:
            total_min += len(min_degree_mis(g))
            total_max += len(max_degree_mis(g))
        assert total_min >= total_max
