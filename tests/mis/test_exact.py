"""Unit tests for the exact maximum independent set solver."""

import networkx as nx

from repro.graphs import (
    Graph,
    from_networkx,
    is_independent_set,
    to_networkx,
)
from repro.mis import (
    independence_number,
    lexicographic_mis,
    maximum_independent_set,
)


class TestKnownGraphs:
    def test_path5(self, path5):
        assert independence_number(path5) == 3

    def test_cycle6(self, cycle6):
        assert independence_number(cycle6) == 3

    def test_odd_cycle(self):
        c5 = Graph(edges=[(i, (i + 1) % 5) for i in range(5)])
        assert independence_number(c5) == 2

    def test_complete(self, complete4):
        assert independence_number(complete4) == 1

    def test_star(self, star_graph):
        assert independence_number(star_graph) == 5

    def test_empty_edges(self):
        g = Graph(nodes=range(7))
        assert independence_number(g) == 7

    def test_empty_graph(self):
        assert independence_number(Graph()) == 0

    def test_petersen(self):
        g = from_networkx(nx.petersen_graph())
        assert independence_number(g) == 4

    def test_complete_bipartite(self):
        g = from_networkx(nx.complete_bipartite_graph(3, 5))
        assert independence_number(g) == 5


class TestSolutionValidity:
    def test_result_is_independent(self, small_udg):
        _, g = small_udg
        result = maximum_independent_set(g)
        assert is_independent_set(g, result)

    def test_at_least_any_mis(self, udg_suite):
        for _, g in udg_suite:
            assert independence_number(g) >= len(lexicographic_mis(g))

    def test_cross_validate_with_networkx_complement_clique(self):
        # alpha(G) = omega(complement(G)); networkx can find max cliques.
        for seed in range(3):
            nxg = nx.gnp_random_graph(12, 0.4, seed=seed)
            g = from_networkx(nxg)
            ours = independence_number(g)
            comp = nx.complement(nxg)
            theirs = max(len(c) for c in nx.find_cliques(comp))
            assert ours == theirs

    def test_deterministic(self, small_udg):
        _, g = small_udg
        assert len(maximum_independent_set(g)) == len(maximum_independent_set(g))
