"""Unit tests for the BFS first-fit MIS (phase 1)."""

import pytest

from repro.graphs import (
    Graph,
    has_two_hop_separation,
    is_maximal_independent_set,
)
from repro.mis import FirstFitMIS, first_fit_mis, first_fit_mis_in_order
from repro.mis.first_fit import first_fit_mis_nodes


class TestFirstFitInOrder:
    def test_path_natural_order(self, path5):
        assert first_fit_mis_in_order(path5, [0, 1, 2, 3, 4]) == [0, 2, 4]

    def test_order_matters(self, path5):
        assert first_fit_mis_in_order(path5, [1, 0, 2, 3, 4]) == [1, 3]

    def test_result_is_mis(self, cycle6):
        mis = first_fit_mis_in_order(cycle6, list(range(6)))
        assert is_maximal_independent_set(cycle6, mis)


class TestFirstFitMIS:
    def test_root_always_selected(self, path5):
        mis = first_fit_mis(path5, root=2)
        assert 2 in mis

    def test_default_root_is_min(self, path5):
        mis = first_fit_mis(path5)
        assert mis.tree.root == 0

    def test_is_maximal_independent(self, small_udg):
        _, g = small_udg
        mis = first_fit_mis(g)
        assert is_maximal_independent_set(g, mis.nodes)

    def test_two_hop_separation(self, udg_suite):
        for _, g in udg_suite:
            mis = first_fit_mis(g)
            assert has_two_hop_separation(g, mis.nodes)

    def test_bfs_selection_order_respects_depth(self, small_udg):
        # First-fit in BFS order: selection order never goes back to a
        # strictly smaller depth once a deeper node was selected.
        _, g = small_udg
        mis = first_fit_mis(g)
        depths = [mis.tree.depth[v] for v in mis.nodes]
        assert depths == sorted(depths)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            first_fit_mis(Graph())

    def test_disconnected_raises(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(ValueError):
            first_fit_mis(g)

    def test_single_node(self):
        g = Graph(nodes=[7])
        mis = first_fit_mis(g)
        assert list(mis.nodes) == [7]

    def test_result_container_protocol(self, path5):
        mis = first_fit_mis(path5)
        assert isinstance(mis, FirstFitMIS)
        assert len(mis) == 3
        assert mis[0] == 0
        assert 0 in mis
        assert mis.as_set() == {0, 2, 4}

    def test_no_mis_nodes_at_depth_one(self, udg_suite):
        # The root is in I, so its neighbors (depth 1) never are.
        for _, g in udg_suite:
            mis = first_fit_mis(g)
            for v in mis.nodes:
                assert mis.tree.depth[v] != 1

    def test_deterministic(self, small_udg):
        _, g = small_udg
        assert first_fit_mis(g).nodes == first_fit_mis(g).nodes


class TestFirstFitMisNodes:
    """The kernelized fast path must match ``first_fit_mis().nodes``."""

    def test_matches_full_result(self, udg_suite):
        for _, g in udg_suite:
            assert first_fit_mis_nodes(g) == first_fit_mis(g).nodes

    def test_matches_with_prebuilt_kernels(self, udg_suite):
        from repro.graphs import IndexedGraph
        from repro.graphs.bitset import BitsetGraph

        for _, g in udg_suite:
            reference = first_fit_mis(g).nodes
            index = IndexedGraph.from_graph(g)
            assert first_fit_mis_nodes(g, index=index) == reference
            bitset = BitsetGraph.from_indexed(index)
            assert first_fit_mis_nodes(g, index=bitset) == reference

    def test_root_forwarded(self, small_udg):
        _, g = small_udg
        root = max(g.nodes())
        assert first_fit_mis_nodes(g, root=root) == first_fit_mis(g, root=root).nodes

    def test_root_always_first(self, path5):
        assert first_fit_mis_nodes(path5, root=2)[0] == 2

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            first_fit_mis_nodes(Graph())

    def test_disconnected_raises(self):
        g = Graph(edges=[(0, 1)], nodes=[2])
        with pytest.raises(ValueError):
            first_fit_mis_nodes(g)
