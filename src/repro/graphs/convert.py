"""Interop with networkx.

The library's algorithms run on :class:`repro.graphs.Graph`; networkx
is used only for cross-validation in tests (connectivity, domination,
independence) and for users who want to feed results into the wider
Python graph ecosystem.  The import is deferred so the core library
works without networkx installed.
"""

from __future__ import annotations

from typing import Any, Hashable, TypeVar

from .graph import Graph

N = TypeVar("N", bound=Hashable)

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: Graph[N]) -> Any:
    """Convert to ``networkx.Graph`` (nodes and edges only)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph: Any) -> Graph[Any]:
    """Convert from any undirected ``networkx`` graph.

    Edge data is discarded; multi-edges collapse; self-loops are
    rejected (the UDG model has none).
    """
    graph: Graph[Any] = Graph()
    for node in nx_graph.nodes():
        graph.add_node(node)
    for u, v in nx_graph.edges():
        graph.add_edge(u, v)
    return graph
