"""A small, dependency-free undirected graph.

All algorithms in this reproduction run on this adjacency-set graph
rather than on networkx: the point is to *implement* the paper's
machinery, and the tests cross-validate against networkx where it
overlaps.  Nodes may be any hashable values — the UDG builders use
:class:`repro.geometry.Point` nodes, the distributed simulator uses
integer ids.

The structure is deliberately minimal: no attributes, no multi-edges,
no directed edges.  Everything the CDS algorithms need is neighborhood
queries, induced subgraphs and iteration in deterministic order.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

N = TypeVar("N", bound=Hashable)

__all__ = ["Graph"]


class Graph(Generic[N]):
    """An undirected simple graph over hashable nodes.

    Insertion order of nodes is preserved (adjacency is stored in
    dicts), which keeps every algorithm in the library deterministic
    for a given construction sequence.
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Iterable[tuple[N, N]] = (), nodes: Iterable[N] = ()):
        self._adj: dict[N, dict[N, None]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction --------------------------------------------------------

    def add_node(self, node: N) -> None:
        """Add a node (no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_edge(self, u: N, v: N) -> None:
        """Add an undirected edge, creating endpoints as needed.

        Self-loops are rejected: a UDG in this paper's model never has
        them and allowing them would silently corrupt domination checks.
        """
        if u == v:
            raise ValueError(f"self-loop at {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = None
        self._adj[v][u] = None

    def remove_node(self, node: N) -> None:
        """Remove a node and its incident edges.

        Raises:
            KeyError: if the node is absent.
        """
        for neighbor in self._adj[node]:
            del self._adj[neighbor][node]
        del self._adj[node]

    def remove_edge(self, u: N, v: N) -> None:
        """Remove an edge.

        Raises:
            KeyError: if the edge is absent.
        """
        del self._adj[u][v]
        del self._adj[v][u]

    # -- queries --------------------------------------------------------------

    def __contains__(self, node: N) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[N]:
        return iter(self._adj)

    def nodes(self) -> list[N]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> list[tuple[N, N]]:
        """Each undirected edge once, as ``(u, v)`` in first-seen order."""
        seen: set[N] = set()
        result: list[tuple[N, N]] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    result.append((u, v))
            seen.add(u)
        return result

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: N, v: N) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: N) -> list[N]:
        """Neighbors of a node, in insertion order.

        Raises:
            KeyError: if the node is absent.
        """
        return list(self._adj[node])

    def neighbor_set(self, node: N) -> set[N]:
        return set(self._adj[node])

    def degree(self, node: N) -> int:
        return len(self._adj[node])

    def closed_neighborhood(self, node: N) -> set[N]:
        """The node together with its neighbors (``N[v]``)."""
        closed = set(self._adj[node])
        closed.add(node)
        return closed

    def max_degree(self) -> int:
        """Maximum degree; 0 for the empty graph."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    # -- derived graphs --------------------------------------------------------

    def subgraph(self, nodes: Iterable[N]) -> "Graph[N]":
        """The induced subgraph ``G[nodes]``.

        Unknown nodes are ignored, matching the set-algebra style the
        CDS algorithms use (``G[I ∪ C]`` with ``C`` still growing).
        """
        keep = {n for n in nodes if n in self._adj}
        sub: Graph[N] = Graph()
        for n in self._adj:
            if n in keep:
                sub.add_node(n)
        for u in sub._adj:
            for v in self._adj[u]:
                if v in keep:
                    sub._adj[u][v] = None
        return sub

    def copy(self) -> "Graph[N]":
        dup: Graph[N] = Graph()
        for n, nbrs in self._adj.items():
            dup._adj[n] = dict(nbrs)
        return dup

    def __repr__(self) -> str:
        return f"Graph(|V|={len(self)}, |E|={self.edge_count()})"
