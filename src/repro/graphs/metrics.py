"""Topology statistics for experiment reporting.

Degree profiles, diameter, and clustering coefficients of deployments —
the columns that situate an instance family (sparse corridor vs dense
cluster) in the comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, TypeVar

from .graph import Graph
from .traversal import bfs_tree, is_connected

N = TypeVar("N", bound=Hashable)

__all__ = ["TopologyStats", "topology_stats", "graph_diameter", "clustering_coefficient"]


@dataclass(frozen=True)
class TopologyStats:
    """Summary statistics of one topology."""

    nodes: int
    edges: int
    min_degree: int
    mean_degree: float
    max_degree: int
    diameter: int
    clustering: float

    def row(self) -> tuple:
        """The tuple the experiment tables print."""
        return (
            self.nodes,
            self.edges,
            f"{self.mean_degree:.1f}",
            self.max_degree,
            self.diameter,
            f"{self.clustering:.2f}",
        )


def graph_diameter(graph: Graph[N]) -> int:
    """Exact hop diameter of a connected graph.

    All-pairs via one BFS per node — `O(n(n+m))`, fine for experiment
    sizes.  Raises on disconnected input (the diameter is infinite).
    """
    if not is_connected(graph):
        raise ValueError("diameter of a disconnected graph is infinite")
    best = 0
    for v in graph:
        depth = bfs_tree(graph, v).depth
        best = max(best, max(depth.values()))
    return best


def clustering_coefficient(graph: Graph[N]) -> float:
    """Mean local clustering coefficient.

    For each node with degree >= 2: closed neighbor pairs / all neighbor
    pairs; nodes of degree < 2 contribute 0 (the networkx convention,
    against which the tests cross-validate).
    """
    if len(graph) == 0:
        return 0.0
    total = 0.0
    for v in graph:
        nbrs = graph.neighbors(v)
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for i in range(k):
            for j in range(i + 1, k):
                if graph.has_edge(nbrs[i], nbrs[j]):
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(graph)


def topology_stats(graph: Graph[N]) -> TopologyStats:
    """Compute the full summary for a connected topology."""
    n = len(graph)
    if n == 0:
        raise ValueError("empty graph has no statistics")
    degrees = [graph.degree(v) for v in graph]
    return TopologyStats(
        nodes=n,
        edges=graph.edge_count(),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / n,
        max_degree=max(degrees),
        diameter=graph_diameter(graph) if is_connected(graph) else -1,
        clustering=clustering_coefficient(graph),
    )
