"""The array graph kernel: CSR adjacency as numpy arrays.

The third kernel tier.  :class:`~repro.graphs.indexed.IndexedGraph`
(PR 2) removed hashing from the hot loops and
:class:`~repro.graphs.bitset.BitsetGraph` (PR 3) made membership-heavy
scans word-parallel — but both still pay an *interpreted step per node
touched* (the CSR kernel per adjacency entry, the bitset kernel per
``⌈n/64⌉``-word mask op, and mask sets cost ``n²/8`` bytes, which at
``n = 10⁶`` would be 125 GB).  For the 10⁵–10⁶-node decade the
per-element work has to leave the interpreter entirely:
:class:`ArrayGraph` stores the same CSR arrays as contiguous numpy
``int64`` buffers, so whole frontiers are gathered, filtered, and
deduplicated with a constant number of C-level vector calls per BFS
level instead of a Python loop iteration per edge.

Like the bitset kernel, the array view *wraps* an
:class:`IndexedGraph` (same dense ids, same node interning — the views
are interchangeable at every ``index=`` seam) and is a read-only
snapshot.  Traversals are **bit-identical** to the CSR kernel's: the
level-synchronous BFS gathers each frontier's neighbor lists in
frontier order (which equals the reference's dequeue order) and keeps
the first occurrence of every newly seen id (which equals the
reference's append order), so ``order``/``parent``/``depth`` match
:meth:`IndexedGraph.bfs` element for element.

Memory: two ``int64`` arrays of ``n+1`` and ``2|E|`` entries — ~80 MB
at ``n = 10⁶`` and UDG-typical densities, versus the bitset kernel's
quadratic masks.  When :data:`repro.obs.OBS` is enabled the vector hot
paths report ``array.gather_elements`` (CSR entries gathered) and
``array.bfs_levels`` (frontier expansions); see
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

import numpy as np

from ..obs import OBS
from .graph import Graph
from .indexed import IndexedGraph

N = TypeVar("N", bound=Hashable)

__all__ = ["ArrayGraph", "gather_rows"]


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR rows for ``ids``, plus each row's length.

    Returns ``(flat, counts)`` where ``flat`` is the neighbor ids of
    every ``ids[k]`` laid out row after row (each row in adjacency
    insertion order, rows in ``ids`` order) and ``counts[k]`` is the
    k-th row's length — the shared gather primitive of every vectorized
    hot path (BFS frontiers, gain re-scoring, coverage counting).
    """
    counts = indptr[ids + 1] - indptr[ids]
    total = int(counts.sum())
    if total == 0:
        return indices[:0], counts
    starts = indptr[ids]
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return indices[flat], counts


class ArrayGraph(Generic[N]):
    """A numpy-CSR view layered on an :class:`IndexedGraph`.

    Shares the underlying view's dense ids and node interning, so the
    kernels are interchangeable wherever an ``index=`` argument is
    accepted.  The numpy buffers are built once at construction
    (``O(V + E)``) and exposed read-only; hot loops bind them to locals
    and stay inside numpy for whole frontiers/batches at a time.
    """

    __slots__ = ("indexed", "_indptr", "_indices", "_degrees")

    def __init__(self, indexed: IndexedGraph[N]):
        self.indexed = indexed
        self._indptr = np.asarray(indexed.indptr, dtype=np.int64)
        self._indices = np.asarray(indexed.indices, dtype=np.int64)
        self._degrees: np.ndarray | None = None

    @classmethod
    def from_indexed(cls, index: IndexedGraph[N]) -> "ArrayGraph[N]":
        """Wrap an existing CSR view."""
        return cls(index)

    @classmethod
    def from_graph(cls, graph: Graph[N]) -> "ArrayGraph[N]":
        return cls(IndexedGraph.from_graph(graph))

    # -- flat arrays ----------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers (``int64``); neighbors of ``i`` span
        ``indices[indptr[i]:indptr[i+1]]``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (``int64``): all neighbor ids, flat, in
        source adjacency insertion order per row."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """All node degrees as one ``int64`` array (computed once)."""
        degs = self._degrees
        if degs is None:
            degs = self._degrees = np.diff(self._indptr)
        return degs

    # -- delegation to the CSR view -------------------------------------------

    @property
    def nodes(self) -> tuple:
        return self.indexed.nodes

    def id_of(self, node: N) -> int:
        return self.indexed.id_of(node)

    def node_at(self, i: int) -> N:
        return self.indexed.node_at(i)

    def __contains__(self, node: N) -> bool:
        return node in self.indexed

    def __len__(self) -> int:
        return len(self.indexed)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indexed)

    def degree(self, i: int) -> int:
        return self.indexed.degree(i)

    def edge_count(self) -> int:
        return self.indexed.edge_count()

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbor ids of ``i`` as an ``int64`` array view (source
        adjacency insertion order, like :meth:`IndexedGraph.neighbors`)."""
        return self._indices[self._indptr[i] : self._indptr[i + 1]]

    # -- traversal primitives ---------------------------------------------------

    def _bfs_levels(
        self, root: int, parent: np.ndarray | None, seen: np.ndarray
    ) -> list[np.ndarray]:
        """Level-synchronous BFS core: one numpy pass per level.

        Appends each level's newly discovered ids (in the reference
        BFS's append order — see the module docstring) to the returned
        chunk list, marking ``seen`` and filling ``parent`` when given.
        ``seen[root]`` must already be set by the caller.
        """
        indptr, indices = self._indptr, self._indices
        frontier = np.array([root], dtype=np.int64)
        chunks = [frontier]
        levels = 0
        gathered = 0
        while frontier.size:
            cand, counts = gather_rows(indptr, indices, frontier)
            gathered += cand.size
            fresh = ~seen[cand]
            cand = cand[fresh]
            if cand.size == 0:
                break
            src = np.repeat(frontier, counts)[fresh]
            # First occurrence per id, in candidate order == reference
            # append order (np.unique's return_index is the first hit).
            uniq, first = np.unique(cand, return_index=True)
            first.sort()
            frontier = cand[first]
            seen[uniq] = True
            if parent is not None:
                parent[frontier] = src[first]
            chunks.append(frontier)
            levels += 1
        if OBS.enabled:
            OBS.incr("array.bfs_levels", levels)
            OBS.incr("array.gather_elements", gathered)
        return chunks

    def bfs(self, root: int) -> tuple[list[int], list[int], list[int]]:
        """BFS over ``root``'s component — same ``(order, parent,
        depth)`` contract and bit-identical output to
        :meth:`IndexedGraph.bfs`, computed a frontier at a time."""
        n = len(self.indexed)
        seen = np.zeros(n, dtype=bool)
        seen[root] = True
        parent = np.full(n, -1, dtype=np.int64)
        chunks = self._bfs_levels(root, parent, seen)
        depth = np.full(n, -1, dtype=np.int64)
        for d, chunk in enumerate(chunks):
            depth[chunk] = d
        order = np.concatenate(chunks)
        return order.tolist(), parent.tolist(), depth.tolist()

    def bfs_order(self, root: int) -> list[int]:
        """Just the BFS visit order of ``root``'s component (matches
        :meth:`IndexedGraph.bfs_order`)."""
        seen = np.zeros(len(self.indexed), dtype=bool)
        seen[root] = True
        return np.concatenate(self._bfs_levels(root, None, seen)).tolist()

    def connected_components(self) -> list[list[int]]:
        """Components as id lists, each in BFS order, in first-id order
        (matches :meth:`IndexedGraph.connected_components`)."""
        n = len(self.indexed)
        seen = np.zeros(n, dtype=bool)
        comps: list[list[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            comps.append(
                np.concatenate(self._bfs_levels(start, None, seen)).tolist()
            )
        return comps

    def is_connected(self) -> bool:
        """Whether the view is connected.  The empty graph is not."""
        if not len(self.indexed):
            return False
        return len(self.bfs_order(0)) == len(self.indexed)

    def __repr__(self) -> str:
        return f"ArrayGraph(|V|={len(self)}, |E|={self.edge_count()})"
