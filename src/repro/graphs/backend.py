"""The kernel backend protocol: one contract, three representations.

Every solver phase in this codebase runs on a *kernel view* of the
topology — a frozen, integer-indexed snapshot built once per run and
threaded through every ``index=`` seam.  PR 2 and PR 3 grew two such
kernels and PR 7 a third; this module makes the contract they share
explicit so algorithms stop caring which one they run on:

* :class:`~repro.graphs.indexed.IndexedGraph` — CSR adjacency as
  Python lists.  Cheapest to build, fastest below a few hundred nodes.
* :class:`~repro.graphs.bitset.BitsetGraph` — neighborhoods as big-int
  bitmasks.  Word-parallel set algebra; masks cost ``n²/8`` bytes, so
  it owns the mid range (``~600 ≤ n < ~20 000``).
* :class:`~repro.graphs.array.ArrayGraph` — CSR adjacency as numpy
  ``int64`` buffers.  Vectorized frontier/batch operations with ``O(E)``
  memory; owns the large range (``n ≥ ~20 000`` through 10⁶).

The :class:`Backend` protocol names the surface every kernel provides
(id interning, degrees, BFS/components); construction and per-kernel
algorithm dispatch go through the module-level functions —
:func:`choose_kernel` (the three-way auto table), :func:`build_kernel`
(graph → chosen view), and :func:`gain_tracker` (view → the matching
greedy-CDS gain tracker).  Selections and traversals are
**bit-identical across kernels** at every size — that invariant is what
lets ``"auto"`` exist at all (serve's cache, checkpoint resume, and the
counter gates all rely on results not depending on the kernel) — so the
table is purely a performance decision; see ``docs/performance.md`` for
the measured crossovers and ``docs/architecture.md`` for where the
protocol sits in the stack.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Hashable,
    Iterable,
    Protocol,
    TypeVar,
    runtime_checkable,
)

from .graph import Graph
from .indexed import IndexedGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..cds.array_gain import ArrayGainTracker
    from ..cds.bitset_gain import BitsetGainTracker
    from ..cds.lazy_gain import LazyGainTracker
    from .array import ArrayGraph
    from .bitset import BitsetGraph

N = TypeVar("N", bound=Hashable)

__all__ = [
    "ARRAY_AUTO_N",
    "BITSET_AUTO_N",
    "KERNELS",
    "Backend",
    "adjacency_rows",
    "build_kernel",
    "choose_kernel",
    "gain_tracker",
]

#: Node count at which ``kernel="auto"`` switches from the CSR kernel
#: to the bitset kernel.  Below it the mask builds cost more than the
#: word-parallel scans save (measured crossover is between the 150- and
#: 1000-node fixtures; see ``docs/performance.md`` §large-n).
BITSET_AUTO_N = 600

#: Node count at which ``kernel="auto"`` switches from the bitset
#: kernel to the array kernel.  Beyond it the bitset's ``n²/8``-byte
#: masks and ``⌈n/64⌉``-word per-round scans lose to numpy's O(E)
#: buffers and batched vector calls (measured crossover is between the
#: udg10000 and udg100000 fixtures; see ``docs/performance.md``).
ARRAY_AUTO_N = 20000

#: Valid ``kernel=`` arguments, CLI ``--kernel`` choices included.
KERNELS = ("auto", "indexed", "bitset", "array")


@runtime_checkable
class Backend(Protocol):
    """The read surface every graph kernel provides.

    A ``Backend`` is a frozen view of one topology with dense integer
    ids ``0..n-1``: node interning at the boundary, O(1) degree/size
    queries, and order-preserving traversals (BFS visit order equals
    the dict-based reference's, which is what keeps results
    bit-identical across kernels).  :class:`IndexedGraph`,
    :class:`~repro.graphs.bitset.BitsetGraph` and
    :class:`~repro.graphs.array.ArrayGraph` all satisfy it — build one
    with :func:`build_kernel` and thread it through every phase of a
    run.

    Kernel-specific *algorithm* structures hang off the view rather
    than living on it: gain trackers via :func:`gain_tracker`,
    domination/coverage scans inside :mod:`repro.mis.first_fit`, each
    dispatching on the concrete view type behind this one protocol.
    """

    @property
    def nodes(self) -> tuple: ...

    def id_of(self, node) -> int: ...

    def node_at(self, i: int): ...

    def __contains__(self, node) -> bool: ...

    def __len__(self) -> int: ...

    def degree(self, i: int) -> int: ...

    def edge_count(self) -> int: ...

    def bfs(self, root: int) -> tuple[list[int], list[int], list[int]]: ...

    def bfs_order(self, root: int) -> list[int]: ...

    def connected_components(self) -> list[list[int]]: ...

    def is_connected(self) -> bool: ...


def choose_kernel(n: int, kernel: str = "auto", auto_bitset: bool = True) -> str:
    """Resolve a ``kernel=`` argument to ``"indexed"``, ``"bitset"``,
    or ``"array"``.

    ``"auto"`` reads the three-way size table: the CSR kernel below
    :data:`BITSET_AUTO_N` nodes, the bitset kernel from there up to
    :data:`ARRAY_AUTO_N`, and the numpy array kernel beyond.  A solver
    whose hot loop does not profit from the accelerated kernels at any
    size (WAF's coverage scan walks short CSR rows faster than it
    popcounts masks or amortizes vector-call overhead at UDG-typical
    degrees) passes ``auto_bitset=False`` to keep ``"auto"`` on the CSR
    kernel; explicit kernel names are always honored.

    Raises:
        ValueError: on an unknown kernel name.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if kernel != "auto":
        return kernel
    if not auto_bitset or n < BITSET_AUTO_N:
        return "indexed"
    return "array" if n >= ARRAY_AUTO_N else "bitset"


def build_kernel(
    graph: Graph[N], kernel: str = "auto", auto_bitset: bool = True
) -> "IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N]":
    """Build the chosen kernel view of ``graph`` (one pass, shared by
    every phase of a solver run)."""
    index = IndexedGraph.from_graph(graph)
    chosen = choose_kernel(len(index), kernel, auto_bitset)
    if chosen == "bitset":
        from .bitset import BitsetGraph

        return BitsetGraph.from_indexed(index)
    if chosen == "array":
        from .array import ArrayGraph

        return ArrayGraph.from_indexed(index)
    return index


def adjacency_rows(view: Backend) -> list:
    """Every node's neighbor-id row, one CSR gather over the kernel.

    Returns a length-``n`` list; row ``i`` is a sequence of the dense
    neighbor ids of node ``i`` **in source adjacency insertion order**
    — the order :meth:`Graph.neighbors` would report, which is what
    keeps consumers (the simulator's cached receiver tuples, above all)
    bit-identical to the dict-based graph.  All three kernels carry an
    insertion-ordered CSR (:class:`~repro.graphs.bitset.BitsetGraph`
    and :class:`~repro.graphs.array.ArrayGraph` wrap an
    :class:`IndexedGraph`), so the gather is one row-slice pass
    whatever the concrete type.

    Raises:
        TypeError: if ``view`` is not one of the known kernels.
    """
    index = getattr(view, "indexed", view)
    if not isinstance(index, IndexedGraph):
        raise TypeError(
            f"adjacency_rows needs a kernel view, got {type(view).__name__}"
        )
    indptr, indices = index.indptr, index.indices
    return [
        indices[indptr[i] : indptr[i + 1]] for i in range(len(index))
    ]


def gain_tracker(
    index: Backend, dominators: Iterable[N]
) -> "LazyGainTracker | BitsetGainTracker | ArrayGainTracker":
    """The greedy-CDS gain tracker matching the kernel of ``index``.

    All three trackers share one contract (constructor errors,
    ``add`` / ``best_connector`` semantics, ``gain.*`` counters) and
    produce bit-identical ``(node, gain)`` selection sequences; the
    randomized equivalence suites in ``tests/cds/`` pin that.  Imports
    are call-time because the trackers live above the graph layer.
    """
    from .array import ArrayGraph
    from .bitset import BitsetGraph

    if isinstance(index, BitsetGraph):
        from ..cds.bitset_gain import BitsetGainTracker

        return BitsetGainTracker(index, dominators)
    if isinstance(index, ArrayGraph):
        from ..cds.array_gain import ArrayGainTracker

        return ArrayGainTracker(index, dominators)
    from ..cds.lazy_gain import LazyGainTracker

    return LazyGainTracker(index, dominators)
