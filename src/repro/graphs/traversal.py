"""Graph traversals: BFS orders, BFS trees, components, distances.

Phase 1 of both two-phased algorithms selects the MIS "in the first-fit
manner in the breadth-first-search ordering" of a rooted spanning tree
(Section III), and the WAF connector phase uses the *parents* of that
tree — so rooted BFS trees with explicit parent maps are first-class
objects here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generic, Hashable, Iterable, TypeVar

from .graph import Graph
from .indexed import IndexedGraph

N = TypeVar("N", bound=Hashable)

__all__ = [
    "BFSTree",
    "bfs_order",
    "bfs_tree",
    "dfs_tree",
    "indexed_bfs_tree",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "eccentricity",
    "induced_is_connected",
]


@dataclass(frozen=True)
class BFSTree(Generic[N]):
    """A rooted BFS spanning tree of (one component of) a graph.

    Attributes:
        root: the root node.
        order: nodes in BFS visit order (root first).  Ties within a
            level are broken by the parent's adjacency order, so the
            order is deterministic for a fixed graph construction.
        parent: maps each non-root node to its tree parent.
        depth: maps each node to its hop distance from the root.
    """

    root: N
    order: tuple[N, ...]
    parent: dict[N, N] = field(repr=False)
    depth: dict[N, int] = field(repr=False)

    def __len__(self) -> int:
        return len(self.order)

    def children(self) -> dict[N, list[N]]:
        """Child lists per node, in BFS order."""
        kids: dict[N, list[N]] = {n: [] for n in self.order}
        for child in self.order:
            if child != self.root:
                kids[self.parent[child]].append(child)
        return kids

    def path_to_root(self, node: N) -> list[N]:
        """The tree path from ``node`` up to (and including) the root."""
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path


def bfs_order(graph: Graph[N], root: N) -> list[N]:
    """Nodes of ``root``'s component in BFS order."""
    return list(bfs_tree(graph, root).order)


def bfs_tree(graph: Graph[N], root: N) -> BFSTree[N]:
    """BFS spanning tree of the component containing ``root``.

    Raises:
        KeyError: if ``root`` is not in the graph.
    """
    if root not in graph:
        raise KeyError(f"root {root!r} not in graph")
    parent: dict[N, N] = {}
    depth: dict[N, int] = {root: 0}
    order: list[N] = [root]
    queue: deque[N] = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                parent[v] = u
                order.append(v)
                queue.append(v)
    return BFSTree(root=root, order=tuple(order), parent=parent, depth=depth)


def indexed_bfs_tree(index: IndexedGraph[N], root: N) -> BFSTree[N]:
    """BFS spanning tree computed on the CSR kernel.

    Produces a :class:`BFSTree` bit-identical to
    ``bfs_tree(graph, root)`` on the source graph — the kernel preserves
    iteration and adjacency order — while the traversal itself runs on
    flat integer arrays (no per-step hash lookups).

    Raises:
        KeyError: if ``root`` is not in the indexed graph.
    """
    nodes = index.nodes
    order_ids, parent_ids, depth_ids = index.bfs(index.id_of(root))
    parent = {
        nodes[v]: nodes[parent_ids[v]] for v in order_ids if parent_ids[v] >= 0
    }
    depth = {nodes[v]: depth_ids[v] for v in order_ids}
    return BFSTree(
        root=root,
        order=tuple(nodes[v] for v in order_ids),
        parent=parent,
        depth=depth,
    )


def dfs_tree(graph: Graph[N], root: N) -> BFSTree[N]:
    """DFS (preorder) spanning tree of the component containing ``root``.

    Returned in the same container as :func:`bfs_tree`; ``order`` is the
    preorder, ``depth`` the tree depth (not the hop distance).  Section
    III allows an *arbitrary* rooted spanning tree for the WAF
    algorithm; the ablation benchmarks compare BFS against DFS trees.

    Raises:
        KeyError: if ``root`` is not in the graph.
    """
    if root not in graph:
        raise KeyError(f"root {root!r} not in graph")
    parent: dict[N, N] = {}
    depth: dict[N, int] = {root: 0}
    order: list[N] = []
    stack: list[N] = [root]
    seen: set[N] = {root}
    while stack:
        u = stack.pop()
        order.append(u)
        # Reverse so the first-listed neighbor is explored first.
        for v in reversed(graph.neighbors(u)):
            if v not in seen:
                seen.add(v)
                parent[v] = u
                depth[v] = depth[u] + 1
                stack.append(v)
    return BFSTree(root=root, order=tuple(order), parent=parent, depth=depth)


def connected_components(graph: Graph[N]) -> list[list[N]]:
    """Connected components, each in BFS order, in first-node order."""
    seen: set[N] = set()
    comps: list[list[N]] = []
    for start in graph:
        if start in seen:
            continue
        comp = bfs_order(graph, start)
        seen.update(comp)
        comps.append(comp)
    return comps


def is_connected(graph: Graph[N]) -> bool:
    """Whether the graph is connected.  The empty graph is not."""
    if len(graph) == 0:
        return False
    first = next(iter(graph))
    return len(bfs_order(graph, first)) == len(graph)


def induced_is_connected(graph: Graph[N], nodes: Iterable[N]) -> bool:
    """Whether ``G[nodes]`` is connected (empty set: False)."""
    return is_connected(graph.subgraph(nodes))


def shortest_path_lengths(graph: Graph[N], source: N) -> dict[N, int]:
    """Hop distances from ``source`` to every reachable node."""
    return dict(bfs_tree(graph, source).depth)


def eccentricity(graph: Graph[N], node: N) -> int:
    """Largest hop distance from ``node`` within its component."""
    return max(bfs_tree(graph, node).depth.values())
