"""Unit-disk graphs.

The communication topology of a wireless ad hoc network with all
transmission radii normalized to one: nodes are planar points, and two
nodes are adjacent iff their Euclidean distance is at most one
(Section I of the paper).

Two builders are provided: the obvious quadratic one and a
grid-bucketed one that only tests pairs in neighboring buckets —
expected linear time for bounded-density deployments, which is what
makes the larger benchmark sweeps feasible.  A quasi-UDG variant
(edges certain below an inner radius, absent above 1, arbitrary —
here: pseudorandom — in between) is included for robustness
experiments, since real radios are not perfect disks.

Both exact builders reject duplicate points (two radios at identical
coordinates collapse into one UDG node, corrupting size accounting) and,
when :data:`repro.obs.OBS` is enabled, report ``udg.<builder>.pairs_tested``
vs ``udg.<builder>.edges_emitted`` — the quantities that make the
naive-vs-grid trade-off measurable instead of folklore.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geometry.point import EPS, Point
from ..obs import OBS, trace
from .graph import Graph

__all__ = [
    "unit_disk_graph",
    "unit_disk_graph_naive",
    "quasi_unit_disk_graph",
    "communication_radius_graph",
]


def unit_disk_graph_naive(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG by testing all pairs.  O(n^2); the reference implementation.

    Duplicate points are rejected, exactly as in :func:`unit_disk_graph`
    — the two builders promise identical behaviour on every input.
    """
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    r_sq = (radius + tol) * (radius + tol)
    with trace("udg.naive.build"):
        for i in range(len(pts)):
            pi = pts[i]
            for j in range(i + 1, len(pts)):
                pj = pts[j]
                dx, dy = pi.x - pj.x, pi.y - pj.y
                if dx * dx + dy * dy <= r_sq:
                    graph.add_edge(pi, pj)
    if OBS.enabled:
        n = len(pts)
        OBS.incr("udg.naive.pairs_tested", n * (n - 1) // 2)
        OBS.incr("udg.naive.edges_emitted", graph.edge_count())
    return graph


def unit_disk_graph(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG via grid bucketing: only pairs in adjacent buckets are tested.

    Buckets have side ``radius``, so any edge's endpoints lie in the
    same or neighboring buckets.  Produces a graph identical to
    :func:`unit_disk_graph_naive` (tests assert this); expected time is
    linear in ``n`` for bounded density.

    Duplicate points are rejected: two radios at the same coordinates
    would be a single node in the UDG model and silently merging them
    corrupts size accounting.
    """
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    if radius <= 0.0:
        return graph
    r_sq = (radius + tol) * (radius + tol)
    counting = OBS.enabled
    pairs_tested = 0
    with trace("udg.grid.build"):
        buckets: dict[tuple[int, int], list[Point]] = {}
        for p in pts:
            key = (int(math.floor(p.x / radius)), int(math.floor(p.y / radius)))
            buckets.setdefault(key, []).append(p)
        for (bx, by), cell in buckets.items():
            # Within-cell pairs.
            if counting:
                pairs_tested += len(cell) * (len(cell) - 1) // 2
            for i in range(len(cell)):
                for j in range(i + 1, len(cell)):
                    dx, dy = cell[i].x - cell[j].x, cell[i].y - cell[j].y
                    if dx * dx + dy * dy <= r_sq:
                        graph.add_edge(cell[i], cell[j])
            # Cross-cell pairs: scan half the neighbors to visit each
            # unordered cell pair once.
            for ox, oy in ((1, -1), (1, 0), (1, 1), (0, 1)):
                other = buckets.get((bx + ox, by + oy))
                if not other:
                    continue
                if counting:
                    pairs_tested += len(cell) * len(other)
                for p in cell:
                    for q in other:
                        dx, dy = p.x - q.x, p.y - q.y
                        if dx * dx + dy * dy <= r_sq:
                            graph.add_edge(p, q)
    if counting:
        OBS.incr("udg.grid.pairs_tested", pairs_tested)
        OBS.incr("udg.grid.edges_emitted", graph.edge_count())
    return graph


def _checked_points(points: Sequence[Point]) -> list[Point]:
    """Materialize and validate a deployment: duplicates are an error.

    Shared by the naive and grid builders so their input contract is
    identical (see ``docs/usage.md`` §1).
    """
    pts = list(points)
    if len(set(pts)) != len(pts):
        raise ValueError("duplicate points in UDG input")
    return pts


def communication_radius_graph(
    points: Sequence[Point], radius: float
) -> Graph[Point]:
    """UDG with an explicit (non-unit) communication radius.

    Equivalent to rescaling coordinates; provided because the examples
    speak in meters rather than normalized units.
    """
    return unit_disk_graph(points, radius=radius)


def quasi_unit_disk_graph(
    points: Sequence[Point],
    inner_radius: float = 0.75,
    outer_radius: float = 1.0,
    seed: int = 0,
) -> Graph[Point]:
    """A quasi-UDG: edges certain up to ``inner_radius``, impossible
    beyond ``outer_radius``, and decided pseudo-randomly in between.

    The in-between coin is a deterministic hash of the endpoint
    coordinates and ``seed``, so the same inputs always give the same
    topology.  Used by the robustness experiments: the paper's
    guarantees assume an ideal UDG, and this lets us measure how the
    algorithms degrade when that assumption is violated.
    """
    if not (0.0 < inner_radius <= outer_radius):
        raise ValueError("need 0 < inner_radius <= outer_radius")
    graph: Graph[Point] = Graph(nodes=points)
    pts = list(points)
    inner_sq = inner_radius * inner_radius
    outer_sq = (outer_radius + EPS) * (outer_radius + EPS)
    for i in range(len(pts)):
        pi = pts[i]
        for j in range(i + 1, len(pts)):
            pj = pts[j]
            dx, dy = pi.x - pj.x, pi.y - pj.y
            d_sq = dx * dx + dy * dy
            if d_sq > outer_sq:
                continue
            if d_sq <= inner_sq:
                graph.add_edge(pi, pj)
                continue
            coin = hash((round(pi.x, 9), round(pi.y, 9), round(pj.x, 9), round(pj.y, 9), seed))
            if coin % 2 == 0:
                graph.add_edge(pi, pj)
    return graph
