"""Unit-disk graphs.

The communication topology of a wireless ad hoc network with all
transmission radii normalized to one: nodes are planar points, and two
nodes are adjacent iff their Euclidean distance is at most one
(Section I of the paper).

Two builders are provided: the obvious quadratic one and a
grid-bucketed one that only tests pairs in neighboring buckets —
expected linear time for bounded-density deployments, which is what
makes the larger benchmark sweeps feasible.  A quasi-UDG variant
(edges certain below an inner radius, absent above 1, arbitrary —
here: pseudorandom — in between) is included for robustness
experiments, since real radios are not perfect disks.

Both exact builders reject duplicate points (two radios at identical
coordinates collapse into one UDG node, corrupting size accounting) and,
when :data:`repro.obs.OBS` is enabled, report ``udg.<builder>.pairs_tested``
vs ``udg.<builder>.edges_emitted`` — the quantities that make the
naive-vs-grid trade-off measurable instead of folklore.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._optional import optional_module, require_module
from ..geometry.point import EPS, Point
from ..obs import OBS, trace
from .graph import Graph

__all__ = [
    "unit_disk_graph",
    "unit_disk_graph_naive",
    "unit_disk_graph_vectorized",
    "quasi_unit_disk_graph",
    "communication_radius_graph",
]

#: Below this node count the grid builder dispatches to the all-pairs
#: scan: the bucket machinery (hashing cell keys, neighbor lookups)
#: costs more than the pair tests it avoids (``BENCH_baseline.json``
#: measured grid ~1.4x slower than naive at n=20; the two cross over
#: around n≈30 at benchmark densities).
GRID_SMALL_N = 32

#: At and above this node count :func:`unit_disk_graph` dispatches to
#: :func:`unit_disk_graph_vectorized`: per-pair interpreted loops stop
#: being viable around the same size the array kernel takes over
#: solving (:data:`repro.graphs.backend.ARRAY_AUTO_N`), and the
#: vectorized builder's numpy setup is amortized well before that.
GRID_VECTOR_N = 20000

#: The half-neighborhood the grid builder scans (each unordered cell
#: pair visited once); the vectorized builder replays the same buckets
#: in the same order.
_GRID_DIRECTIONS = ((1, -1), (1, 0), (1, 1), (0, 1))

#: Emission-phase lookup for the vectorized builder's KD-tree path:
#: ``_PHASE_OF[dcx + 1, dcy + 1]`` is the 1-based index of ``(dcx,
#: dcy)`` in :data:`_GRID_DIRECTIONS`, 0 for the same cell and for
#: reversed directions (whose pairs are emitted by the other endpoint's
#: cell).
_PHASE_OF = np.zeros((3, 3), dtype=np.int64)
for _d, (_ox, _oy) in enumerate(_GRID_DIRECTIONS, start=1):
    _PHASE_OF[_ox + 1, _oy + 1] = _d
del _d, _ox, _oy


def _all_pairs_scan(pts: list[Point], graph: Graph[Point], r_sq: float) -> None:
    """Add every edge with squared distance at most ``r_sq``; O(n^2).

    The one scan both exact builders share below :data:`GRID_SMALL_N`,
    so their outputs there are bit-identical including adjacency
    insertion order.
    """
    add_edge = graph.add_edge
    for i in range(len(pts) - 1):
        pi = pts[i]
        pix, piy = pi.x, pi.y
        for j in range(i + 1, len(pts)):
            pj = pts[j]
            dx, dy = pix - pj.x, piy - pj.y
            if dx * dx + dy * dy <= r_sq:
                add_edge(pi, pj)


def unit_disk_graph_naive(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG by testing all pairs.  O(n^2); the reference implementation.

    Duplicate points are rejected, exactly as in :func:`unit_disk_graph`
    — the two builders promise identical behaviour on every input.
    """
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    r_sq = (radius + tol) * (radius + tol)
    with trace("udg.naive.build"):
        _all_pairs_scan(pts, graph, r_sq)
    if OBS.enabled:
        n = len(pts)
        OBS.incr("udg.naive.pairs_tested", n * (n - 1) // 2)
        OBS.incr("udg.naive.edges_emitted", graph.edge_count())
    return graph


def unit_disk_graph(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG via grid bucketing: only pairs in adjacent buckets are tested.

    Buckets have side ``radius``, so any edge's endpoints lie in the
    same or neighboring buckets.  Produces a graph identical to
    :func:`unit_disk_graph_naive` (tests assert this); expected time is
    linear in ``n`` for bounded density.  Below :data:`GRID_SMALL_N`
    nodes the builder dispatches to the all-pairs scan — same trace and
    counter names (with truthful all-pairs values), and output there is
    bit-identical to the naive builder's, adjacency order included.

    At and above :data:`GRID_VECTOR_N` nodes the builder dispatches to
    :func:`unit_disk_graph_vectorized` — bit-identical output again
    (node order, adjacency order, everything), with the pair testing
    done in numpy (or scipy's ``cKDTree`` when installed) instead of
    per-pair interpreted loops.

    Duplicate points are rejected: two radios at the same coordinates
    would be a single node in the UDG model and silently merging them
    corrupts size accounting.
    """
    if len(points) >= GRID_VECTOR_N:
        return unit_disk_graph_vectorized(points, radius, tol)
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    if radius <= 0.0:
        return graph
    r_sq = (radius + tol) * (radius + tol)
    counting = OBS.enabled
    n = len(pts)
    if n < GRID_SMALL_N:
        with trace("udg.grid.build"):
            _all_pairs_scan(pts, graph, r_sq)
        if counting:
            OBS.incr("udg.grid.pairs_tested", n * (n - 1) // 2)
            OBS.incr("udg.grid.edges_emitted", graph.edge_count())
        return graph
    pairs_tested = 0
    with trace("udg.grid.build"):
        floor = math.floor
        buckets: dict[tuple[int, int], list[Point]] = {}
        setdefault = buckets.setdefault
        for p in pts:
            setdefault(
                (int(floor(p.x / radius)), int(floor(p.y / radius))), []
            ).append(p)
        add_edge = graph.add_edge
        bucket_get = buckets.get
        for (bx, by), cell in buckets.items():
            # Within-cell pairs.
            m = len(cell)
            if counting:
                pairs_tested += m * (m - 1) // 2
            for i in range(m - 1):
                pi = cell[i]
                pix, piy = pi.x, pi.y
                for j in range(i + 1, m):
                    pj = cell[j]
                    dx, dy = pix - pj.x, piy - pj.y
                    if dx * dx + dy * dy <= r_sq:
                        add_edge(pi, pj)
            # Cross-cell pairs: scan half the neighbors to visit each
            # unordered cell pair once.
            for ox, oy in _GRID_DIRECTIONS:
                other = bucket_get((bx + ox, by + oy))
                if not other:
                    continue
                if counting:
                    pairs_tested += m * len(other)
                for p in cell:
                    px, py = p.x, p.y
                    for q in other:
                        dx, dy = px - q.x, py - q.y
                        if dx * dx + dy * dy <= r_sq:
                            add_edge(p, q)
    if counting:
        OBS.incr("udg.grid.pairs_tested", pairs_tested)
        OBS.incr("udg.grid.edges_emitted", graph.edge_count())
    return graph


def _checked_points(points: Sequence[Point]) -> list[Point]:
    """Materialize and validate a deployment: duplicates are an error.

    Shared by the naive and grid builders so their input contract is
    identical (see ``docs/usage.md`` §1).
    """
    pts = list(points)
    if len(set(pts)) != len(pts):
        raise ValueError("duplicate points in UDG input")
    return pts


def unit_disk_graph_vectorized(
    points: Sequence[Point],
    radius: float = 1.0,
    tol: float = EPS,
    accel: str = "auto",
) -> Graph[Point]:
    """UDG built with vectorized pair testing; bit-identical to the grid.

    The builder the 10⁵–10⁶-node fixtures need: the same grid bucketing
    as :func:`unit_disk_graph`, but with every per-pair step executed
    as numpy array operations instead of interpreted loops.  The output
    is **bit-identical** to the grid builder's at every size — node
    order, adjacency insertion order, everything — because the builder
    reconstructs the grid's exact edge emission order: each surviving
    pair is keyed by ``(emitting bucket's first-appearance rank, scan
    phase, position of each endpoint in its bucket)`` — the scan phase
    being within-cell (0) or the index of the cross-cell direction in
    :data:`_GRID_DIRECTIONS` (1–4) — then edges are replayed through
    ``add_edge`` in sorted key order, which is precisely the order the
    grid builder's nested loops emit.  The hypothesis suite in
    ``tests/graphs/test_udg_vectorized.py`` pins the equivalence.

    ``accel`` picks the candidate-pair source: ``"numpy"`` expands the
    same neighboring-bucket products the grid builder scans as one
    batched index computation; ``"kdtree"`` asks scipy's ``cKDTree``
    for the near pairs directly (fewer candidates, needs the optional
    scipy dependency) and re-tests them with the grid's exact distance
    predicate so float boundary cases cannot diverge; ``"auto"``
    (default) uses the KD-tree when scipy is installed and the numpy
    expansion otherwise.  Counters (``udg.vector.pairs_tested`` — the
    bucket pairs the grid scan *would* test, computed from bucket
    sizes — and ``udg.vector.edges_emitted``) are identical under every
    ``accel``.

    Raises:
        ValueError: on duplicate points or an unknown ``accel``.
        MissingDependencyError: for ``accel="kdtree"`` without scipy.
    """
    if accel not in ("auto", "numpy", "kdtree"):
        raise ValueError(f"unknown accel {accel!r}")
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    if radius <= 0.0:
        return graph
    r_sq = (radius + tol) * (radius + tol)
    counting = OBS.enabled
    n = len(pts)
    if n < GRID_SMALL_N:
        with trace("udg.vector.build"):
            _all_pairs_scan(pts, graph, r_sq)
        if counting:
            OBS.incr("udg.vector.pairs_tested", n * (n - 1) // 2)
            OBS.incr("udg.vector.edges_emitted", graph.edge_count())
        return graph
    if accel == "kdtree":
        spatial = require_module("scipy.spatial", feature="the cKDTree UDG fast path")
    else:
        spatial = optional_module("scipy.spatial") if accel == "auto" else None
    with trace("udg.vector.build"):
        xs = np.fromiter((p.x for p in pts), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in pts), dtype=np.float64, count=n)
        # Bucket exactly as the grid builder does (same float divisions,
        # same floor), then rank occupied cells by first appearance —
        # the iteration order of the grid builder's bucket dict.
        cx = np.floor(xs / radius).astype(np.int64)
        cy = np.floor(ys / radius).astype(np.int64)
        cx -= cx.min()
        cy -= cy.min()
        width = int(cy.max()) + 3
        key = cx * width + (cy + 1)  # +1 keeps the oy=-1 neighbor in-row
        uniq, first_idx, inv = np.unique(key, return_index=True, return_inverse=True)
        appearance = np.argsort(first_idx, kind="stable")
        rank_of = np.empty(uniq.size, dtype=np.int64)
        rank_of[appearance] = np.arange(uniq.size, dtype=np.int64)
        cell_rank = rank_of[inv]
        # Bucket membership: perm groups point ids by cell rank (stable,
        # so within a bucket they keep input order, like the grid's
        # per-cell lists); pos is each point's index in its bucket.
        perm = np.argsort(cell_rank, kind="stable")
        sizes = np.bincount(cell_rank, minlength=uniq.size)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        pos = np.empty(n, dtype=np.int64)
        pos[perm] = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
        # The bucket pairs the grid scan visits: every occupied cell
        # with itself (phase 0), plus each existing half-neighborhood
        # cell (phases 1-4), discovered by key lookup.
        ranks = np.arange(uniq.size, dtype=np.int64)
        keys_by_rank = uniq[appearance]
        pair_a = [ranks]
        pair_b = [ranks]
        pair_phase = [np.zeros(uniq.size, dtype=np.int64)]
        for phase, (ox, oy) in enumerate(_GRID_DIRECTIONS, start=1):
            nbr = keys_by_rank + ox * width + oy
            loc = np.minimum(np.searchsorted(uniq, nbr), uniq.size - 1)
            found = uniq[loc] == nbr
            pair_a.append(ranks[found])
            pair_b.append(rank_of[loc[found]])
            pair_phase.append(np.full(int(found.sum()), phase, dtype=np.int64))
        cell_a = np.concatenate(pair_a)
        cell_b = np.concatenate(pair_b)
        phases = np.concatenate(pair_phase)

        if spatial is not None:
            # KD-tree path: near pairs from the tree (slightly inflated
            # query radius so its metric rounding can never drop a pair
            # the exact predicate accepts), filtered to the grid's
            # semantics — Chebyshev cell distance <= 1, exact r_sq test.
            tree = spatial.cKDTree(np.column_stack((xs, ys)))
            cand = tree.query_pairs(
                r=(radius + tol) * (1.0 + 1e-9), output_type="ndarray"
            )
            ci, cj = cand[:, 0], cand[:, 1]
            dcx = cx[cj] - cx[ci]
            dcy = cy[cj] - cy[ci]
            near = (np.abs(dcx) <= 1) & (np.abs(dcy) <= 1)
            ci, cj, dcx, dcy = ci[near], cj[near], dcx[near], dcy[near]
            dx = xs[ci] - xs[cj]
            dy = ys[ci] - ys[cj]
            hit = dx * dx + dy * dy <= r_sq
            ci, cj, dcx, dcy = ci[hit], cj[hit], dcx[hit], dcy[hit]
            # Orient each pair the way the grid emits it: the emitting
            # cell is the one whose scan reaches the pair — the common
            # cell within (tree pairs have i < j, matching pos order),
            # the _GRID_DIRECTIONS source cell across.
            phase_fwd = _PHASE_OF[dcx + 1, dcy + 1]
            phase_rev = _PHASE_OF[1 - dcx, 1 - dcy]
            same = (dcx == 0) & (dcy == 0)
            swap = ~same & (phase_fwd == 0)
            left = np.where(swap, cj, ci)
            right = np.where(swap, ci, cj)
            phase = np.where(swap, phase_rev, phase_fwd)
            op = cell_rank[left] * 5 + phase
        else:
            # Pure-numpy path: expand every scanned bucket pair's full
            # point product in one batch, then filter — within-cell
            # products to the strict upper triangle, everything by the
            # exact distance predicate.
            ma = sizes[cell_a]
            mb = sizes[cell_b]
            counts = ma * mb
            total = int(counts.sum())
            pair_id = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
            t = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            mbp = mb[pair_id]
            ip = t // mbp
            jp = t - ip * mbp
            keep = (phases[pair_id] > 0) | (ip < jp)
            pair_id, ip, jp = pair_id[keep], ip[keep], jp[keep]
            left = perm[starts[cell_a[pair_id]] + ip]
            right = perm[starts[cell_b[pair_id]] + jp]
            dx = xs[left] - xs[right]
            dy = ys[left] - ys[right]
            hit = dx * dx + dy * dy <= r_sq
            left, right, pair_id = left[hit], right[hit], pair_id[hit]
            op = cell_a[pair_id] * 5 + phases[pair_id]

        # Replay the surviving edges in the grid builder's emission
        # order: by emitting bucket rank and phase, then by each
        # endpoint's position in its bucket (the nested loop indices).
        order = np.lexsort((pos[right], pos[left], op))
        add_edge = graph.add_edge
        for a, b in zip(left[order].tolist(), right[order].tolist()):
            add_edge(pts[a], pts[b])
    if counting:
        cross = phases > 0
        pairs_tested = int((sizes * (sizes - 1) // 2).sum()) + int(
            (sizes[cell_a[cross]] * sizes[cell_b[cross]]).sum()
        )
        OBS.incr("udg.vector.pairs_tested", pairs_tested)
        OBS.incr("udg.vector.edges_emitted", graph.edge_count())
    return graph


def communication_radius_graph(
    points: Sequence[Point], radius: float
) -> Graph[Point]:
    """UDG with an explicit (non-unit) communication radius.

    Equivalent to rescaling coordinates; provided because the examples
    speak in meters rather than normalized units.
    """
    return unit_disk_graph(points, radius=radius)


def quasi_unit_disk_graph(
    points: Sequence[Point],
    inner_radius: float = 0.75,
    outer_radius: float = 1.0,
    seed: int = 0,
) -> Graph[Point]:
    """A quasi-UDG: edges certain up to ``inner_radius``, impossible
    beyond ``outer_radius``, and decided pseudo-randomly in between.

    The in-between coin is a deterministic hash of the endpoint
    coordinates and ``seed``, so the same inputs always give the same
    topology.  Used by the robustness experiments: the paper's
    guarantees assume an ideal UDG, and this lets us measure how the
    algorithms degrade when that assumption is violated.

    Shares the exact builders' input contract: duplicate points are
    rejected, and an instrumented run reports
    ``udg.quasi.pairs_tested`` / ``udg.quasi.edges_emitted``.
    """
    if not (0.0 < inner_radius <= outer_radius):
        raise ValueError("need 0 < inner_radius <= outer_radius")
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    inner_sq = inner_radius * inner_radius
    outer_sq = (outer_radius + EPS) * (outer_radius + EPS)
    with trace("udg.quasi.build"):
        for i in range(len(pts) - 1):
            pi = pts[i]
            for j in range(i + 1, len(pts)):
                pj = pts[j]
                dx, dy = pi.x - pj.x, pi.y - pj.y
                d_sq = dx * dx + dy * dy
                if d_sq > outer_sq:
                    continue
                if d_sq <= inner_sq:
                    graph.add_edge(pi, pj)
                    continue
                coin = hash((round(pi.x, 9), round(pi.y, 9), round(pj.x, 9), round(pj.y, 9), seed))
                if coin % 2 == 0:
                    graph.add_edge(pi, pj)
    if OBS.enabled:
        n = len(pts)
        OBS.incr("udg.quasi.pairs_tested", n * (n - 1) // 2)
        OBS.incr("udg.quasi.edges_emitted", graph.edge_count())
    return graph
