"""Unit-disk graphs.

The communication topology of a wireless ad hoc network with all
transmission radii normalized to one: nodes are planar points, and two
nodes are adjacent iff their Euclidean distance is at most one
(Section I of the paper).

Two builders are provided: the obvious quadratic one and a
grid-bucketed one that only tests pairs in neighboring buckets —
expected linear time for bounded-density deployments, which is what
makes the larger benchmark sweeps feasible.  A quasi-UDG variant
(edges certain below an inner radius, absent above 1, arbitrary —
here: pseudorandom — in between) is included for robustness
experiments, since real radios are not perfect disks.

Both exact builders reject duplicate points (two radios at identical
coordinates collapse into one UDG node, corrupting size accounting) and,
when :data:`repro.obs.OBS` is enabled, report ``udg.<builder>.pairs_tested``
vs ``udg.<builder>.edges_emitted`` — the quantities that make the
naive-vs-grid trade-off measurable instead of folklore.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geometry.point import EPS, Point
from ..obs import OBS, trace
from .graph import Graph

__all__ = [
    "unit_disk_graph",
    "unit_disk_graph_naive",
    "quasi_unit_disk_graph",
    "communication_radius_graph",
]

#: Below this node count the grid builder dispatches to the all-pairs
#: scan: the bucket machinery (hashing cell keys, neighbor lookups)
#: costs more than the pair tests it avoids (``BENCH_baseline.json``
#: measured grid ~1.4x slower than naive at n=20; the two cross over
#: around n≈30 at benchmark densities).
GRID_SMALL_N = 32


def _all_pairs_scan(pts: list[Point], graph: Graph[Point], r_sq: float) -> None:
    """Add every edge with squared distance at most ``r_sq``; O(n^2).

    The one scan both exact builders share below :data:`GRID_SMALL_N`,
    so their outputs there are bit-identical including adjacency
    insertion order.
    """
    add_edge = graph.add_edge
    for i in range(len(pts) - 1):
        pi = pts[i]
        pix, piy = pi.x, pi.y
        for j in range(i + 1, len(pts)):
            pj = pts[j]
            dx, dy = pix - pj.x, piy - pj.y
            if dx * dx + dy * dy <= r_sq:
                add_edge(pi, pj)


def unit_disk_graph_naive(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG by testing all pairs.  O(n^2); the reference implementation.

    Duplicate points are rejected, exactly as in :func:`unit_disk_graph`
    — the two builders promise identical behaviour on every input.
    """
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    r_sq = (radius + tol) * (radius + tol)
    with trace("udg.naive.build"):
        _all_pairs_scan(pts, graph, r_sq)
    if OBS.enabled:
        n = len(pts)
        OBS.incr("udg.naive.pairs_tested", n * (n - 1) // 2)
        OBS.incr("udg.naive.edges_emitted", graph.edge_count())
    return graph


def unit_disk_graph(
    points: Sequence[Point], radius: float = 1.0, tol: float = EPS
) -> Graph[Point]:
    """UDG via grid bucketing: only pairs in adjacent buckets are tested.

    Buckets have side ``radius``, so any edge's endpoints lie in the
    same or neighboring buckets.  Produces a graph identical to
    :func:`unit_disk_graph_naive` (tests assert this); expected time is
    linear in ``n`` for bounded density.  Below :data:`GRID_SMALL_N`
    nodes the builder dispatches to the all-pairs scan — same trace and
    counter names (with truthful all-pairs values), and output there is
    bit-identical to the naive builder's, adjacency order included.

    Duplicate points are rejected: two radios at the same coordinates
    would be a single node in the UDG model and silently merging them
    corrupts size accounting.
    """
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    if radius <= 0.0:
        return graph
    r_sq = (radius + tol) * (radius + tol)
    counting = OBS.enabled
    n = len(pts)
    if n < GRID_SMALL_N:
        with trace("udg.grid.build"):
            _all_pairs_scan(pts, graph, r_sq)
        if counting:
            OBS.incr("udg.grid.pairs_tested", n * (n - 1) // 2)
            OBS.incr("udg.grid.edges_emitted", graph.edge_count())
        return graph
    pairs_tested = 0
    with trace("udg.grid.build"):
        floor = math.floor
        buckets: dict[tuple[int, int], list[Point]] = {}
        setdefault = buckets.setdefault
        for p in pts:
            setdefault(
                (int(floor(p.x / radius)), int(floor(p.y / radius))), []
            ).append(p)
        add_edge = graph.add_edge
        bucket_get = buckets.get
        for (bx, by), cell in buckets.items():
            # Within-cell pairs.
            m = len(cell)
            if counting:
                pairs_tested += m * (m - 1) // 2
            for i in range(m - 1):
                pi = cell[i]
                pix, piy = pi.x, pi.y
                for j in range(i + 1, m):
                    pj = cell[j]
                    dx, dy = pix - pj.x, piy - pj.y
                    if dx * dx + dy * dy <= r_sq:
                        add_edge(pi, pj)
            # Cross-cell pairs: scan half the neighbors to visit each
            # unordered cell pair once.
            for ox, oy in ((1, -1), (1, 0), (1, 1), (0, 1)):
                other = bucket_get((bx + ox, by + oy))
                if not other:
                    continue
                if counting:
                    pairs_tested += m * len(other)
                for p in cell:
                    px, py = p.x, p.y
                    for q in other:
                        dx, dy = px - q.x, py - q.y
                        if dx * dx + dy * dy <= r_sq:
                            add_edge(p, q)
    if counting:
        OBS.incr("udg.grid.pairs_tested", pairs_tested)
        OBS.incr("udg.grid.edges_emitted", graph.edge_count())
    return graph


def _checked_points(points: Sequence[Point]) -> list[Point]:
    """Materialize and validate a deployment: duplicates are an error.

    Shared by the naive and grid builders so their input contract is
    identical (see ``docs/usage.md`` §1).
    """
    pts = list(points)
    if len(set(pts)) != len(pts):
        raise ValueError("duplicate points in UDG input")
    return pts


def communication_radius_graph(
    points: Sequence[Point], radius: float
) -> Graph[Point]:
    """UDG with an explicit (non-unit) communication radius.

    Equivalent to rescaling coordinates; provided because the examples
    speak in meters rather than normalized units.
    """
    return unit_disk_graph(points, radius=radius)


def quasi_unit_disk_graph(
    points: Sequence[Point],
    inner_radius: float = 0.75,
    outer_radius: float = 1.0,
    seed: int = 0,
) -> Graph[Point]:
    """A quasi-UDG: edges certain up to ``inner_radius``, impossible
    beyond ``outer_radius``, and decided pseudo-randomly in between.

    The in-between coin is a deterministic hash of the endpoint
    coordinates and ``seed``, so the same inputs always give the same
    topology.  Used by the robustness experiments: the paper's
    guarantees assume an ideal UDG, and this lets us measure how the
    algorithms degrade when that assumption is violated.

    Shares the exact builders' input contract: duplicate points are
    rejected, and an instrumented run reports
    ``udg.quasi.pairs_tested`` / ``udg.quasi.edges_emitted``.
    """
    if not (0.0 < inner_radius <= outer_radius):
        raise ValueError("need 0 < inner_radius <= outer_radius")
    pts = _checked_points(points)
    graph: Graph[Point] = Graph(nodes=pts)
    inner_sq = inner_radius * inner_radius
    outer_sq = (outer_radius + EPS) * (outer_radius + EPS)
    with trace("udg.quasi.build"):
        for i in range(len(pts) - 1):
            pi = pts[i]
            for j in range(i + 1, len(pts)):
                pj = pts[j]
                dx, dy = pi.x - pj.x, pi.y - pj.y
                d_sq = dx * dx + dy * dy
                if d_sq > outer_sq:
                    continue
                if d_sq <= inner_sq:
                    graph.add_edge(pi, pj)
                    continue
                coin = hash((round(pi.x, 9), round(pi.y, 9), round(pj.x, 9), round(pj.y, 9), seed))
                if coin % 2 == 0:
                    graph.add_edge(pi, pj)
    if OBS.enabled:
        n = len(pts)
        OBS.incr("udg.quasi.pairs_tested", n * (n - 1) // 2)
        OBS.incr("udg.quasi.edges_emitted", graph.edge_count())
    return graph
