"""Validators for the set properties the paper manipulates.

Dominating sets, independent sets, maximal independent sets with the
2-hop separation property, and connected dominating sets.  Every
algorithm in :mod:`repro.cds` and :mod:`repro.baselines` is checked
against these in tests — a CDS algorithm that returns a non-CDS should
never pass silently.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from .graph import Graph
from .traversal import induced_is_connected

N = TypeVar("N", bound=Hashable)

__all__ = [
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "has_two_hop_separation",
    "is_connected_dominating_set",
    "is_m_dominating_set",
    "is_m_fold_cds",
    "m_deficient_nodes",
    "survives_node_removal",
    "undominated_nodes",
]


def undominated_nodes(graph: Graph[N], candidate: Iterable[N]) -> list[N]:
    """Nodes not in ``candidate`` and with no neighbor in it."""
    chosen = set(candidate)
    missing: list[N] = []
    for v in graph:
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors(v)):
            missing.append(v)
    return missing


def is_dominating_set(graph: Graph[N], candidate: Iterable[N]) -> bool:
    """Every node is in ``candidate`` or adjacent to a member of it."""
    chosen = set(candidate)
    if not chosen <= set(graph.nodes()):
        return False
    return not undominated_nodes(graph, chosen)


def is_independent_set(graph: Graph[N], candidate: Iterable[N]) -> bool:
    """No two members of ``candidate`` are adjacent."""
    chosen = list(dict.fromkeys(candidate))
    chosen_set = set(chosen)
    if not chosen_set <= set(graph.nodes()):
        return False
    for v in chosen:
        if any(u in chosen_set for u in graph.neighbors(v)):
            return False
    return True


def is_maximal_independent_set(graph: Graph[N], candidate: Iterable[N]) -> bool:
    """Independent and inextensible.

    For an independent set, maximality is equivalent to domination —
    the fact that makes phase 1 of the two-phased framework produce a
    dominating set in the first place.
    """
    chosen = set(candidate)
    return is_independent_set(graph, chosen) and is_dominating_set(graph, chosen)


def has_two_hop_separation(graph: Graph[N], independent: Iterable[N]) -> bool:
    """Whether every member of ``independent`` is within two hops of
    another member (for sets of size >= 2).

    This is the "2-hop separation property" of the MIS chosen in [10]
    (and inherited by both of the paper's algorithms): the closest pair
    between any MIS node's component-in-the-MIS and the rest is exactly
    two hops, which is what guarantees a single connector can merge two
    dominator components (Lemma 9).
    """
    chosen = list(dict.fromkeys(independent))
    if len(chosen) <= 1:
        return True
    chosen_set = set(chosen)
    for v in chosen:
        two_hop = False
        for u in graph.neighbors(v):
            for w in graph.neighbors(u):
                if w != v and w in chosen_set:
                    two_hop = True
                    break
            if two_hop:
                break
        if not two_hop:
            return False
    return True


def m_deficient_nodes(
    graph: Graph[N], candidate: Iterable[N], m: int
) -> list[N]:
    """Nodes outside ``candidate`` with fewer than ``m`` neighbors in it.

    The m-fold analogue of :func:`undominated_nodes`: the nodes whose
    coverage demand an m-fold dominating set has not yet met.  Members
    of ``candidate`` have no demand (the Zhang et al. convention — see
    :func:`is_m_dominating_set`).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    chosen = set(candidate)
    missing: list[N] = []
    for v in graph:
        if v in chosen:
            continue
        covered = sum(1 for u in graph.neighbors(v) if u in chosen)
        if covered < m:
            missing.append(v)
    return missing


def is_m_dominating_set(
    graph: Graph[N], candidate: Iterable[N], m: int
) -> bool:
    """Every node outside ``candidate`` has at least ``m`` neighbors in it.

    The m-fold dominating set of Zhang et al. (arXiv:1510.05886):
    members cover themselves by membership, non-members need ``m``
    distinct dominators.  ``m=1`` coincides with
    :func:`is_dominating_set` (pinned by tests).

    Raises:
        ValueError: for ``m < 1``.
    """
    chosen = set(candidate)
    if not chosen <= set(graph.nodes()):
        return False
    return not m_deficient_nodes(graph, chosen, m)


def is_m_fold_cds(graph: Graph[N], candidate: Iterable[N], m: int) -> bool:
    """A ``(1, m)``-CDS: m-fold dominating and inducing a connected
    subgraph (the single-node convention of
    :func:`is_connected_dominating_set` carries over).
    """
    chosen = set(candidate)
    if not chosen:
        return False
    if not is_m_dominating_set(graph, chosen, m):
        return False
    if len(chosen) == 1:
        return True
    return induced_is_connected(graph, chosen)


def survives_node_removal(
    graph: Graph[N], candidate: Iterable[N], m: int = 1
) -> bool:
    """Whether the backbone outlives any single member's death.

    True iff for **every** ``v`` in ``candidate``, the survivor set
    ``candidate - {v}`` is still a connected m-fold dominating set of
    the *full* graph — the dead node itself included among the nodes
    that must stay dominated.  This is the operational meaning of a
    ``(2, m+1)``-CDS and the acceptance property of
    :func:`repro.cds.mfold.mfold_2conn_cds`: kill any one backbone
    node and broadcast still reaches everyone.

    A singleton backbone never survives (its only member's death leaves
    nothing), except in the degenerate single-node graph, where there
    is no surviving network to serve either — we return ``False`` there
    too, matching the "non-empty CDS" convention.
    """
    chosen = set(candidate)
    if not chosen:
        return False
    for v in chosen:
        if not is_m_fold_cds(graph, chosen - {v}, m):
            return False
    return True


def is_connected_dominating_set(graph: Graph[N], candidate: Iterable[N]) -> bool:
    """Dominating and inducing a connected subgraph.

    Single-node graphs are special: the paper's convention is that a
    single node dominates itself, and ``G[{v}]`` is (trivially)
    connected, so ``{v}`` is a CDS of the one-node graph.
    """
    chosen = set(candidate)
    if not chosen:
        return False
    if not is_dominating_set(graph, chosen):
        return False
    if len(chosen) == 1:
        return True
    return induced_is_connected(graph, chosen)
