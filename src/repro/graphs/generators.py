"""Random deployment generators.

Every empirical experiment in the reproduction runs over *instance
families*: points scattered in a square (the standard random UDG
model), clustered deployments (sensor clumps), corridors (long thin
areas that stress the connector phase), perturbed grids, and unit-
spaced chains (the paper's Figure 2 worst-case family).  All
generators take an explicit ``random.Random`` seed so instances are
reproducible, and all return plain point lists — build the topology
with :func:`repro.graphs.unit_disk_graph`.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

from ..geometry.point import Point
from .graph import Graph
from .traversal import connected_components, is_connected
from .udg import unit_disk_graph

__all__ = [
    "uniform_points",
    "uniform_disk_points",
    "clustered_points",
    "corridor_points",
    "perturbed_grid_points",
    "chain_points",
    "random_connected_udg",
    "largest_component_udg",
]


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def uniform_points(n: int, side: float, seed: int | random.Random = 0) -> list[Point]:
    """``n`` points uniform in the ``side x side`` square."""
    rng = _rng(seed)
    return [Point(rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(n)]


def uniform_disk_points(
    n: int, radius: float, seed: int | random.Random = 0
) -> list[Point]:
    """``n`` points uniform in a disk of ``radius`` around the origin."""
    rng = _rng(seed)
    pts: list[Point] = []
    for _ in range(n):
        r = radius * math.sqrt(rng.random())
        theta = rng.uniform(0.0, 2.0 * math.pi)
        pts.append(Point.polar(r, theta))
    return pts


def clustered_points(
    n: int,
    side: float,
    clusters: int,
    spread: float = 0.5,
    seed: int | random.Random = 0,
) -> list[Point]:
    """Points around ``clusters`` uniformly placed cluster heads.

    Each point picks a head uniformly and lands at a Gaussian offset
    with standard deviation ``spread``.  Models clumped sensor drops.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = _rng(seed)
    heads = [Point(rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(clusters)]
    pts: list[Point] = []
    for _ in range(n):
        head = rng.choice(heads)
        pts.append(Point(head.x + rng.gauss(0.0, spread), head.y + rng.gauss(0.0, spread)))
    return pts


def corridor_points(
    n: int, length: float, width: float, seed: int | random.Random = 0
) -> list[Point]:
    """Points uniform in a long thin ``length x width`` rectangle.

    With ``width < 1`` the UDG approaches the paper's linear worst case
    (Figure 2), making this the adversarial family for connector counts.
    """
    rng = _rng(seed)
    return [Point(rng.uniform(0.0, length), rng.uniform(0.0, width)) for _ in range(n)]


def perturbed_grid_points(
    rows: int, cols: int, spacing: float, jitter: float, seed: int | random.Random = 0
) -> list[Point]:
    """A ``rows x cols`` grid with uniform jitter in each coordinate."""
    rng = _rng(seed)
    return [
        Point(
            c * spacing + rng.uniform(-jitter, jitter),
            r * spacing + rng.uniform(-jitter, jitter),
        )
        for r in range(rows)
        for c in range(cols)
    ]


def chain_points(n: int, spacing: float = 1.0) -> list[Point]:
    """``n`` collinear points with the given consecutive spacing.

    ``spacing = 1`` is exactly the Figure 2 family.
    """
    return [Point(i * spacing, 0.0) for i in range(n)]


def random_connected_udg(
    n: int,
    side: float,
    seed: int | random.Random = 0,
    max_attempts: int = 200,
    point_factory: Callable[[int, float, random.Random], Sequence[Point]] | None = None,
) -> tuple[list[Point], Graph[Point]]:
    """A connected random UDG, by rejection sampling.

    Draws deployments (uniform square by default) until the UDG is
    connected.  ``side`` should be modest relative to ``sqrt(n)`` or
    connectivity becomes vanishingly rare; a ``ValueError`` after
    ``max_attempts`` failures signals that rather than looping forever.
    """
    rng = _rng(seed)
    for _ in range(max_attempts):
        if point_factory is None:
            pts = uniform_points(n, side, rng)
        else:
            pts = list(point_factory(n, side, rng))
        graph = unit_disk_graph(pts)
        if is_connected(graph):
            return list(pts), graph
    raise ValueError(
        f"no connected deployment of {n} nodes in side={side} after {max_attempts} tries"
    )


def largest_component_udg(
    points: Sequence[Point],
) -> tuple[list[Point], Graph[Point]]:
    """Restrict a deployment to its largest connected UDG component.

    The alternative to rejection sampling for sparse deployments: keep
    the giant component, as the empirical UDG literature convention.
    """
    graph = unit_disk_graph(points)
    comps = connected_components(graph)
    if not comps:
        return [], Graph()
    biggest = max(comps, key=len)
    kept = [p for p in points if p in set(biggest)]
    return kept, graph.subgraph(kept)
