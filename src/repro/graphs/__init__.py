"""Graph substrate: graphs, UDG builders, generators, validators."""

from .graph import Graph
from .components import IntUnionFind, UnionFind
from .indexed import IndexedGraph
from .array import ArrayGraph, gather_rows
from .backend import (
    ARRAY_AUTO_N,
    BITSET_AUTO_N,
    KERNELS,
    Backend,
    build_kernel,
    choose_kernel,
    gain_tracker,
)
from .bitset import (
    BitsetGraph,
    DominationTracker,
    bit_indices,
    iter_bits,
    mask_of,
    popcount,
)
from .traversal import (
    BFSTree,
    bfs_order,
    bfs_tree,
    dfs_tree,
    connected_components,
    eccentricity,
    indexed_bfs_tree,
    induced_is_connected,
    is_connected,
    shortest_path_lengths,
)
from .udg import (
    communication_radius_graph,
    quasi_unit_disk_graph,
    unit_disk_graph,
    unit_disk_graph_naive,
    unit_disk_graph_vectorized,
)
from .generators import (
    chain_points,
    clustered_points,
    corridor_points,
    largest_component_udg,
    perturbed_grid_points,
    random_connected_udg,
    uniform_disk_points,
    uniform_points,
)
from .properties import (
    has_two_hop_separation,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    undominated_nodes,
)
from .metrics import TopologyStats, clustering_coefficient, graph_diameter, topology_stats
from .mobility import MobilityModel, RandomWalk, RandomWaypoint, topology_events
from .convert import from_networkx, to_networkx

__all__ = [
    "Graph",
    "IndexedGraph",
    "IntUnionFind",
    "UnionFind",
    "ARRAY_AUTO_N",
    "BITSET_AUTO_N",
    "KERNELS",
    "ArrayGraph",
    "Backend",
    "BitsetGraph",
    "DominationTracker",
    "bit_indices",
    "build_kernel",
    "choose_kernel",
    "gain_tracker",
    "gather_rows",
    "iter_bits",
    "mask_of",
    "popcount",
    "BFSTree",
    "bfs_order",
    "bfs_tree",
    "dfs_tree",
    "connected_components",
    "eccentricity",
    "indexed_bfs_tree",
    "induced_is_connected",
    "is_connected",
    "shortest_path_lengths",
    "communication_radius_graph",
    "quasi_unit_disk_graph",
    "unit_disk_graph",
    "unit_disk_graph_naive",
    "unit_disk_graph_vectorized",
    "chain_points",
    "clustered_points",
    "corridor_points",
    "largest_component_udg",
    "perturbed_grid_points",
    "random_connected_udg",
    "uniform_disk_points",
    "uniform_points",
    "has_two_hop_separation",
    "is_connected_dominating_set",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "undominated_nodes",
    "from_networkx",
    "to_networkx",
    "TopologyStats",
    "clustering_coefficient",
    "graph_diameter",
    "topology_stats",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "topology_events",
]
