"""Graph substrate: graphs, UDG builders, generators, validators."""

from .graph import Graph
from .components import IntUnionFind, UnionFind
from .indexed import IndexedGraph
from .traversal import (
    BFSTree,
    bfs_order,
    bfs_tree,
    dfs_tree,
    connected_components,
    eccentricity,
    indexed_bfs_tree,
    induced_is_connected,
    is_connected,
    shortest_path_lengths,
)
from .udg import (
    communication_radius_graph,
    quasi_unit_disk_graph,
    unit_disk_graph,
    unit_disk_graph_naive,
)
from .generators import (
    chain_points,
    clustered_points,
    corridor_points,
    largest_component_udg,
    perturbed_grid_points,
    random_connected_udg,
    uniform_disk_points,
    uniform_points,
)
from .properties import (
    has_two_hop_separation,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    undominated_nodes,
)
from .metrics import TopologyStats, clustering_coefficient, graph_diameter, topology_stats
from .mobility import MobilityModel, RandomWalk, RandomWaypoint, topology_events
from .convert import from_networkx, to_networkx

__all__ = [
    "Graph",
    "IndexedGraph",
    "IntUnionFind",
    "UnionFind",
    "BFSTree",
    "bfs_order",
    "bfs_tree",
    "dfs_tree",
    "connected_components",
    "eccentricity",
    "indexed_bfs_tree",
    "induced_is_connected",
    "is_connected",
    "shortest_path_lengths",
    "communication_radius_graph",
    "quasi_unit_disk_graph",
    "unit_disk_graph",
    "unit_disk_graph_naive",
    "chain_points",
    "clustered_points",
    "corridor_points",
    "largest_component_udg",
    "perturbed_grid_points",
    "random_connected_udg",
    "uniform_disk_points",
    "uniform_points",
    "has_two_hop_separation",
    "is_connected_dominating_set",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "undominated_nodes",
    "from_networkx",
    "to_networkx",
    "TopologyStats",
    "clustering_coefficient",
    "graph_diameter",
    "topology_stats",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "topology_events",
]
