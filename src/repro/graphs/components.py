"""Disjoint-set union (union-find).

Used by the incremental gain structure of the Section IV greedy
connector phase: adding a connector ``w`` merges every component of
``G[I ∪ C]`` adjacent to ``w``, and the gain ``Δ_w q`` is the number of
distinct components merged minus one.  Union by size with full path
compression gives effectively-constant amortized operations.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["UnionFind", "IntUnionFind"]


class UnionFind(Generic[T]):
    """Disjoint sets over hashable elements.

    Elements are added lazily by :meth:`add` or the first time they
    appear in :meth:`find` / :meth:`union`.
    """

    def __init__(self, elements: Iterable[T] = ()):
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._count = 0
        for e in elements:
            self.add(e)

    def add(self, element: T) -> None:
        """Create a singleton set for ``element`` (no-op if present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._count += 1

    def __contains__(self, element: T) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def find(self, element: T) -> T:
        """Representative of the set containing ``element``.

        Adds the element as a singleton if it is new.  Iterative path
        compression (no recursion, safe for deep chains).
        """
        parent = self._parent
        if element not in parent:
            self.add(element)
            return element
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: T, b: T) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns True if a merge happened (they were in different sets).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """Whether two elements are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, element: T) -> int:
        """Size of the set containing ``element``."""
        return self._size[self.find(element)]

    def sets(self) -> list[list[T]]:
        """All disjoint sets, each as a list, in first-seen root order."""
        by_root: dict[T, list[T]] = {}
        for e in self._parent:
            by_root.setdefault(self.find(e), []).append(e)
        return list(by_root.values())


class IntUnionFind:
    """Disjoint sets over the dense ids ``0..n-1``, on flat arrays.

    The counterpart of :class:`UnionFind` for interned graphs
    (:class:`repro.graphs.indexed.IndexedGraph`): parents and sizes live
    in plain lists, so ``find`` is pure integer indexing with no hashing.
    All ``n`` elements exist as singletons from construction; there is
    no lazy :meth:`~UnionFind.add`.
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, n: int):
        self._parent = list(range(n))
        self._size = [1] * n
        self._count = n

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def find(self, i: int) -> int:
        """Representative of the set containing ``i``.

        Iterative path compression, as in :class:`UnionFind`.
        """
        parent = self._parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns True if a merge happened (they were in different sets).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether two elements are in the same set."""
        return self.find(a) == self.find(b)
