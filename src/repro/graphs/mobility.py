"""Mobility models for wireless ad hoc networks.

The deployments elsewhere in the library are static snapshots; this
module generates *trajectories* so the dynamic-maintenance and
robustness experiments can exercise position-driven topology churn
(edges appearing and disappearing while the node set stays fixed).

Two standard models:

* **random waypoint** — each node repeatedly picks a uniform waypoint
  in the field and moves toward it at a per-leg uniform speed, pausing
  between legs;
* **random walk** — each node takes a bounded random step per tick,
  reflecting off the field boundary.

Both are seeded and yield per-tick position maps; feed consecutive
snapshots to :func:`topology_events` to get the edge delta, or to
:class:`repro.cds.maintenance.DynamicCDS.move_node` to maintain a
backbone across motion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterator

from ..geometry.point import Point

__all__ = [
    "MobilityModel",
    "RandomWaypoint",
    "RandomWalk",
    "topology_events",
]


@dataclass(frozen=True)
class _Leg:
    """One movement leg of a waypoint node."""

    target: Point
    speed: float
    pause_left: float


class MobilityModel:
    """Base: iterate position snapshots for a fixed node population."""

    def __init__(self, positions: dict[Hashable, Point], side: float, seed: int = 0):
        if side <= 0.0:
            raise ValueError("field side must be positive")
        for node, p in positions.items():
            if not (0.0 <= p.x <= side and 0.0 <= p.y <= side):
                raise ValueError(f"node {node!r} starts outside the field")
        self.positions = dict(positions)
        self.side = side
        self.rng = random.Random(seed)

    def step(self, dt: float = 1.0) -> dict[Hashable, Point]:
        """Advance all nodes by ``dt`` and return the new snapshot."""
        raise NotImplementedError

    def snapshots(self, steps: int, dt: float = 1.0) -> Iterator[dict[Hashable, Point]]:
        """Yield ``steps`` successive snapshots (after each step)."""
        for _ in range(steps):
            yield self.step(dt)

    def _clamp(self, p: Point) -> Point:
        return Point(min(max(p.x, 0.0), self.side), min(max(p.y, 0.0), self.side))


class RandomWaypoint(MobilityModel):
    """The random waypoint model.

    Args:
        positions: initial node positions inside the field.
        side: field side length.
        speed_range: (min, max) speed per leg.
        pause_range: (min, max) pause after reaching a waypoint.
        seed: RNG seed (model is fully deterministic given it).
    """

    def __init__(
        self,
        positions: dict[Hashable, Point],
        side: float,
        speed_range: tuple[float, float] = (0.05, 0.3),
        pause_range: tuple[float, float] = (0.0, 2.0),
        seed: int = 0,
    ):
        super().__init__(positions, side, seed)
        if not (0.0 < speed_range[0] <= speed_range[1]):
            raise ValueError("speeds must be positive and ordered")
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._legs: dict[Hashable, _Leg] = {
            node: self._new_leg() for node in self.positions
        }

    def _new_leg(self) -> _Leg:
        return _Leg(
            target=Point(
                self.rng.uniform(0.0, self.side), self.rng.uniform(0.0, self.side)
            ),
            speed=self.rng.uniform(*self.speed_range),
            pause_left=0.0,
        )

    def step(self, dt: float = 1.0) -> dict[Hashable, Point]:
        for node in self.positions:
            leg = self._legs[node]
            if leg.pause_left > 0.0:
                self._legs[node] = _Leg(leg.target, leg.speed, leg.pause_left - dt)
                continue
            here = self.positions[node]
            to_target = leg.target - here
            dist = to_target.norm()
            travel = leg.speed * dt
            if travel >= dist:
                self.positions[node] = leg.target
                pause = self.rng.uniform(*self.pause_range)
                fresh = self._new_leg()
                self._legs[node] = _Leg(fresh.target, fresh.speed, pause)
            else:
                self.positions[node] = here + to_target * (travel / dist)
        return dict(self.positions)


class RandomWalk(MobilityModel):
    """Bounded random steps with boundary reflection."""

    def __init__(
        self,
        positions: dict[Hashable, Point],
        side: float,
        step_size: float = 0.2,
        seed: int = 0,
    ):
        super().__init__(positions, side, seed)
        if step_size <= 0.0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size

    def step(self, dt: float = 1.0) -> dict[Hashable, Point]:
        for node, here in self.positions.items():
            angle = self.rng.uniform(0.0, 6.283185307179586)
            moved = here + Point.polar(self.step_size * dt, angle)
            # Reflect off the walls.
            x, y = moved.x, moved.y
            if x < 0.0:
                x = -x
            if x > self.side:
                x = 2.0 * self.side - x
            if y < 0.0:
                y = -y
            if y > self.side:
                y = 2.0 * self.side - y
            self.positions[node] = self._clamp(Point(x, y))
        return dict(self.positions)


def topology_events(
    before: dict[Hashable, Point],
    after: dict[Hashable, Point],
    radius: float = 1.0,
) -> tuple[list[tuple[Hashable, Hashable]], list[tuple[Hashable, Hashable]]]:
    """Edge delta between two snapshots of the same node set.

    Returns ``(appeared, disappeared)`` edge lists, each edge as an
    ordered pair ``(u, v)`` with ``u < v`` by node order.

    Raises:
        ValueError: if the snapshots have different node sets.
    """
    if set(before) != set(after):
        raise ValueError("snapshots must cover the same nodes")
    nodes = sorted(before)
    appeared: list[tuple[Hashable, Hashable]] = []
    disappeared: list[tuple[Hashable, Hashable]] = []
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            was = before[u].distance_to(before[v]) <= radius
            now = after[u].distance_to(after[v]) <= radius
            if now and not was:
                appeared.append((u, v))
            elif was and not now:
                disappeared.append((u, v))
    return appeared, disappeared
