"""Biconnectivity: cut vertices, blocks, and ``is_k_connected`` (k ≤ 2).

The paper's backbone is a plain CDS — one node failure can sever it.
The fault-tolerant variants in :mod:`repro.cds.mfold` need the classic
structural machinery: which backbone nodes are *cut vertices* of the
induced backbone subgraph, and which maximal 2-connected *blocks* they
stitch together.  This module implements the Hopcroft–Tarjan lowpoint
algorithm iteratively (no recursion limit at 10⁵-node scale) over the
same kernel seam every solver phase uses: any :class:`Backend` view —
:class:`~repro.graphs.indexed.IndexedGraph`,
:class:`~repro.graphs.bitset.BitsetGraph`,
:class:`~repro.graphs.array.ArrayGraph` — or a plain dict-based
:class:`Graph`, which is interned on the fly.

Results are expressed in original node labels and are deterministic:
DFS roots follow the view's id order (the source graph's insertion
order) and children follow adjacency order, so every kernel reports
bit-identical cut sets and block lists.

Conventions (documented because the small cases matter to validators):

* ``cut_vertices``: nodes whose removal increases the number of
  connected components.  Defined for disconnected graphs too (each
  component is scanned).
* ``blocks``: maximal sets of nodes with no internal cut vertex — the
  biconnected components, as node lists.  A bridge contributes a
  2-node block; an isolated node a 1-node block.
* ``is_biconnected``: connected with no cut vertex.  ``K1`` and ``K2``
  count as biconnected under this convention (it is exactly the
  "survives any single node deletion while non-empty" property the
  augmentation pass targets).
* ``is_k_connected``: the strict textbook notion — ``|V| > k`` and no
  set of ``k-1`` vertices disconnects.  So ``K2`` is 1-connected but
  *not* 2-connected.  Only ``k ∈ {1, 2}`` is implemented.
"""

from __future__ import annotations

from typing import Hashable, Sequence, TypeVar

from ..obs import OBS
from .backend import Backend, adjacency_rows
from .graph import Graph
from .indexed import IndexedGraph

N = TypeVar("N", bound=Hashable)

__all__ = [
    "articulation_ids",
    "blocks",
    "cut_vertices",
    "is_biconnected",
    "is_k_connected",
]


def _as_rows(graph: "Graph[N] | Backend") -> tuple[Sequence, tuple]:
    """``(adjacency rows, node tuple)`` for a Graph or any kernel view."""
    if isinstance(graph, Graph):
        view: Backend = IndexedGraph.from_graph(graph)
    else:
        view = graph
    return adjacency_rows(view), view.nodes


def articulation_ids(rows: Sequence) -> list[int]:
    """Dense ids of the cut vertices, given adjacency rows.

    The iterative Hopcroft–Tarjan lowpoint scan: one DFS per component
    (roots in id order, children in adjacency order), a non-root is an
    articulation point iff some DFS child ``c`` has ``low[c] >=
    disc[v]``, a root iff it has two or more DFS children.  Runs in
    ``O(n + m)`` and touches no node objects — callers intern once and
    reuse the rows across phases.
    """
    n = len(rows)
    disc = [-1] * n
    low = [0] * n
    out: list[int] = []
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        root_children = 0
        # Stack frames: (node, parent, iterator position into rows[node]).
        disc[root] = low[root] = timer = timer + 1
        stack = [(root, -1, 0)]
        while stack:
            v, parent, i = stack[-1]
            row = rows[v]
            if i < len(row):
                stack[-1] = (v, parent, i + 1)
                u = row[i]
                if disc[u] == -1:
                    if v == root:
                        root_children += 1
                    timer += 1
                    disc[u] = low[u] = timer
                    stack.append((u, v, 0))
                elif u != parent:
                    if disc[u] < low[v]:
                        low[v] = disc[u]
            else:
                stack.pop()
                if stack:
                    pv = stack[-1][0]
                    if low[v] < low[pv]:
                        low[pv] = low[v]
                    if pv != root and low[v] >= disc[pv] and not _seen(out, pv):
                        out.append(pv)
        if root_children >= 2 and not _seen(out, root):
            out.append(root)
    if OBS.enabled:
        OBS.incr("biconn.dfs_nodes", n)
        OBS.incr("biconn.cut_vertices", len(out))
    return sorted(out)


def _seen(out: list[int], v: int) -> bool:
    # Articulation points can be re-discovered once per child subtree;
    # the list stays tiny (<= n), and a membership scan on it beats
    # allocating a bytearray per call at the sizes the augmentation
    # loop hits this with (induced backbones).
    return v in out


def cut_vertices(graph: "Graph[N] | Backend") -> set:
    """The cut vertices of ``graph``, as original node objects.

    Accepts a dict-based :class:`Graph` or any kernel view; components
    are handled independently, so the input need not be connected.
    """
    rows, nodes = _as_rows(graph)
    return {nodes[i] for i in articulation_ids(rows)}


def blocks(graph: "Graph[N] | Backend") -> list[list]:
    """The biconnected components (blocks), as lists of original nodes.

    Each block is a maximal vertex set inducing a subgraph with no
    internal cut vertex; cut vertices appear in every block they join.
    Isolated nodes form singleton blocks.  Output order is
    deterministic: blocks are emitted as the DFS finishes them, nodes
    within a block in ascending dense-id order.
    """
    rows, nodes = _as_rows(graph)
    n = len(rows)
    disc = [-1] * n
    low = [0] * n
    timer = 0
    edge_stack: list[tuple[int, int]] = []
    out: list[list] = []

    def pop_block(v: int, u: int) -> None:
        members: set[int] = set()
        while edge_stack:
            a, b = edge_stack[-1]
            members.add(a)
            members.add(b)
            edge_stack.pop()
            if (a, b) == (v, u):
                break
        out.append([nodes[i] for i in sorted(members)])

    for root in range(n):
        if disc[root] != -1:
            continue
        if not len(rows[root]):
            out.append([nodes[root]])
            disc[root] = timer = timer + 1
            continue
        disc[root] = low[root] = timer = timer + 1
        stack = [(root, -1, 0)]
        while stack:
            v, parent, i = stack[-1]
            row = rows[v]
            if i < len(row):
                stack[-1] = (v, parent, i + 1)
                u = row[i]
                if disc[u] == -1:
                    edge_stack.append((v, u))
                    timer += 1
                    disc[u] = low[u] = timer
                    stack.append((u, v, 0))
                elif u != parent and disc[u] < disc[v]:
                    edge_stack.append((v, u))
                    if disc[u] < low[v]:
                        low[v] = disc[u]
            else:
                stack.pop()
                if stack:
                    pv = stack[-1][0]
                    if low[v] < low[pv]:
                        low[pv] = low[v]
                    if low[v] >= disc[pv]:
                        pop_block(pv, v)
    return out


def is_biconnected(graph: "Graph[N] | Backend") -> bool:
    """Connected with no cut vertex (``K1``/``K2`` count as biconnected).

    This is the exact property
    :func:`repro.cds.mfold.augment_biconnected` establishes on the
    backbone: the induced subgraph stays connected (or becomes empty)
    after deleting any single node.
    """
    rows, _ = _as_rows(graph)
    n = len(rows)
    if n == 0:
        return False
    if n == 1:
        return True
    if not _rows_connected(rows):
        return False
    return not articulation_ids(rows)


def is_k_connected(graph: "Graph[N] | Backend", k: int) -> bool:
    """Strict vertex connectivity test for ``k ∈ {1, 2}``.

    ``k=1`` is plain connectivity (of a non-empty graph); ``k=2``
    requires ``|V| >= 3``, connectivity, and no cut vertex.  Higher
    ``k`` would need a flow computation this codebase has no use for
    yet, so it raises.

    Raises:
        ValueError: for ``k`` outside ``{1, 2}``.
    """
    if k not in (1, 2):
        raise ValueError(f"is_k_connected implements k in {{1, 2}}, got {k}")
    rows, _ = _as_rows(graph)
    n = len(rows)
    if n == 0 or (k == 2 and n < 3):
        return False
    if not _rows_connected(rows):
        return False
    return k == 1 or not articulation_ids(rows)


def _rows_connected(rows: Sequence) -> bool:
    """BFS reachability from id 0 over adjacency rows."""
    n = len(rows)
    seen = bytearray(n)
    seen[0] = 1
    frontier = [0]
    count = 1
    while frontier:
        nxt: list[int] = []
        for v in frontier:
            for u in rows[v]:
                if not seen[u]:
                    seen[u] = 1
                    count += 1
                    nxt.append(u)
        frontier = nxt
    return count == n
