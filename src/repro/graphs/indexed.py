"""The indexed graph kernel: interned nodes over CSR adjacency arrays.

:class:`Graph` stores adjacency as dict-of-dicts keyed by arbitrary
hashable nodes — ideal for construction and set-algebra, but every
neighborhood scan pays a hash lookup per step.  The algorithms that
dominate the profile (BFS phase 1, the WAF coverage scan, the greedy
connector phase) only ever *read* a frozen topology, so they can run on
a flat, integer-indexed view instead:

* ``nodes[i]`` interns each node to a dense integer id ``i`` in the
  graph's (deterministic, insertion-order) iteration order;
* ``indptr`` / ``indices`` are CSR-style flat arrays: the neighbors of
  node ``i`` are ``indices[indptr[i]:indptr[i+1]]``, preserving the
  adjacency insertion order of the source graph so every traversal
  visits neighbors in exactly the order the dict-based code would.

Build the view once per algorithm run (:meth:`IndexedGraph.from_graph`
is ``O(V + E)``) and hand it to as many phases as want it; because it
preserves iteration and adjacency order, algorithms on the view are
bit-identical to their dict-based counterparts, just cheaper per step.
The view is a snapshot — mutating the source :class:`Graph` afterwards
does not update it.
"""

from __future__ import annotations

from itertools import accumulate, chain
from typing import Generic, Hashable, Iterator, TypeVar

from .graph import Graph

N = TypeVar("N", bound=Hashable)

__all__ = ["IndexedGraph"]


class IndexedGraph(Generic[N]):
    """A frozen CSR view of a :class:`Graph` with interned integer ids.

    All per-id methods take and return dense integers in
    ``range(len(self))``; :attr:`nodes` and :meth:`id_of` translate at
    the boundary.  The flat arrays are exposed read-only so hot loops
    can bind them to locals instead of calling methods per step.
    """

    __slots__ = ("_nodes", "_ids", "_indptr", "_indices")

    def __init__(
        self,
        nodes: tuple,
        ids: dict,
        indptr: list[int],
        indices: list[int],
    ):
        self._nodes = nodes
        self._ids = ids
        self._indptr = indptr
        self._indices = indices

    @classmethod
    def from_graph(cls, graph: Graph[N]) -> "IndexedGraph[N]":
        """Intern ``graph`` into a CSR view (``O(V + E)``, built once).

        Neighbor ids are resolved through an ``id(object)`` map first:
        builders that reuse node objects (every UDG builder does) then
        intern each neighbor with one C-level identity lookup instead
        of hashing the node value per adjacency entry.  A graph whose
        adjacency holds equal-but-distinct objects falls back to the
        equality-based map; the resulting view is identical.
        """
        adj = graph._adj  # noqa: SLF001 - same-package fast path
        nodes = tuple(adj)
        ids = {node: i for i, node in enumerate(nodes)}
        by_identity = {id(node): i for i, node in enumerate(nodes)}
        rows = adj.values()
        indptr = [0, *accumulate(map(len, rows))]
        get = by_identity.__getitem__
        try:
            indices = list(map(get, map(id, chain.from_iterable(rows))))
        except KeyError:
            # Some neighbor entry is an equal-but-distinct object; redo
            # the whole scan through the equality map.
            get = ids.__getitem__
            indices = list(map(get, chain.from_iterable(rows)))
        return cls(nodes, ids, indptr, indices)

    # -- boundary translation -------------------------------------------------

    @property
    def nodes(self) -> tuple:
        """Original node objects; ``nodes[i]`` is the node with id ``i``."""
        return self._nodes

    def id_of(self, node: N) -> int:
        """The dense id of ``node``.

        Raises:
            KeyError: if the node was not in the source graph.
        """
        return self._ids[node]

    def node_at(self, i: int) -> N:
        return self._nodes[i]

    def __contains__(self, node: N) -> bool:
        return node in self._ids

    # -- flat arrays ----------------------------------------------------------

    @property
    def indptr(self) -> list[int]:
        """CSR row pointers; neighbors of ``i`` span ``indptr[i]:indptr[i+1]``."""
        return self._indptr

    @property
    def indices(self) -> list[int]:
        """CSR column indices: all neighbor ids, flat."""
        return self._indices

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._nodes)))

    def degree(self, i: int) -> int:
        return self._indptr[i + 1] - self._indptr[i]

    def neighbors(self, i: int) -> list[int]:
        """Neighbor ids of ``i``, in source adjacency insertion order."""
        return self._indices[self._indptr[i] : self._indptr[i + 1]]

    def edge_count(self) -> int:
        return len(self._indices) // 2

    # -- traversal primitives -------------------------------------------------

    def bfs(self, root: int) -> tuple[list[int], list[int], list[int]]:
        """BFS over ``root``'s component, entirely on dense ids.

        Returns ``(order, parent, depth)`` where ``order`` lists the
        visited ids, and ``parent`` / ``depth`` are dense arrays with
        ``-1`` for unvisited ids (``parent[root]`` is also ``-1``).
        Neighbors are expanded in adjacency insertion order, so
        ``order`` matches :func:`repro.graphs.traversal.bfs_tree` on the
        source graph node-for-node.
        """
        n = len(self._nodes)
        indptr, indices = self._indptr, self._indices
        parent = [-1] * n
        depth = [-1] * n
        depth[root] = 0
        order = [root]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            du = depth[u] + 1
            for v in indices[indptr[u] : indptr[u + 1]]:
                if depth[v] < 0:
                    depth[v] = du
                    parent[v] = u
                    order.append(v)
        return order, parent, depth

    def bfs_order(self, root: int) -> list[int]:
        """Just the BFS visit order of ``root``'s component.

        Same order as :meth:`bfs` without materializing the parent and
        depth arrays — the visited check is one byte read.
        """
        indptr, indices = self._indptr, self._indices
        seen = bytearray(len(self._nodes))
        seen[root] = 1
        order = [root]
        append = order.append
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for v in indices[indptr[u] : indptr[u + 1]]:
                if not seen[v]:
                    seen[v] = 1
                    append(v)
        return order

    def connected_components(self) -> list[list[int]]:
        """Components as id lists, each in BFS order, in first-id order.

        Mirrors :func:`repro.graphs.traversal.connected_components` on
        the source graph (same components, same orders, as ids).
        """
        n = len(self._nodes)
        indptr, indices = self._indptr, self._indices
        seen = bytearray(n)
        comps: list[list[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = 1
            order = [start]
            head = 0
            while head < len(order):
                u = order[head]
                head += 1
                for v in indices[indptr[u] : indptr[u + 1]]:
                    if not seen[v]:
                        seen[v] = 1
                        order.append(v)
            comps.append(order)
        return comps

    def is_connected(self) -> bool:
        """Whether the view is connected.  The empty graph is not."""
        if not self._nodes:
            return False
        return len(self.bfs_order(0)) == len(self._nodes)

    def __repr__(self) -> str:
        return f"IndexedGraph(|V|={len(self)}, |E|={self.edge_count()})"
