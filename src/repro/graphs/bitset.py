"""The bitset graph kernel: neighborhoods as Python big-int bitmasks.

:class:`~repro.graphs.indexed.IndexedGraph` (PR 2) made neighborhood
*iteration* cheap; the hot loops that remained — "does ``v`` have a
selected neighbor?", "how many MIS nodes does ``u`` cover?", "which
components is ``w`` adjacent to?" — are all *set operations over
neighborhoods*, and a set over dense ids ``0..n-1`` is exactly one
Python ``int`` used as a bitmask.  CPython evaluates ``&``/``|`` over
those ints 64 bits per machine word in C, so a membership-heavy scan
that costs ``O(deg)`` interpreted steps per node on the CSR kernel
costs ``O(n/64)`` *word* operations on this one.

:class:`BitsetGraph` layers per-node open/closed neighborhood masks on
an :class:`IndexedGraph` (same dense ids, same node interning — the two
views are interchangeable at every ``index=`` seam), and
:class:`DominationTracker` maintains the one mask every coverage-style
scan wants: the still-uncovered node set.  The module-level primitives
(:func:`popcount`, :func:`bit_indices`, :func:`iter_bits`,
:func:`mask_of`) are the shared vocabulary of every bitset hot path.

Masks cost ``⌈n/8⌉`` bytes per node (≈1.25 KB at ``n = 10 000``, so
≈12.5 MB per full mask set); kernel selection lives in
:mod:`repro.graphs.backend` (:func:`choose_kernel`'s three-way auto
table picks the representation per instance size — see
``docs/performance.md`` for the measured crossovers).  The selection
helpers are re-exported here for backward compatibility.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, Sequence, TypeVar

from ..geometry.point import Point
from ..obs import OBS
from .backend import (  # noqa: F401  (re-exported: historical home)
    ARRAY_AUTO_N,
    BITSET_AUTO_N,
    KERNELS,
    build_kernel,
    choose_kernel,
)
from .graph import Graph
from .indexed import IndexedGraph

N = TypeVar("N", bound=Hashable)

__all__ = [
    "ARRAY_AUTO_N",
    "BITSET_AUTO_N",
    "KERNELS",
    "BitsetGraph",
    "DominationTracker",
    "bit_indices",
    "build_kernel",
    "choose_kernel",
    "iter_bits",
    "mask_of",
    "popcount",
    "value_sort_keys",
]

#: Bit positions set in each possible byte value — the lookup table
#: behind :func:`bit_indices` / :func:`iter_bits`.
_BYTE_BITS = tuple(
    tuple(b for b in range(8) if byte >> b & 1) for byte in range(256)
)


def value_sort_keys(nodes: Sequence) -> Sequence:
    """Comparison keys that order exactly as the nodes themselves do.

    :class:`~repro.geometry.point.Point` is the ubiquitous node type
    and its ordering *is* the lexicographic ``(x, y)`` order, so an
    all-``Point`` sequence gets plain coordinate tuples — compared in C
    — in place of ``O(n log n)`` interpreted ``__lt__`` calls when
    sorting every node (the gain tracker's value ranking, the default
    root choice).  Any other sequence is returned unchanged, keys being
    the nodes themselves.
    """
    if all(type(p) is Point for p in nodes):
        return [(p.x, p.y) for p in nodes]
    return nodes


def popcount(mask: int) -> int:
    """Number of set bits (population count) of a non-negative mask."""
    return mask.bit_count()


def bit_indices(mask: int) -> list[int]:
    """The set-bit positions of ``mask``, ascending, as a list.

    Adaptive: sparse masks are drained lowest-set-bit first (``m & -m``
    — a few big-int ops per set bit), dense ones byte-at-a-time over
    the mask's little-endian bytes with a 256-entry lookup table
    (``O(n/8)`` byte steps plus one step per set bit).  The crossover
    sits around one set bit per three bytes of mask width.
    """
    if mask.bit_count() * 24 < mask.bit_length():
        out = []
        append = out.append
        while mask:
            lsb = mask & -mask
            append(lsb.bit_length() - 1)
            mask ^= lsb
        return out
    table = _BYTE_BITS
    return [
        (i << 3) + b
        for i, byte in enumerate(
            mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
        )
        if byte
        for b in table[byte]
    ]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask``, ascending.

    The generator twin of :func:`bit_indices` for callers that may
    stop early; hot loops that always consume everything should prefer
    the list form.
    """
    table = _BYTE_BITS
    for i, byte in enumerate(
        mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
    ):
        if byte:
            base = i << 3
            for b in table[byte]:
                yield base + b


def mask_of(ids: Sequence[int] | Iterator[int], nbits: int) -> int:
    """The bitmask with exactly the given id bits set.

    Builds through a ``bytearray`` so the cost is one byte write per id
    plus a single ``int.from_bytes`` — no ``O(n/64)``-word big-int
    shift per element.
    """
    row = bytearray((nbits + 7) >> 3)
    for i in ids:
        row[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(row, "little")


def _masks_from_csr(n: int, indptr: list[int], indices: list[int]) -> list[int]:
    """All ``n`` per-node neighborhood masks from CSR arrays, one pass.

    Each row is ``sum(1 << u for u in row)`` — equal to the OR because
    CSR rows are duplicate-free — computed as a C-level ``sum(map(...))``
    over a power-of-two table, which beats both per-bit shifting and a
    bytearray-then-``from_bytes`` assembly.  The table is local so the
    ``O(n²/8)``-byte scratch is freed with the call.
    """
    pow2 = [1] * n
    p = 1
    for i in range(1, n):
        p <<= 1
        pow2[i] = p
    get = pow2.__getitem__
    return [
        sum(map(get, indices[indptr[i] : indptr[i + 1]])) for i in range(n)
    ]


class BitsetGraph(Generic[N]):
    """Neighborhood bitmasks layered on a CSR :class:`IndexedGraph`.

    Shares the underlying view's dense ids and node interning, so the
    two kernels are interchangeable wherever an ``index=`` argument is
    accepted; algorithms pick whichever representation fits the scan.
    Mask sets are built lazily (open and closed neighborhoods are
    separate allocations of ``n·⌈n/8⌉`` bytes each) and cached.
    """

    __slots__ = ("indexed", "_neighbor_masks", "_closed_masks", "_row_cache")

    def __init__(self, indexed: IndexedGraph[N]):
        self.indexed = indexed
        self._neighbor_masks: list[int] | None = None
        self._closed_masks: list[int] | None = None
        self._row_cache: dict[int, int] = {}

    @classmethod
    def from_indexed(cls, index: IndexedGraph[N]) -> "BitsetGraph[N]":
        """Wrap an existing CSR view (masks are built on first use)."""
        return cls(index)

    @classmethod
    def from_graph(cls, graph: Graph[N]) -> "BitsetGraph[N]":
        return cls(IndexedGraph.from_graph(graph))

    # -- mask sets ------------------------------------------------------------

    @property
    def neighbor_masks(self) -> list[int]:
        """Open neighborhood masks: bit ``u`` of ``neighbor_masks[i]``
        is set iff ``u`` is adjacent to ``i``."""
        masks = self._neighbor_masks
        if masks is None:
            index = self.indexed
            masks = _masks_from_csr(len(index), index.indptr, index.indices)
            self._neighbor_masks = masks
            if OBS.enabled:
                OBS.incr("bitset.word_ops", len(index) * self.words)
        return masks

    @property
    def closed_masks(self) -> list[int]:
        """Closed neighborhood masks: ``neighbor_masks[i] | (1 << i)``."""
        masks = self._closed_masks
        if masks is None:
            nbr = self.neighbor_masks
            masks = [m | (1 << i) for i, m in enumerate(nbr)]
            self._closed_masks = masks
            if OBS.enabled:
                OBS.incr("bitset.word_ops", len(nbr) * self.words)
        return masks

    @property
    def full_mask(self) -> int:
        """All node bits set: ``(1 << n) - 1``."""
        return (1 << len(self.indexed)) - 1

    @property
    def words(self) -> int:
        """Machine words per whole-graph mask (``⌈n/64⌉``) — the unit
        the ``bitset.word_ops`` counter charges per mask operation."""
        return (len(self.indexed) + 63) >> 6

    # -- delegation to the CSR view -------------------------------------------

    @property
    def nodes(self) -> tuple:
        return self.indexed.nodes

    def id_of(self, node: N) -> int:
        return self.indexed.id_of(node)

    def node_at(self, i: int) -> N:
        return self.indexed.node_at(i)

    def __contains__(self, node: N) -> bool:
        return node in self.indexed

    def __len__(self) -> int:
        return len(self.indexed)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indexed)

    def degree(self, i: int) -> int:
        return self.indexed.degree(i)

    def edge_count(self) -> int:
        return self.indexed.edge_count()

    def bfs(self, root: int) -> tuple[list[int], list[int], list[int]]:
        """Order-preserving BFS, delegated to the CSR view (a
        frontier-OR bitset BFS would visit neighbors in ascending-id
        order, not adjacency insertion order, breaking bit-identity)."""
        return self.indexed.bfs(root)

    def bfs_order(self, root: int) -> list[int]:
        return self.indexed.bfs_order(root)

    def connected_components(self) -> list[list[int]]:
        return self.indexed.connected_components()

    def is_connected(self) -> bool:
        return self.indexed.is_connected()

    # -- bitset queries -------------------------------------------------------

    def neighbor_mask(self, i: int) -> int:
        """The open neighborhood of ``i`` as a mask.

        Served from the cached full mask set when built; otherwise the
        single row is assembled from the CSR arrays in ``O(deg(i))``
        and memoized, so callers that touch only some nodes (the MIS
        scan covers ``|I|`` of ``n``, the WAF coverage scan
        ``deg(root)``) never pay for the ``n``-row bulk build, and rows
        are shared across phases — the gain tracker reuses the
        dominator rows the MIS cover scan already built.
        """
        masks = self._neighbor_masks
        if masks is not None:
            return masks[i]
        cache = self._row_cache
        m = cache.get(i)
        if m is None:
            index = self.indexed
            m = cache[i] = mask_of(index.neighbors(i), len(index))
        return m

    def closed_mask(self, i: int) -> int:
        """The closed neighborhood ``N[i]`` as a mask (row-on-demand,
        like :meth:`neighbor_mask`)."""
        masks = self._closed_masks
        if masks is not None:
            return masks[i]
        return self.neighbor_mask(i) | (1 << i)

    def adjacency_count(self, i: int, mask: int) -> int:
        """``|N(i) ∩ mask|`` — one AND plus a popcount."""
        if OBS.enabled:
            OBS.incr("bitset.word_ops", self.words)
            OBS.incr("bitset.popcounts")
        return (self.neighbor_mask(i) & mask).bit_count()

    def __repr__(self) -> str:
        return f"BitsetGraph(|V|={len(self)}, |E|={self.edge_count()})"


class DominationTracker:
    """The uncovered-node set of a growing dominating set, as one mask.

    Every coverage-style scan in the two-phased framework asks the same
    two questions — "is ``v`` still uncovered?" and "cover ``N[v]``" —
    so the tracker keeps the uncovered set in both representations each
    question wants: a bitmask for word-parallel covering (one
    ``AND NOT`` with the closed neighborhood) and a flat byte array for
    O(1) membership tests.  Total maintenance cost over a full run is
    ``O(n)`` byte writes plus ``O(#covers · n/64)`` word operations,
    because every node leaves the uncovered set exactly once.
    """

    __slots__ = ("_bitset", "_uncovered", "_flags")

    def __init__(self, bitset: BitsetGraph, targets: int | None = None):
        """Track coverage of ``targets`` (a mask; default: all nodes)."""
        self._bitset = bitset
        full = bitset.full_mask
        self._uncovered = full if targets is None else (targets & full)
        flags = bytearray(len(bitset))
        for i in bit_indices(full & ~self._uncovered):
            flags[i] = 1
        self._flags = flags

    @property
    def uncovered_mask(self) -> int:
        """The uncovered set as a bitmask."""
        return self._uncovered

    @property
    def covered_flags(self) -> bytearray:
        """Per-id covered bytes (1 = covered) — bind locally in scans;
        treat as read-only."""
        return self._flags

    @property
    def uncovered_count(self) -> int:
        if OBS.enabled:
            OBS.incr("bitset.popcounts")
        return self._uncovered.bit_count()

    @property
    def all_covered(self) -> bool:
        return not self._uncovered

    def is_uncovered(self, i: int) -> bool:
        return not self._flags[i]

    def uncovered_ids(self) -> list[int]:
        """Ids still uncovered, ascending."""
        return bit_indices(self._uncovered)

    def cover(self, i: int) -> int:
        """Mark ``N[i]`` covered; returns how many nodes that newly covered."""
        closed = self._bitset.closed_mask(i)
        newly = self._uncovered & closed
        if not newly:
            return 0
        self._uncovered &= ~closed
        flags = self._flags
        count = 0
        while newly:
            lsb = newly & -newly
            flags[lsb.bit_length() - 1] = 1
            newly ^= lsb
            count += 1
        if OBS.enabled:
            OBS.incr("bitset.word_ops", 3 * self._bitset.words)
            OBS.incr("bitset.popcounts")
        return count
