"""Schema validation as a command: ``python -m repro.obs.validate rec.json``.

Exits 0 when every given file is valid, 1 otherwise, printing each
violation — what the CI smoke jobs run against the artifacts the CLI
emits.  Two formats are recognised, sniffed per file:

* a ``repro.obs/run-record/v1`` JSON record (``--stats-out``),
  including the optional ``histograms`` section (finite bucket bounds,
  non-negative cumulative-monotone counts);
* a ``repro.obs/metrics-snapshot/v1`` JSONL stream (``--metrics-out``),
  validated line by line.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Sequence

from .record import SCHEMA_ID, validate_run_record

__all__ = ["main"]


def _validate_file(name: str, text: str) -> list[str]:
    """Violations in ``text``, whichever format it is."""
    from .expose import SNAPSHOT_SCHEMA_ID, validate_snapshot

    lines = [line for line in text.splitlines() if line.strip()]
    try:
        obj = json.loads(text)
    except ValueError:
        obj = None
    if obj is not None and not (
        isinstance(obj, dict) and obj.get("schema") == SNAPSHOT_SCHEMA_ID
    ):
        return validate_run_record(obj)
    # Not a single run record: treat as a snapshot stream (also covers
    # the degenerate one-line stream).
    errors: list[str] = []
    parsed_any = False
    for lineno, line in enumerate(lines, start=1):
        try:
            snap = json.loads(line)
        except ValueError as exc:
            if lineno == len(lines):
                continue  # torn trailing write, tolerated like readers do
            errors.append(f"line {lineno}: invalid JSON: {exc}")
            continue
        parsed_any = True
        errors.extend(f"line {lineno}: {e}" for e in validate_snapshot(snap))
    if not parsed_any and not errors:
        errors.append("no parseable JSON content")
    return errors


def _schema_of(text: str) -> str:
    from .expose import SNAPSHOT_SCHEMA_ID

    for line in text.splitlines():
        if line.strip():
            return SNAPSHOT_SCHEMA_ID if f'"{SNAPSHOT_SCHEMA_ID}"' in line else SCHEMA_ID
    return SCHEMA_ID


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print(
            "usage: python -m repro.obs.validate <record.json|snapshots.jsonl> [...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in args:
        try:
            text = Path(name).read_text()
        except OSError as exc:
            print(f"{name}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = _validate_file(name, text)
        if errors:
            failures += 1
            for err in errors:
                print(f"{name}: {err}", file=sys.stderr)
        else:
            print(f"{name}: valid {_schema_of(text)}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
