"""Schema validation as a command: ``python -m repro.obs.validate rec.json``.

Exits 0 when every given file is a valid ``RunRecord``, 1 otherwise,
printing each violation — what the CI smoke job runs against the
record emitted by ``python -m repro T8 --stats-out``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Sequence

from .record import SCHEMA_ID, validate_run_record

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.obs.validate <record.json> [...]", file=sys.stderr)
        return 2
    failures = 0
    for name in args:
        try:
            obj = json.loads(Path(name).read_text())
        except (OSError, ValueError) as exc:
            print(f"{name}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = validate_run_record(obj)
        if errors:
            failures += 1
            for err in errors:
                print(f"{name}: {err}", file=sys.stderr)
        else:
            print(f"{name}: valid {SCHEMA_ID}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
