"""Structured span events: the ``repro.obs/event/v1`` JSONL stream.

Counters and timers (:mod:`repro.obs.core`) answer *how much*; the
event stream answers *when*.  An :class:`EventLog` attaches to a
:class:`~repro.obs.core.Registry` as a span hook, so every existing
``trace(...)`` / ``@traced`` site — the UDG builders, the phase-1 MIS,
both WAF phases, the Section IV greedy, the distributed protocols —
emits nested begin/end events with **zero new call sites** in the
instrumented code.

Each event is one JSON object on its own line:

* a **run header** opens every log::

      {"schema": "repro.obs/event/v1", "type": "run",
       "run": "<run-id>", "worker": 0, "seq": 0}

* a **begin** marks a span opening, with a monotonic timestamp
  relative to the log's creation and the parent span id (``null`` for
  roots)::

      {"type": "begin", "span": 0, "parent": null,
       "name": "greedy.phase2", "t": 0.000813, "worker": 0, "seq": 3}

* an **end** closes it, carrying the measured duration and the **delta
  of every registry counter that moved while the span was open** — the
  operational counts the paper's analysis charges, attributed to the
  phase that incurred them::

      {"type": "end", "span": 0, "name": "greedy.phase2",
       "t": 0.003501, "dur": 0.002688,
       "counters": {"gain.evaluations": 982, ...}, "worker": 0, "seq": 4}

* a **note** is an instantaneous structured observation with no
  duration — the reliability layer emits one per retry and per
  terminal cell failure (:meth:`repro.obs.core.Registry.note`)::

      {"type": "note", "name": "reliability.failure",
       "data": {"cell": "n=20;side=3.8;seed=1", "kind": "crash", ...},
       "t": 0.1102, "worker": 0, "seq": 7}

``seq`` is the event's position in its own log and ``worker`` the
producing worker's index (0 for a single-process run); together they
make :func:`merge_events` deterministic.  Timestamps come from
``perf_counter`` — comparable *within* a worker, not across workers.

Reading a log back::

    events = read_events("run.events.jsonl")
    for root in replay(events):          # the span forest
        print(root.name, root.duration, root.counters, len(root.children))

The CLI exposes the writer as ``--events-out PATH`` on both modes
(``python -m repro T8 --events-out t8.jsonl``); under ``--jobs N`` the
per-worker logs are interleaved with :func:`merge_events` before
writing.  See ``docs/observability.md`` §6.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

from .core import Registry, SpanHook

__all__ = [
    "EVENT_SCHEMA_ID",
    "EventLog",
    "SpanNode",
    "parse_events",
    "read_events",
    "validate_events",
    "merge_events",
    "write_events",
    "replay",
]

#: Version tag carried by every log's run header; bump on shape change.
EVENT_SCHEMA_ID = "repro.obs/event/v1"

_EVENT_TYPES = ("run", "begin", "end", "note")


def _default_run_id() -> str:
    return f"{os.getpid():x}-{_time.time_ns():x}"


class EventLog(SpanHook):
    """A span hook that records the ``repro.obs/event/v1`` stream.

    Attach with ``registry.add_hook(log)``; detach with
    ``registry.remove_hook(log)``.  Events accumulate in :attr:`events`
    (header first) and :meth:`write` dumps them as JSONL.

    Counter deltas are computed by snapshotting the registry's counter
    values at span begin and diffing at span end; only counters that
    moved appear in the ``end`` event.  Resetting the registry while a
    span is open therefore skews that span's deltas — the CLI never
    does this, but library users should finish open spans before
    calling ``reset()``.
    """

    __slots__ = ("registry", "run_id", "worker", "events", "_stack", "_next_span", "_t0")

    def __init__(
        self,
        registry: Registry,
        *,
        run_id: str | None = None,
        worker: int = 0,
    ):
        self.registry = registry
        self.run_id = _default_run_id() if run_id is None else run_id
        self.worker = worker
        self.events: list[dict] = [
            {
                "schema": EVENT_SCHEMA_ID,
                "type": "run",
                "run": self.run_id,
                "worker": worker,
                "seq": 0,
            }
        ]
        self._stack: list[tuple[int, dict]] = []
        self._next_span = 0
        self._t0 = perf_counter()

    # -- SpanHook protocol --------------------------------------------

    def begin(self, name: str) -> int:
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        self.events.append(
            {
                "type": "begin",
                "span": span_id,
                "parent": parent,
                "name": name,
                "t": perf_counter() - self._t0,
                "worker": self.worker,
                "seq": len(self.events),
            }
        )
        snapshot = {c.name: c.value for c in self.registry}
        self._stack.append((span_id, snapshot))
        return span_id

    def end(self, name: str, token: object, seconds: float) -> None:
        span_id, snapshot = self._stack.pop()
        deltas = {}
        for counter in self.registry:
            delta = counter.value - snapshot.get(counter.name, 0)
            if delta:
                deltas[counter.name] = delta
        self.events.append(
            {
                "type": "end",
                "span": span_id,
                "name": name,
                "t": perf_counter() - self._t0,
                "dur": seconds,
                "counters": deltas,
                "worker": self.worker,
                "seq": len(self.events),
            }
        )

    def note(self, name: str, data: dict) -> None:
        self.events.append(
            {
                "type": "note",
                "name": name,
                "data": data,
                "t": perf_counter() - self._t0,
                "worker": self.worker,
                "seq": len(self.events),
            }
        )

    # -- output -------------------------------------------------------

    def write(self, path: str | Path) -> None:
        write_events(self.events, path)


def write_events(events: Iterable[dict], path: str | Path) -> None:
    """Dump events (header(s) included) as one-object-per-line JSONL."""
    Path(path).write_text(
        "".join(json.dumps(ev, sort_keys=True) + "\n" for ev in events)
    )


def validate_events(events: Sequence[dict]) -> list[str]:
    """Schema-check a parsed event stream; returns violations.

    A valid stream starts with a ``run`` header whose ``schema`` is
    exactly :data:`EVENT_SCHEMA_ID` (merged streams may carry several
    headers), and every ``begin``/``end`` carries the fields documented
    in the module docstring.
    """
    errors: list[str] = []
    if not events:
        return ["event stream is empty (expected a run header)"]
    if events[0].get("type") != "run":
        errors.append("first event must be a 'run' header")
    for i, ev in enumerate(events):
        kind = ev.get("type")
        if kind not in _EVENT_TYPES:
            errors.append(f"event {i}: unknown type {kind!r}")
            continue
        if kind == "run":
            schema = ev.get("schema")
            if schema != EVENT_SCHEMA_ID:
                errors.append(
                    f"event {i}: unknown event schema {schema!r} "
                    f"(expected {EVENT_SCHEMA_ID!r})"
                )
            continue
        if kind == "note":
            for key in ("name", "t"):
                if key not in ev:
                    errors.append(f"event {i} (note): missing {key!r}")
            if not isinstance(ev.get("data", None), dict):
                errors.append(f"event {i} (note): 'data' must be an object")
            continue
        for key in ("span", "name", "t"):
            if key not in ev:
                errors.append(f"event {i} ({kind}): missing {key!r}")
        if kind == "begin" and "parent" not in ev:
            errors.append(f"event {i} (begin): missing 'parent'")
        if kind == "end":
            if not isinstance(ev.get("counters", None), dict):
                errors.append(f"event {i} (end): 'counters' must be an object")
            dur = ev.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i} (end): 'dur' must be a number >= 0")
    return errors


def parse_events(lines: Iterable[str]) -> list[dict]:
    """Parse JSONL lines into a validated event list.

    Raises:
        ValueError: on malformed JSON or a schema violation (including
            an unknown ``schema`` version in the run header).
    """
    events = [json.loads(line) for line in lines if line.strip()]
    errors = validate_events(events)
    if errors:
        raise ValueError("invalid event log: " + "; ".join(errors))
    return events


def read_events(path: str | Path) -> list[dict]:
    """Load and validate an event log written by :class:`EventLog`."""
    return parse_events(Path(path).read_text().splitlines())


def merge_events(logs: Sequence[Sequence[dict]]) -> list[dict]:
    """Deterministically interleave per-worker event logs.

    Workers are re-numbered by their position in ``logs`` (which the
    parallel runner keeps in input order, so the merge is reproducible
    run-to-run).  Events sort by ``(t, worker, seq)``; per-worker order
    is always preserved because each log's timestamps and sequence
    numbers are monotone.  Headers sort first (they carry no ``t``).

    Cross-worker timestamp order is *deterministic*, not a true global
    clock — each worker's ``t`` is relative to its own log creation.
    """
    merged: list[dict] = []
    for worker, log in enumerate(logs):
        for ev in log:
            ev = dict(ev)
            ev["worker"] = worker
            merged.append(ev)
    merged.sort(key=lambda ev: (ev.get("t", -1.0), ev["worker"], ev.get("seq", 0)))
    return merged


@dataclass
class SpanNode:
    """One replayed span: identity, timing, counter deltas, children."""

    name: str
    span_id: int
    worker: int
    parent: "SpanNode | None" = None
    start: float = 0.0
    duration: float | None = None
    counters: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    notes: list[dict] = field(default_factory=list)

    def walk(self):
        """This node, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def replay(events: Sequence[dict]) -> list[SpanNode]:
    """Rebuild the span forest from a (possibly merged) event stream.

    Nesting is reconstructed per worker — a begin on worker 1 never
    nests under an open span of worker 0, however the merge interleaved
    them.  Returns root spans in begin order; spans whose ``end`` never
    arrived (a crashed run) keep ``duration=None``.

    Raises:
        ValueError: when an ``end`` closes a span that is not the
            innermost open span of its worker — the stream is corrupt.
    """
    roots: list[SpanNode] = []
    stacks: dict[int, list[SpanNode]] = {}
    for ev in events:
        kind = ev.get("type")
        if kind == "begin":
            worker = ev.get("worker", 0)
            stack = stacks.setdefault(worker, [])
            node = SpanNode(
                name=ev["name"],
                span_id=ev["span"],
                worker=worker,
                parent=stack[-1] if stack else None,
                start=ev["t"],
            )
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        elif kind == "end":
            worker = ev.get("worker", 0)
            stack = stacks.setdefault(worker, [])
            if not stack or stack[-1].span_id != ev["span"]:
                raise ValueError(
                    f"event stream corrupt: end of span {ev['span']} "
                    f"(worker {worker}) does not match the open span"
                )
            node = stack.pop()
            node.duration = ev["dur"]
            node.counters = dict(ev.get("counters", {}))
        elif kind == "note":
            # A note attaches to its worker's innermost open span;
            # notes emitted outside any span are not part of the
            # forest (read them straight off the event list).
            worker = ev.get("worker", 0)
            stack = stacks.setdefault(worker, [])
            if stack:
                stack[-1].notes.append(
                    {"name": ev["name"], "t": ev["t"], **ev.get("data", {})}
                )
    return roots
