"""The run record: one reproducible measurement, serialisable.

A :class:`RunRecord` pins down *what ran* (algorithm, instance
parameters, seed), *what it did* (counters, timings) and *what came
out* (result sizes) in one JSON-ready object.  The schema is versioned
(``repro.obs/run-record/v1``) and checkable offline with
:func:`validate_run_record` — no third-party JSON-Schema library is
needed, matching the zero-dependency rule of the package.

Field-by-field documentation lives in ``docs/observability.md``; the
machine-readable shape is :data:`RUN_RECORD_SCHEMA`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from .core import Registry

__all__ = [
    "SCHEMA_ID",
    "RUN_RECORD_SCHEMA",
    "RunRecord",
    "validate_run_record",
    "assert_valid_run_record",
    "records_to_csv",
]

#: Version tag embedded in every record; bump on breaking shape change.
SCHEMA_ID = "repro.obs/run-record/v1"

#: JSON-Schema (draft-07 subset) describing a serialised record.  The
#: in-repo validator below implements exactly these constraints.
RUN_RECORD_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "RunRecord",
    "type": "object",
    "required": ["schema", "algorithm", "instance", "seed", "counters", "timings", "results"],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "algorithm": {"type": "string", "minLength": 1},
        "instance": {"type": "object"},
        "seed": {"type": ["integer", "null"]},
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "timings": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["seconds", "count"],
                "properties": {
                    "seconds": {"type": "number", "minimum": 0},
                    "count": {"type": "integer", "minimum": 0},
                },
            },
        },
        "results": {"type": "object"},
        "histograms": {
            # Optional: one entry per histogram, in the cumulative
            # [upper_bound, cumulative_count] form of
            # repro.obs.metrics.Histogram.to_record (finite bounds
            # only; see validate_histogram_record).
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["count", "sum", "buckets"],
                "properties": {
                    "count": {"type": "integer", "minimum": 0},
                    "sum": {"type": "number"},
                    "min": {"type": ["number", "null"]},
                    "max": {"type": ["number", "null"]},
                    "buckets": {
                        "type": "array",
                        "items": {
                            "type": "array",
                            "items": [
                                {"type": "number"},
                                {"type": "integer", "minimum": 0},
                            ],
                        },
                    },
                },
            },
        },
        "meta": {"type": "object"},
    },
}


@dataclass
class RunRecord:
    """One run's provenance, activity and outcome.

    Attributes:
        algorithm: what ran — a solver label (``"greedy"``), an
            experiment (``"experiment:T8"``) or a benchmark case name.
        instance: parameters pinning down the input (node count, edge
            count, generator arguments, source file, ...).
        seed: the RNG seed that produced the instance, or ``None`` when
            the input came from outside (e.g. a deployment CSV).
        counters: flat name → numeric tally, straight from the registry.
        timings: name → ``{"seconds": total, "count": spans}``.
        results: outcome sizes (``cds_size``, ``dominators``, ...).
        histograms: name → cumulative bucket form (optional; empty for
            runs that observed no distributions — serialised records
            omit the key then, keeping pre-histogram records valid).
        meta: anything else worth keeping (CLI flags, library version).
    """

    algorithm: str
    instance: dict = field(default_factory=dict)
    seed: int | None = None
    counters: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    results: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        registry: Registry,
        *,
        algorithm: str,
        instance: Mapping | None = None,
        seed: int | None = None,
        results: Mapping | None = None,
        meta: Mapping | None = None,
    ) -> "RunRecord":
        """Snapshot ``registry`` into a record (counters and timings)."""
        return cls(
            algorithm=algorithm,
            instance=dict(instance or {}),
            seed=seed,
            counters=registry.counters(),
            timings=registry.timings(),
            results=dict(results or {}),
            histograms=registry.histograms_record(),
            meta=dict(meta or {}),
        )

    # -- serialisation ------------------------------------------------

    def to_json_obj(self) -> dict:
        obj = {
            "schema": SCHEMA_ID,
            "algorithm": self.algorithm,
            "instance": self.instance,
            "seed": self.seed,
            "counters": self.counters,
            "timings": self.timings,
            "results": self.results,
            "meta": self.meta,
        }
        if self.histograms:
            obj["histograms"] = self.histograms
        return obj

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_obj(), indent=indent, sort_keys=False)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "RunRecord":
        """Rebuild a record from a parsed JSON object.

        Raises:
            ValueError: when the object does not satisfy the schema.
        """
        assert_valid_run_record(obj)
        return cls(
            algorithm=obj["algorithm"],
            instance=dict(obj["instance"]),
            seed=obj["seed"],
            counters=dict(obj["counters"]),
            timings={k: dict(v) for k, v in obj["timings"].items()},
            results=dict(obj["results"]),
            histograms={k: dict(v) for k, v in obj.get("histograms", {}).items()},
            meta=dict(obj.get("meta", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunRecord":
        return cls.from_json_obj(json.loads(Path(path).read_text()))


def validate_run_record(obj: object) -> list[str]:
    """Check ``obj`` against :data:`RUN_RECORD_SCHEMA`.

    Returns the list of violations (empty means valid).  Implemented by
    hand so validation works without a jsonschema dependency.
    """
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return [f"record must be an object, got {type(obj).__name__}"]
    required = RUN_RECORD_SCHEMA["required"]
    for key in required:
        if key not in obj:
            errors.append(f"missing required field {key!r}")
    if errors:
        return errors
    if obj["schema"] != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, got {obj['schema']!r}")
    if not isinstance(obj["algorithm"], str) or not obj["algorithm"]:
        errors.append("algorithm must be a non-empty string")
    for key in ("instance", "results"):
        if not isinstance(obj[key], Mapping):
            errors.append(f"{key} must be an object")
    if obj["seed"] is not None and not isinstance(obj["seed"], int):
        errors.append("seed must be an integer or null")
    counters = obj["counters"]
    if not isinstance(counters, Mapping):
        errors.append("counters must be an object")
    else:
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"counter {name!r} must be numeric, got {value!r}")
            elif not math.isfinite(value):
                # json.loads happily parses NaN/Infinity, so guard here.
                errors.append(f"counter {name!r} must be finite, got {value!r}")
    timings = obj["timings"]
    if not isinstance(timings, Mapping):
        errors.append("timings must be an object")
    else:
        for name, entry in timings.items():
            if not isinstance(entry, Mapping):
                errors.append(f"timing {name!r} must be an object")
                continue
            seconds = entry.get("seconds")
            count = entry.get("count")
            # The isfinite guard matters: NaN compares False to
            # everything, so `seconds < 0` alone would wave NaN through.
            if (
                isinstance(seconds, bool)
                or not isinstance(seconds, (int, float))
                or not math.isfinite(seconds)
                or seconds < 0
            ):
                errors.append(f"timing {name!r}: seconds must be a finite number >= 0")
            if isinstance(count, bool) or not isinstance(count, int) or count < 0:
                errors.append(f"timing {name!r}: count must be an integer >= 0")
    if "histograms" in obj:
        histograms = obj["histograms"]
        if not isinstance(histograms, Mapping):
            errors.append("histograms must be an object")
        else:
            from .metrics import validate_histogram_record

            for name, entry in histograms.items():
                errors.extend(validate_histogram_record(name, entry))
    if "meta" in obj and not isinstance(obj["meta"], Mapping):
        errors.append("meta must be an object")
    return errors


def assert_valid_run_record(obj: object) -> None:
    """Raise ``ValueError`` listing every schema violation in ``obj``."""
    errors = validate_run_record(obj)
    if errors:
        raise ValueError("invalid RunRecord: " + "; ".join(errors))


def records_to_csv(records: Iterable[RunRecord]) -> str:
    """Flatten records to CSV — one row per record.

    Columns are the union of all counter names (``counter.<name>``) and
    timer names (``timing.<name>.seconds``), after the fixed identity
    columns; missing cells are left empty.  Handy for spreadsheet-level
    comparison of runs.
    """
    records = list(records)
    counter_names = sorted({n for r in records for n in r.counters})
    timer_names = sorted({n for r in records for n in r.timings})
    header = (
        ["algorithm", "seed", "instance", "results"]
        + [f"counter.{n}" for n in counter_names]
        + [f"timing.{n}.seconds" for n in timer_names]
    )
    lines = [",".join(header)]
    for r in records:
        row = [
            _csv_cell(r.algorithm),
            "" if r.seed is None else str(r.seed),
            _csv_cell(json.dumps(r.instance, sort_keys=True)),
            _csv_cell(json.dumps(r.results, sort_keys=True)),
        ]
        row += [
            str(r.counters[n]) if n in r.counters else "" for n in counter_names
        ]
        row += [
            f"{r.timings[n]['seconds']:.9f}" if n in r.timings else ""
            for n in timer_names
        ]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def _csv_cell(text: str) -> str:
    if any(c in text for c in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text
