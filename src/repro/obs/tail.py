"""``python -m repro obs tail`` — a live terminal view of telemetry.

Renders either live-telemetry file format (:mod:`repro.obs.expose`) as
a refreshing terminal table:

* a ``repro.obs/metrics-snapshot/v1`` JSONL stream (``--metrics-out``):
  the *latest* complete snapshot line is shown — counters, timers, and
  histogram percentiles;
* a Prometheus text exposition (v0.0.4), e.g. one scraped from the
  ``--metrics-port`` endpoint with ``curl ... > metrics.prom``.

The format is sniffed from the content, not the file name.  By default
the screen redraws every ``--interval`` seconds until interrupted;
``--once`` renders a single frame and exits (what the tests and quick
inspections use)::

    python -m repro serve --metrics-out /tmp/serve-metrics.jsonl &
    python -m repro obs tail /tmp/serve-metrics.jsonl

Percentiles come from the serialised cumulative buckets via
:func:`repro.obs.metrics.record_percentile` — no histogram objects are
rebuilt, so tailing works on any conforming file, including one still
being written (a torn trailing line is ignored).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from .metrics import record_percentile

__all__ = ["detect_format", "render_tail", "main"]

#: ANSI: clear screen, cursor home — the refresh between frames.
_CLEAR = "\x1b[2J\x1b[H"

_PERCENTILES = (50, 90, 95, 99)


def detect_format(text: str) -> str:
    """``"snapshot"`` (JSONL stream) or ``"exposition"`` (Prometheus).

    Sniffed from the first non-blank line: a snapshot stream is JSON
    objects (``{``), an exposition starts with a comment or a sample.
    """
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        return "snapshot" if stripped.startswith("{") else "exposition"
    return "snapshot"


def _table(headers: Sequence[str], rows: list[Sequence[str]]) -> str:
    """Left-aligned name column, right-aligned numbers; plain text."""
    if not rows:
        return "  (none)"
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    def fmt(cells) -> str:
        first = str(cells[0]).ljust(widths[0])
        rest = [str(c).rjust(widths[i + 1]) for i, c in enumerate(cells[1:])]
        return "  ".join([first] + rest)
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)


def _num(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def _histogram_rows(histograms: dict) -> list[list[str]]:
    rows = []
    for name in sorted(histograms):
        record = histograms[name]
        rows.append(
            [name, _num(record.get("count", 0))]
            + [_num(record_percentile(record, p)) for p in _PERCENTILES]
            + [_num(record.get("max") or 0.0)]
        )
    return rows


_HIST_HEADERS = ("histogram", "count", "p50", "p90", "p95", "p99", "max")


def _render_snapshot(text: str) -> str:
    from .expose import parse_snapshots

    snapshots = parse_snapshots(text.splitlines())
    if not snapshots:
        return "(no complete snapshot lines yet)"
    snap = snapshots[-1]
    stamp = time.strftime("%H:%M:%S", time.localtime(snap["time"]))
    out = [
        f"snapshot seq={snap['seq']} source={snap['source']} "
        f"written={stamp} ({len(snapshots)} snapshot(s) in file)",
        "",
        _table(
            ("counter", "value"),
            [[n, _num(v)] for n, v in sorted(snap["counters"].items())],
        ),
    ]
    timers = snap.get("timers", {})
    if timers:
        out += [
            "",
            _table(
                ("timer", "count", "total_s", "max_s"),
                [
                    [n, _num(t["count"]), _num(t["total"]), _num(t["max"])]
                    for n, t in sorted(timers.items())
                ],
            ),
        ]
    histograms = snap.get("histograms", {})
    if histograms:
        out += ["", _table(_HIST_HEADERS, _histogram_rows(histograms))]
    return "\n".join(out)


def _render_exposition(text: str) -> str:
    # Fold the sample lines back into counters and histogram records so
    # both formats render through the same tables.
    counters: dict[str, float] = {}
    buckets: dict[str, list] = {}
    hist: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value_text = line.partition(" ")
        try:
            value = float(value_text.split()[0].replace("Inf", "inf"))
        except (ValueError, IndexError):
            continue
        labels = ""
        if "{" in name:
            name, _, labels = name.partition("{")
        if name.endswith("_bucket") and 'le="' in labels:
            base = name[: -len("_bucket")]
            le_text = labels.split('le="', 1)[1].split('"', 1)[0]
            le = float(le_text.replace("Inf", "inf"))
            if le == float("inf"):
                hist.setdefault(base, {})["count"] = int(value)
            else:
                buckets.setdefault(base, []).append([le, int(value)])
        elif name.endswith("_sum") and name[: -len("_sum")] in buckets:
            hist.setdefault(name[: -len("_sum")], {})["sum"] = value
        elif name.endswith("_count") and name[: -len("_count")] in buckets:
            hist.setdefault(name[: -len("_count")], {})["count"] = int(value)
        else:
            counters[name] = value
    out = [
        _table(
            ("metric", "value"),
            [[n, _num(v)] for n, v in sorted(counters.items())],
        )
    ]
    if buckets:
        histograms = {}
        for base, pairs in buckets.items():
            record = dict(hist.get(base, {}))
            record.setdefault("count", pairs[-1][1] if pairs else 0)
            record["buckets"] = sorted(pairs)
            histograms[base] = record
        out += ["", _table(_HIST_HEADERS, _histogram_rows(histograms))]
    return "\n".join(out)


def render_tail(text: str) -> str:
    """One rendered frame for ``text`` (either supported format)."""
    if detect_format(text) == "snapshot":
        return _render_snapshot(text)
    return _render_exposition(text)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cds obs tail",
        description=(
            "Render a live telemetry file — a repro.obs/metrics-snapshot/"
            "v1 JSONL stream or a Prometheus text exposition — as a "
            "refreshing terminal table."
        ),
    )
    parser.add_argument("file", help="snapshot JSONL or exposition file")
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no screen clearing)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return 2
    path = Path(args.file)
    while True:
        try:
            text = path.read_text()
        except OSError as exc:
            frame = f"cannot read {path}: {exc}"
        else:
            try:
                frame = render_tail(text)
            except ValueError as exc:
                frame = f"malformed telemetry in {path}: {exc}"
        try:
            if args.once:
                print(frame)
                return 0
            print(f"{_CLEAR}{path} — refreshing every {args.interval}s "
                  f"(ctrl-c to stop)\n\n{frame}", flush=True)
        except BrokenPipeError:
            # `obs tail ... | head` closing the pipe is a normal exit,
            # not an error; silence the interpreter's shutdown whinge.
            try:
                sys.stdout.close()
            except OSError:
                pass
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
