"""Live telemetry tier one: the fixed-bucket log-scaled histogram.

Counters (:mod:`repro.obs.core`) answer *how much*, timers *how long in
total* — neither answers *how the individual samples are distributed*,
which is the question a latency SLO or a per-round load profile asks.
:class:`Histogram` fills that gap under the same design rules as the
rest of ``repro.obs``:

* **Zero dependencies, near-zero overhead.**  ``observe`` is a couple
  of float compares, one ``log10`` and a dict increment — cheap enough
  for per-request paths; the disabled hot paths never reach it (callers
  guard with ``if OBS.enabled:`` exactly as for counters).
* **Fixed bucket layout, exact merging.**  Bucket boundaries are the
  *same* in every process — ``10 ** (k / 8)`` for integer ``k`` — so
  two histograms merge by summing bucket counts, with no resampling and
  no approximation on top of the bucketing itself.  Merging is exact,
  associative and commutative on the integer bucket counts, which is
  what lets ``--jobs N`` workers fold histograms exactly like counters
  (:meth:`repro.obs.core.Registry.merge_state`).
* **Bounded error.**  Eight buckets per decade means one bucket spans a
  ratio of ``10 ** (1/8)`` (~1.334x), so :meth:`percentile` is accurate
  to within ~34% relative — plenty for p50/p95/p99 dashboards — while
  ``count``/``sum``/``min``/``max`` stay exact.

The layout covers ``1e-9 .. 1e9`` (144 buckets) plus an underflow and
an overflow bucket, so one class serves wall-clock seconds, queue
depths and per-round node counts alike.  Buckets are stored sparsely
(index → count), so an idle histogram costs a few hundred bytes.

Two serialised forms:

* :meth:`state` / :meth:`merge_state` — the sparse cross-process form
  carried inside :meth:`Registry.export_state`;
* :meth:`to_record` / :func:`record_percentile` — the cumulative
  ``[upper_bound, cumulative_count]`` form embedded in RunRecords and
  the ``repro.obs/metrics-snapshot/v1`` stream (finite bounds only; the
  overflow bucket is implied by ``count``), validated by
  :func:`repro.obs.record.validate_run_record`.

See ``docs/observability.md`` §7.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = [
    "BUCKETS_PER_DECADE",
    "MIN_EXP",
    "MAX_EXP",
    "LAYOUT_ID",
    "Histogram",
    "bucket_upper_bound",
    "record_percentile",
    "validate_histogram_record",
]

#: Bucket resolution: buckets per decade of the log scale.
BUCKETS_PER_DECADE = 8

#: The regular buckets cover ``10**MIN_EXP .. 10**MAX_EXP``; values at
#: or below the lower edge land in the underflow bucket (index ``-1``),
#: values above the upper edge in the overflow bucket.
MIN_EXP = -9
MAX_EXP = 9

#: Number of regular buckets.
_N_BUCKETS = (MAX_EXP - MIN_EXP) * BUCKETS_PER_DECADE

#: Layout fingerprint carried by every serialised histogram; merging
#: histograms with different layouts is a hard error, never a silent
#: resample.
LAYOUT_ID = f"log10/{BUCKETS_PER_DECADE}@{MIN_EXP}:{MAX_EXP}"

#: Index of the overflow bucket (one past the last regular bucket).
_OVERFLOW = _N_BUCKETS

_LOG_MIN = float(MIN_EXP)


def bucket_upper_bound(index: int) -> float:
    """The inclusive upper bound of bucket ``index``.

    Bucket ``i`` covers ``(bucket_upper_bound(i - 1),
    bucket_upper_bound(i)]``; the underflow bucket is index ``-1``
    (upper bound ``10**MIN_EXP``), the overflow bucket has no finite
    bound and raises.
    """
    if index >= _OVERFLOW:
        raise ValueError(f"bucket {index} is the overflow bucket (no bound)")
    return 10.0 ** (MIN_EXP + (index + 1) / BUCKETS_PER_DECADE)


def _bucket_index(value: float) -> int:
    """The bucket holding ``value`` (exact at the boundaries).

    The ``log10`` estimate can be off by one ulp right at a bucket
    edge, so the candidate is nudged against the exact ``10 ** (k/8)``
    bounds — bucketing must be a pure function of the value, identical
    on every platform, or cross-process merges would skew.
    """
    if value <= 10.0 ** MIN_EXP:
        return -1
    index = math.ceil((math.log10(value) - _LOG_MIN) * BUCKETS_PER_DECADE) - 1
    if index < -1:
        index = -1
    elif index > _OVERFLOW:
        index = _OVERFLOW
    # Nudge against the exact bounds (at most one step each way).
    while index < _OVERFLOW and value > bucket_upper_bound(index):
        index += 1
    while index > -1 and value <= bucket_upper_bound(index - 1):
        index -= 1
    return index


class Histogram:
    """A named log-scaled histogram with exact cross-process merging.

    The mutating API mirrors :class:`~repro.obs.core.Counter`:
    ``observe(value)`` is the per-sample entry point and everything
    else is read-side.  Negative values clamp into the underflow
    bucket (they cannot occur for the durations/counts this layer
    records, but a clamp beats a crash on a clock hiccup); NaN and
    ±infinity are rejected — they would poison ``sum`` silently.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = {}

    def observe(self, value: int | float) -> None:
        """Record one sample.

        Raises:
            ValueError: for NaN or ±infinity.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} cannot observe {value!r}"
            )
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[int | float]) -> None:
        for value in values:
            self.observe(value)

    # -- reading ------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> dict[int, int]:
        """Sparse ``bucket index -> count`` (sorted, a copy)."""
        return {i: self._buckets[i] for i in sorted(self._buckets)}

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, resolved to a bucket upper bound.

        The returned value is an upper bound for the true sample at
        that rank: at most one bucket width (~1.334x) above it, exact
        whenever the rank lands in the min or max sample.  Returns 0.0
        for an empty histogram.

        Raises:
            ValueError: for ``pct`` outside ``0..100``.
        """
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in 0..100, got {pct}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * pct / 100.0))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                if index == -1:
                    # Everything in the underflow bucket is <= 1e-9;
                    # the recorded minimum is the best answer.
                    return self.min if self.min is not None else 0.0
                if index == _OVERFLOW:
                    return self.max if self.max is not None else 0.0
                value = bucket_upper_bound(index)
                # Clamp to the exact extremes: the bucket bound can
                # overshoot max (or undershoot min for rank 1).
                if self.max is not None and value > self.max:
                    value = self.max
                if self.min is not None and value < self.min:
                    value = self.min
                return value
        return self.max if self.max is not None else 0.0  # pragma: no cover

    # -- merging ------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact, associative)."""
        self.merge_state(other.state())

    def state(self) -> dict:
        """The picklable cross-process form (sparse buckets)."""
        return {
            "layout": LAYOUT_ID,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): c for i, c in self.buckets().items()},
        }

    def merge_state(self, state: Mapping) -> None:
        """Fold a :meth:`state` dict into this histogram.

        Raises:
            ValueError: when ``state`` was produced under a different
                bucket layout (merging would silently misbucket).
        """
        layout = state.get("layout", LAYOUT_ID)
        if layout != LAYOUT_ID:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge layout {layout!r} "
                f"into {LAYOUT_ID!r}"
            )
        for key, count in state.get("buckets", {}).items():
            index = int(key)
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += state.get("count", 0)
        self.sum += state.get("sum", 0.0)
        for bound, better in (("min", min), ("max", max)):
            value = state.get(bound)
            if value is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound, value if mine is None else better(mine, value))

    @classmethod
    def from_state(cls, name: str, state: Mapping) -> "Histogram":
        hist = cls(name)
        hist.merge_state(state)
        return hist

    # -- the record form ----------------------------------------------

    def to_record(self) -> dict:
        """The cumulative JSON form embedded in RunRecords/snapshots.

        ``buckets`` is a list of ``[upper_bound, cumulative_count]``
        pairs — finite bounds only, strictly increasing, cumulative
        counts non-decreasing.  Samples above the last regular bucket
        (the overflow bucket) appear only in ``count``, never under a
        non-finite bound, so every serialised number is finite.
        """
        pairs: list[list] = []
        cumulative = 0
        for index in sorted(self._buckets):
            if index == _OVERFLOW:
                continue
            cumulative += self._buckets[index]
            pairs.append([bucket_upper_bound(index), cumulative])
        return {
            "layout": LAYOUT_ID,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": pairs,
        }

    def summary(self) -> dict:
        """Percentile digest for live stats endpoints and reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.6g})"
        )


def record_percentile(record: Mapping, pct: float) -> float:
    """Nearest-rank percentile straight off a :meth:`Histogram.to_record`
    dict — what ``obs tail`` and report tooling use without rebuilding a
    histogram object."""
    count = record.get("count", 0)
    if not count:
        return 0.0
    rank = max(1, math.ceil(count * pct / 100.0))
    low = record.get("min")
    high = record.get("max")
    for bound, cumulative in record.get("buckets", []):
        if cumulative >= rank:
            value = bound
            if high is not None and value > high:
                value = high
            if low is not None and value < low:
                value = low
            return value
    return high if high is not None else 0.0


def validate_histogram_record(name: str, obj: object) -> list[str]:
    """Schema-check one serialised histogram (the ``to_record`` form).

    Mirrors the counter checks of
    :func:`repro.obs.record.validate_run_record`: every number must be
    finite (NaN/±inf bucket bounds are rejected outright), counts
    non-negative integers, and the cumulative bucket counts monotone
    and bounded by ``count``.
    """
    errors: list[str] = []
    prefix = f"histogram {name!r}"
    if not isinstance(obj, Mapping):
        return [f"{prefix} must be an object, got {type(obj).__name__}"]
    count = obj.get("count")
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        errors.append(f"{prefix}: count must be an integer >= 0")
        count = None
    total = obj.get("sum")
    if (
        isinstance(total, bool)
        or not isinstance(total, (int, float))
        or not math.isfinite(total)
    ):
        errors.append(f"{prefix}: sum must be a finite number")
    for key in ("min", "max"):
        value = obj.get(key)
        if value is None:
            continue
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or not math.isfinite(value)
        ):
            errors.append(f"{prefix}: {key} must be a finite number or null")
    buckets = obj.get("buckets")
    if not isinstance(buckets, list):
        errors.append(f"{prefix}: buckets must be a list of [bound, count]")
        return errors
    previous_bound: float | None = None
    previous_cum = 0
    for i, pair in enumerate(buckets):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            errors.append(f"{prefix}: buckets[{i}] must be a [bound, count] pair")
            continue
        bound, cumulative = pair
        if (
            isinstance(bound, bool)
            or not isinstance(bound, (int, float))
            or not math.isfinite(bound)
        ):
            errors.append(
                f"{prefix}: buckets[{i}] bound must be finite, got {bound!r}"
            )
            continue
        if previous_bound is not None and bound <= previous_bound:
            errors.append(f"{prefix}: buckets[{i}] bounds must increase")
        previous_bound = bound
        if (
            isinstance(cumulative, bool)
            or not isinstance(cumulative, int)
            or cumulative < 0
        ):
            errors.append(
                f"{prefix}: buckets[{i}] count must be an integer >= 0"
            )
            continue
        if cumulative < previous_cum:
            errors.append(
                f"{prefix}: buckets[{i}] cumulative count decreases"
            )
        previous_cum = cumulative
    if count is not None and buckets and not errors and previous_cum > count:
        errors.append(
            f"{prefix}: cumulative bucket count {previous_cum} exceeds "
            f"count {count}"
        )
    return errors
