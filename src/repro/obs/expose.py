"""Live telemetry tier two: exporting metrics while the system runs.

Everything in :mod:`repro.obs` so far is *offline* — counters are
captured, frozen into a RunRecord and compared after the fact.  This
module makes the same registry state scrapeable and streamable while
the process is still working:

* :func:`render_exposition` — the registry as **Prometheus text format
  v0.0.4**: counters as ``<name>_total``, timers as summaries
  (``_sum``/``_count``/``_max``), histograms as classic cumulative
  ``_bucket{le="..."}`` series.  :func:`validate_exposition` is the
  matching in-repo checker (no client library needed), used by the
  ``serve-smoke`` CI scrape.
* :class:`MetricsExporter` — a tiny threaded HTTP endpoint serving the
  exposition at ``/metrics`` (the ``--metrics-port`` flag of
  ``python -m repro serve``).
* :class:`SnapshotStream` — the ``repro.obs/metrics-snapshot/v1``
  JSONL stream: one self-describing line per periodic snapshot
  (monotone ``seq``, wall-clock ``time``, counters/timers/histograms in
  RunRecord-compatible forms).  The final line of a drained daemon's
  stream carries exactly the counters of its drain-time RunRecord —
  the bit-identity contract the serve tests pin.
* :class:`PeriodicSnapshotter` — a daemon thread writing a snapshot
  every ``interval`` seconds (the ``--metrics-out`` flag).

``python -m repro obs tail FILE`` renders either format as a live
terminal table.  See ``docs/observability.md`` §7 and the ops runbook
in ``docs/serving.md``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping

from .core import Registry
from .metrics import validate_histogram_record

__all__ = [
    "EXPOSITION_VERSION",
    "SNAPSHOT_SCHEMA_ID",
    "metric_name",
    "render_exposition",
    "validate_exposition",
    "snapshot_state",
    "validate_snapshot",
    "parse_snapshots",
    "read_snapshots",
    "SnapshotStream",
    "PeriodicSnapshotter",
    "MetricsExporter",
]

#: Prometheus text exposition format version implemented here.
EXPOSITION_VERSION = "0.0.4"

#: Version tag carried by every snapshot line; bump on shape change.
SNAPSHOT_SCHEMA_ID = "repro.obs/metrics-snapshot/v1"

#: Content type the exporter answers with.
_CONTENT_TYPE = f"text/plain; version={EXPOSITION_VERSION}; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # metric name
    r"(\{[^{}]*\})?"                       # optional label set
    r" (\+Inf|-Inf|NaN|[-+]?[0-9.eE+-]+)"  # value
    r"( [0-9]+)?$"                         # optional timestamp
)
_LABELS_OK = re.compile(
    r"^\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*,?\}$"
)
_COMMENT_LINE = re.compile(
    r"^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped))$"
)


def metric_name(name: str, suffix: str = "") -> str:
    """A registry name as a legal Prometheus metric name.

    Dots (the registry's namespacing convention) and any other illegal
    character become underscores; a leading digit gets a guard
    underscore.  ``serve.requests`` → ``serve_requests`` (the counter
    renderer then appends ``_total``).
    """
    base = _NAME_OK.sub("_", name)
    if not base or base[0].isdigit():
        base = "_" + base
    return base + suffix


def _format_value(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_exposition(registry: Registry) -> str:
    """The registry's state in Prometheus text format v0.0.4.

    * counter ``a.b`` → ``a_b_total`` (TYPE counter);
    * timer ``a.b`` → ``a_b_seconds_sum`` / ``_count`` / ``_max``
      (TYPE summary; ``_max`` rides as an extra sample, which the text
      format permits);
    * histogram ``a.b`` → classic cumulative ``a_b_bucket{le="..."}``
      series with the mandatory ``le="+Inf"`` terminator, plus
      ``a_b_sum`` and ``a_b_count`` (TYPE histogram).

    Output is deterministic: metrics render in sorted registry-name
    order, buckets in ascending bound order.
    """
    lines: list[str] = []
    for name, value in registry.counters().items():
        metric = metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, timer in registry.timers().items():
        base = metric_name(name, "_seconds")
        lines.append(f"# TYPE {base} summary")
        lines.append(f"{base}_sum {_format_value(timer.total)}")
        lines.append(f"{base}_count {timer.count}")
        lines.append(f"{base}_max {_format_value(timer.max)}")
    for name, hist in registry.histograms().items():
        base = metric_name(name)
        record = hist.to_record()
        lines.append(f"# TYPE {base} histogram")
        for bound, cumulative in record["buckets"]:
            lines.append(
                f'{base}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{base}_bucket{{le="+Inf"}} {record["count"]}')
        lines.append(f"{base}_sum {_format_value(record['sum'])}")
        lines.append(f"{base}_count {record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_exposition(text: str) -> list[str]:
    """Check exposition ``text`` line by line; returns violations.

    Implements the subset of the v0.0.4 grammar this repo emits (and a
    scraper cares about): well-formed comment lines, legal metric and
    label syntax, parseable sample values, and cumulative-monotone
    ``le`` buckets per histogram.  The ``serve-smoke`` CI job fails on
    any violation.
    """
    errors: list[str] = []
    bucket_state: dict[str, tuple[float, int]] = {}  # base -> (le, cum)
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_LINE.match(line):
                errors.append(f"line {lineno}: malformed comment {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        if labels and not _LABELS_OK.match(labels):
            errors.append(f"line {lineno}: malformed labels {labels!r}")
            continue
        try:
            parsed = float(value.replace("Inf", "inf"))
        except ValueError:
            errors.append(f"line {lineno}: unparseable value {value!r}")
            continue
        if name.endswith("_bucket") and labels and 'le="' in labels:
            le_text = labels.split('le="', 1)[1].split('"', 1)[0]
            try:
                le = float(le_text.replace("Inf", "inf"))
            except ValueError:
                errors.append(f"line {lineno}: unparseable le {le_text!r}")
                continue
            previous = bucket_state.get(name)
            if previous is not None:
                prev_le, prev_cum = previous
                if le <= prev_le:
                    errors.append(
                        f"line {lineno}: {name} le bounds must increase"
                    )
                if parsed < prev_cum:
                    errors.append(
                        f"line {lineno}: {name} cumulative count decreases"
                    )
            bucket_state[name] = (le, parsed)
    return errors


# -- the snapshot stream ----------------------------------------------


def snapshot_state(
    registry: Registry,
    *,
    seq: int,
    source: str,
    extra: Mapping | None = None,
    now: float | None = None,
) -> dict:
    """One ``repro.obs/metrics-snapshot/v1`` line as a JSON-ready dict.

    ``counters`` uses the exact RunRecord form (so the final snapshot
    of a drained daemon compares bit-identically against its drain-time
    record), ``timers`` the lossless ``total``/``count``/``max`` form,
    ``histograms`` the cumulative record form.
    """
    state = {
        "schema": SNAPSHOT_SCHEMA_ID,
        "seq": seq,
        "source": source,
        "time": time.time() if now is None else now,
        "counters": registry.counters(),
        "timers": {
            name: {"total": t.total, "count": t.count, "max": t.max}
            for name, t in registry.timers().items()
        },
        "histograms": registry.histograms_record(),
    }
    if extra:
        state["extra"] = dict(extra)
    return state


def validate_snapshot(obj: object) -> list[str]:
    """Schema-check one parsed snapshot line; returns violations."""
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return [f"snapshot must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != SNAPSHOT_SCHEMA_ID:
        errors.append(
            f"schema must be {SNAPSHOT_SCHEMA_ID!r}, got {obj.get('schema')!r}"
        )
    seq = obj.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        errors.append("seq must be an integer >= 0")
    if not isinstance(obj.get("source"), str) or not obj.get("source"):
        errors.append("source must be a non-empty string")
    stamp = obj.get("time")
    if (
        isinstance(stamp, bool)
        or not isinstance(stamp, (int, float))
        or not math.isfinite(stamp)
    ):
        errors.append("time must be a finite number")
    counters = obj.get("counters")
    if not isinstance(counters, Mapping):
        errors.append("counters must be an object")
    else:
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"counter {name!r} must be numeric")
            elif not math.isfinite(value):
                errors.append(f"counter {name!r} must be finite")
    timers = obj.get("timers", {})
    if not isinstance(timers, Mapping):
        errors.append("timers must be an object")
    histograms = obj.get("histograms", {})
    if not isinstance(histograms, Mapping):
        errors.append("histograms must be an object")
    else:
        for name, entry in histograms.items():
            errors.extend(validate_histogram_record(name, entry))
    if "extra" in obj and not isinstance(obj["extra"], Mapping):
        errors.append("extra must be an object")
    return errors


def parse_snapshots(lines: Iterable[str]) -> list[dict]:
    """Parse snapshot JSONL lines into a validated list.

    A trailing partial line (a process killed mid-write) is tolerated
    and dropped, matching the checkpoint ledger's recovery semantics;
    a malformed line anywhere *else* raises.

    Raises:
        ValueError: on malformed JSON or a schema violation.
    """
    stripped = [line for line in lines if line.strip()]
    snapshots: list[dict] = []
    for i, line in enumerate(stripped):
        try:
            obj = json.loads(line)
        except ValueError as exc:
            if i == len(stripped) - 1:
                break  # torn trailing write
            raise ValueError(f"snapshot line {i + 1}: invalid JSON: {exc}")
        errors = validate_snapshot(obj)
        if errors:
            raise ValueError(
                f"snapshot line {i + 1}: " + "; ".join(errors)
            )
        snapshots.append(obj)
    return snapshots


def read_snapshots(path: str | Path) -> list[dict]:
    """Load and validate a snapshot stream written by :class:`SnapshotStream`."""
    return parse_snapshots(Path(path).read_text().splitlines())


class SnapshotStream:
    """Appends ``repro.obs/metrics-snapshot/v1`` lines to a file.

    Each :meth:`write` renders the given registry, assigns the next
    ``seq`` and flushes the line immediately, so a tailing reader (or
    ``python -m repro obs tail``) always sees complete records plus at
    most one torn line at the end.  Thread-compatible with the serve
    daemon: writes happen under a lock, and the registry arguments are
    freshly-built merge copies, never live mutating state.
    """

    def __init__(self, path: str | Path, *, source: str = "repro"):
        self.path = Path(path)
        self.source = source
        self.seq = 0
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, registry: Registry, extra: Mapping | None = None) -> dict:
        """Append one snapshot of ``registry``; returns the written dict."""
        with self._lock:
            state = snapshot_state(
                registry, seq=self.seq, source=self.source, extra=extra
            )
            self.seq += 1
            self._fh.write(json.dumps(state, sort_keys=True) + "\n")
            self._fh.flush()
            return state

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "SnapshotStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PeriodicSnapshotter(threading.Thread):
    """A daemon thread snapshotting a live metrics source every
    ``interval`` seconds.

    ``render`` is called on the snapshotter's own thread and must
    return a fresh :class:`Registry` (the serve daemon hands out
    :meth:`~repro.serve.server.SolveServer.metrics_registry`, a merged
    copy safe to read off-loop).  ``stop()`` wakes the thread, writes
    one final snapshot, and joins — so a drained stream always ends on
    an up-to-date line.
    """

    def __init__(
        self,
        stream: SnapshotStream,
        render: Callable[[], Registry],
        interval: float = 1.0,
    ):
        super().__init__(daemon=True)
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.stream = stream
        self.render = render
        self.interval = interval
        # Not ``_stop``: threading.Thread owns a private method by that
        # name which the interpreter calls during join().
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.stream.write(self.render())

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout)
        self.stream.write(self.render())


# -- the HTTP exporter ------------------------------------------------


class MetricsExporter:
    """A minimal threaded ``/metrics`` endpoint (Prometheus scrape
    target).

    ``render`` is called per request on the serving thread and must
    return the exposition text; binding to port 0 lets the OS pick (the
    bound address is :attr:`address` after :meth:`start`).  Requests
    for any other path get 404.  Stdlib only — ``http.server`` is not a
    hardened web server, matching the daemon's own loopback-by-default
    posture; see the ops runbook in ``docs/serving.md``.
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = exporter.render().encode("utf-8")
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    self.send_error(500, explain=str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", _CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: D102 - silence stderr
                pass

        self.render = render
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self.address: tuple[str, int] = self._server.server_address[:2]

    def start(self) -> tuple[str, int]:
        self._thread.start()
        return self.address

    def stop(self, timeout: float = 10.0) -> None:
        self._server.shutdown()
        self._thread.join(timeout)
        self._server.server_close()

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
