"""Human-readable rendering of registries and run records.

The CLI's ``--trace`` flag prints this after a run; it is also the
quickest way to eyeball a saved ``RunRecord``::

    python -m repro.obs.report rec.json
"""

from __future__ import annotations

import io

from .core import Registry
from .record import RunRecord

__all__ = ["render_report", "render_record"]


def render_report(registry: Registry, title: str = "instrumentation") -> str:
    """Fixed-width tables of a registry's counters and timers."""
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    counters = registry.counters()
    timers = registry.timers()
    if not counters and not timers:
        out.write("(no activity recorded)\n")
        return out.getvalue()
    if counters:
        out.write(_table(
            ("counter", "value"),
            [(name, _num(value)) for name, value in counters.items()],
        ))
    if timers:
        if counters:
            out.write("\n")
        out.write(_table(
            ("timer", "total s", "count", "mean s"),
            [
                (name, f"{t.total:.6f}", str(t.count), f"{t.mean:.6f}")
                for name, t in timers.items()
            ],
        ))
    return out.getvalue()


def render_record(record: RunRecord) -> str:
    """Pretty-print a :class:`RunRecord` (identity, then activity)."""
    out = io.StringIO()
    out.write(f"== run record: {record.algorithm} ==\n")
    if record.seed is not None:
        out.write(f"seed: {record.seed}\n")
    for label, mapping in (("instance", record.instance), ("results", record.results)):
        if mapping:
            pairs = "  ".join(f"{k}={v}" for k, v in mapping.items())
            out.write(f"{label}: {pairs}\n")
    if record.counters:
        out.write(_table(
            ("counter", "value"),
            [(name, _num(value)) for name, value in sorted(record.counters.items())],
        ))
    if record.timings:
        out.write(_table(
            ("timer", "total s", "count"),
            [
                (name, f"{entry['seconds']:.6f}", str(entry["count"]))
                for name, entry in sorted(record.timings.items())
            ],
        ))
    return out.getvalue()


def _num(value: int | float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6f}"
    return str(int(value))


def _table(headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    import sys

    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.report <record.json>", file=sys.stderr)
        return 2
    print(render_record(RunRecord.load(args[0])), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
