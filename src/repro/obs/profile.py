"""Memory and CPU profiling hooks: ``--mem-trace`` / ``--profile-out``.

Two opt-in layers on top of the span machinery, both standard-library
only:

* :class:`MemTracker` — a span hook recording each span's **peak
  traced memory** (``tracemalloc``) into ``mem.<span>.peak_bytes``
  counters, so the numbers land in the :class:`~repro.obs.RunRecord`
  next to the operation counts.  :func:`mem_tracing` is the one-call
  context manager the CLI's ``--mem-trace`` flag uses.
* :func:`profile_to` — a ``cProfile`` context manager writing a
  ``.pstats`` file (``--profile-out FILE.pstats``) loadable with
  ``python -m pstats`` or ``snakeviz``.

Both are strictly opt-in: nothing here is imported by the hot paths,
and tracemalloc's own overhead (every allocation is traced) makes
``--mem-trace`` a diagnostic mode, not something to leave on while
timing.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from pathlib import Path

from .core import OBS, Registry, SpanHook

__all__ = ["MemTracker", "mem_tracing", "profile_to"]


class MemTracker(SpanHook):
    """Span hook recording per-span peak traced memory.

    For every span ``name`` the registry gains a counter
    ``mem.<name>.peak_bytes`` holding the **maximum** absolute traced
    memory observed while any span of that name was open (a peak, not
    a sum — repeated spans max-merge, and so do worker registries, see
    :meth:`Registry.merge_state`).

    Nested spans need care: ``tracemalloc.reset_peak()`` is the only
    way to scope a peak to an interval, but resetting inside a child
    span would erase the peak the parent still needs.  So the tracker
    keeps a frame stack and *propagates* each closing span's observed
    peak into its parent's frame before resetting — every enclosing
    span sees max(everything inside it).
    """

    __slots__ = ("registry", "run_peak", "_stack")

    def __init__(self, registry: Registry):
        self.registry = registry
        self.run_peak = 0
        self._stack: list[list[int]] = []

    def begin(self, name: str) -> list[int] | None:
        if not tracemalloc.is_tracing():
            return None
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        frame = [current]  # observed peak for this span so far
        self._stack.append(frame)
        return frame

    def end(self, name: str, frame: list[int] | None, seconds: float) -> None:
        if frame is None:
            return
        _, peak = tracemalloc.get_traced_memory()
        self._stack.pop()
        observed = max(frame[0], peak)
        if self._stack:
            parent = self._stack[-1]
            if observed > parent[0]:
                parent[0] = observed
        tracemalloc.reset_peak()
        if observed > self.run_peak:
            self.run_peak = observed
        counter = self.registry.counter(f"mem.{name}.peak_bytes")
        if observed > counter.value:
            counter.value = observed


@contextmanager
def mem_tracing(registry: Registry | None = None):
    """Per-span peak-memory tracking for the duration of the block.

    Starts ``tracemalloc`` (unless already tracing), attaches a
    :class:`MemTracker` to ``registry`` (default: the shared ``OBS``),
    and on exit records the whole block's peak as ``mem.run.peak_bytes``
    before detaching and stopping tracing.  The registry must be
    *enabled* for spans — and therefore memory frames — to exist.

    ::

        with OBS.capture(), mem_tracing():
            greedy_connector_cds(graph)
        OBS.counters()["mem.greedy.phase2.peak_bytes"]
    """
    registry = OBS if registry is None else registry
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    tracker = MemTracker(registry)
    registry.add_hook(tracker)
    try:
        yield tracker
    finally:
        registry.remove_hook(tracker)
        _, peak = tracemalloc.get_traced_memory()
        run_peak = max(tracker.run_peak, peak)
        counter = registry.counter("mem.run.peak_bytes")
        if run_peak > counter.value:
            counter.value = run_peak
        if started:
            tracemalloc.stop()


@contextmanager
def profile_to(path: str | Path):
    """cProfile the block and write the stats to ``path`` (pstats format).

    The profile covers exactly the block — argument parsing and I/O
    around it are excluded.  Under ``--jobs N`` only the parent process
    is profiled (worker CPU time shows up as pool waiting); profile a
    single experiment with ``--jobs 1`` to see solver internals.

    ::

        with profile_to("solve.pstats"):
            solver(graph)
        # python -m pstats solve.pstats  ->  sort cumtime / stats 20
    """
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))
