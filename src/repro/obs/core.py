"""Counters, timers and the process-local registry.

The instrumentation layer every hot path reports into.  Design rules:

* **Zero dependencies** — standard library only, importable everywhere.
* **Near-zero overhead when disabled** — the registry starts disabled;
  instrumented code guards with ``if OBS.enabled:`` (one attribute load
  and a branch) and aggregates loop-local tallies before reporting, so
  the un-traced hot paths pay essentially nothing.
* **Process-local, not thread-safe** — the experiments, benchmarks and
  the CLI are single-threaded; a lock on every increment would cost
  more than the feature is worth.

Typical use::

    from repro.obs import OBS, trace, traced

    OBS.enable()
    with trace("phase2"):
        ...
        if OBS.enabled:
            OBS.incr("gain.evaluations", evals)
    print(OBS.snapshot())
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Iterator, TypeVar

__all__ = [
    "Counter",
    "Timer",
    "Span",
    "SpanHook",
    "Registry",
    "OBS",
    "trace",
    "traced",
]

F = TypeVar("F", bound=Callable)


class Counter:
    """A named monotonically-growing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int | float = 0):
        self.name = name
        self.value = value

    def incr(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value!r})"


class Timer:
    """A named accumulator of elapsed wall-clock seconds.

    ``total`` sums every recorded span, ``count`` is how many spans were
    recorded, ``last`` is the most recent span's duration and ``max``
    the longest one — enough to derive a mean without storing each
    sample, and enough to merge per-worker timers losslessly
    (total/count/max all combine associatively).
    """

    __slots__ = ("name", "total", "count", "last", "max")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.last = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1
        self.last = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, total={self.total:.6f}, count={self.count})"


class Span:
    """Context manager recording one timed interval into a :class:`Timer`.

    Created by :meth:`Registry.time`; a shared no-op instance is handed
    out when the registry is disabled so the ``with`` statement costs
    only two trivial method calls.
    """

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer | None):
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        if self._timer is not None:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._timer is not None:
            self._timer.record(perf_counter() - self._t0)

    @property
    def active(self) -> bool:
        return self._timer is not None


_NULL_SPAN = Span(None)


class SpanHook:
    """Observer of span begin/end on a :class:`Registry`.

    Hooks are how the event stream (:mod:`repro.obs.events`) and the
    memory tracker (:mod:`repro.obs.profile`) see every existing
    ``trace()``/``@traced`` site without any new call sites in the
    instrumented code: :meth:`Registry.time` hands out a hooked span
    whenever hooks are attached.  Hooks only ever run while the
    registry is *enabled*, so the disabled hot path is untouched.

    ``begin`` may return a token (any object); it is passed back to
    ``end`` along with the measured duration, letting a hook carry
    per-span state without keeping its own stack in sync.

    ``note`` is the point-event channel: :meth:`Registry.note` fans an
    instantaneous, structured observation (a retry, a cell failure —
    see :mod:`repro.reliability`) out to every hook.  The default is a
    no-op so span-only hooks ignore it.
    """

    __slots__ = ()

    def begin(self, name: str) -> object:  # pragma: no cover - interface
        return None

    def end(self, name: str, token: object, seconds: float) -> None:
        """Called after the span's timer recorded ``seconds``."""

    def note(self, name: str, data: dict) -> None:
        """Called for point events (no duration, structured payload)."""


class _HookedSpan(Span):
    """A :class:`Span` that notifies the registry's hooks around the
    timed interval.  Hooks fire in attach order on begin and reverse
    order on end, so a later hook nests inside an earlier one."""

    __slots__ = ("_name", "_hooks", "_tokens")

    def __init__(self, timer: Timer, name: str, hooks: tuple):
        super().__init__(timer)
        self._name = name
        self._hooks = hooks
        self._tokens: list = []

    def __enter__(self) -> "Span":
        self._tokens = [hook.begin(self._name) for hook in self._hooks]
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        seconds = perf_counter() - self._t0
        self._timer.record(seconds)
        for hook, token in zip(reversed(self._hooks), reversed(self._tokens)):
            hook.end(self._name, token, seconds)


class Registry:
    """Process-local collection of counters and timers.

    Starts disabled; everything reported while disabled is dropped at
    the guard in the instrumented code, so enabling mid-process only
    sees activity from that point on.  :meth:`capture` is the one-stop
    "reset, enable, restore" context manager the harness, the CLI and
    the benchmark fixtures use.
    """

    __slots__ = ("enabled", "_counters", "_timers", "_histograms", "_hooks")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict = {}  # name -> metrics.Histogram
        self._hooks: tuple[SpanHook, ...] = ()

    # -- state --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all counters, timers and histograms (the enabled flag
        is kept)."""
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()

    def capture(self, reset: bool = True):
        """Context manager: (optionally reset,) enable, then restore.

        Returns the registry itself, so ``with OBS.capture() as reg:``
        reads naturally.
        """
        return _Capture(self, reset)

    # -- hooks --------------------------------------------------------

    def add_hook(self, hook: SpanHook) -> None:
        """Attach a :class:`SpanHook`; it sees every span while enabled.

        Hooks survive :meth:`reset` (they are observers, not recorded
        state) and are stored as a tuple so :meth:`time` pays only a
        truthiness check when none are attached.
        """
        self._hooks = self._hooks + (hook,)

    def remove_hook(self, hook: SpanHook) -> None:
        self._hooks = tuple(h for h in self._hooks if h is not hook)

    @property
    def hooks(self) -> tuple[SpanHook, ...]:
        return self._hooks

    # -- recording ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def incr(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` to counter ``name`` (regardless of ``enabled``
        — callers guard with ``if OBS.enabled:`` so the disabled path
        never even reaches here)."""
        self.counter(name).incr(amount)

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created on first use."""
        t = self._timers.get(name)
        if t is None:
            t = self._timers[name] = Timer(name)
        return t

    def histogram(self, name: str):
        """The :class:`~repro.obs.metrics.Histogram` called ``name``,
        created on first use.  Imported lazily so the counter/timer
        core stays import-light for code that never observes one."""
        h = self._histograms.get(name)
        if h is None:
            from .metrics import Histogram

            h = self._histograms[name] = Histogram(name)
        return h

    def observe(self, name: str, value: int | float) -> None:
        """Record one sample into histogram ``name`` (callers guard
        with ``if OBS.enabled:``, exactly as for :meth:`incr`)."""
        self.histogram(name).observe(value)

    def note(self, name: str, data: dict | None = None) -> None:
        """Emit an instantaneous structured event to the attached hooks.

        The point-event counterpart of :meth:`time`: no duration, no
        timer — just a name and a JSON-ready payload, delivered to
        every :class:`SpanHook` (the event stream records it as a
        ``note`` line; span-only hooks ignore it).  Dropped while the
        registry is disabled, like everything else.
        """
        if not self.enabled:
            return
        for hook in self._hooks:
            hook.note(name, dict(data or {}))

    def time(self, name: str) -> Span:
        """A span recording into timer ``name``; no-op when disabled.

        When hooks are attached the span also notifies them on
        begin/end — this is the single place the event stream and the
        memory tracker plug into, which is why every existing
        ``trace()``/``@traced`` site emits events with zero changes.
        """
        if not self.enabled:
            return _NULL_SPAN
        if self._hooks:
            return _HookedSpan(self.timer(name), name, self._hooks)
        return Span(self.timer(name))

    # -- reading ------------------------------------------------------

    def counters(self) -> dict[str, int | float]:
        """Counter values keyed by name, sorted for stable output."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def timers(self) -> dict[str, Timer]:
        return {name: self._timers[name] for name in sorted(self._timers)}

    def timings(self) -> dict[str, dict[str, float | int]]:
        """Timer totals in the :class:`~repro.obs.record.RunRecord` shape."""
        return {
            name: {"seconds": t.total, "count": t.count}
            for name, t in self.timers().items()
        }

    def histograms(self) -> dict:
        """Histogram objects keyed by name, sorted for stable output."""
        return {name: self._histograms[name] for name in sorted(self._histograms)}

    def histograms_record(self) -> dict:
        """Histograms in the cumulative RunRecord/snapshot form
        (:meth:`repro.obs.metrics.Histogram.to_record`)."""
        return {name: h.to_record() for name, h in self.histograms().items()}

    def snapshot(self) -> dict:
        """A JSON-ready dump: ``{"counters": ..., "timings": ...}`` —
        plus ``"histograms"`` whenever any were observed (the key is
        omitted otherwise so pre-histogram readers see the old shape).
        """
        snap = {"counters": self.counters(), "timings": self.timings()}
        if self._histograms:
            snap["histograms"] = self.histograms_record()
        return snap

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    # -- cross-process merging ---------------------------------------

    def export_state(self) -> dict:
        """A picklable snapshot for merging across process boundaries.

        Unlike :meth:`snapshot` (the RunRecord shape), this keeps the
        full timer statistics — ``total``/``count``/``max`` — so two
        workers' states merge losslessly.
        """
        state = {
            "counters": self.counters(),
            "timers": {
                name: {"total": t.total, "count": t.count, "max": t.max}
                for name, t in self.timers().items()
            },
        }
        if self._histograms:
            state["histograms"] = {
                name: h.state() for name, h in self.histograms().items()
            }
        return state

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters sum; timers merge ``total``/``count``/``max``;
        histograms merge bucket-exactly
        (:meth:`repro.obs.metrics.Histogram.merge_state`).  The one
        exception: ``mem.*.peak_bytes`` counters (written by
        :class:`repro.obs.profile.MemTracker`) are *peaks*, so they
        merge by maximum — summing peak memory across processes would
        report a number no process ever used.
        """
        for name, value in state.get("counters", {}).items():
            if name.startswith("mem.") and name.endswith(".peak_bytes"):
                counter = self.counter(name)
                if value > counter.value:
                    counter.value = value
            else:
                self.counter(name).incr(value)
        for name, entry in state.get("timers", {}).items():
            timer = self.timer(name)
            timer.total += entry["total"]
            timer.count += entry["count"]
            if entry.get("max", 0.0) > timer.max:
                timer.max = entry["max"]
        for name, entry in state.get("histograms", {}).items():
            self.histogram(name).merge_state(entry)


class _Capture:
    __slots__ = ("_registry", "_reset", "_prev")

    def __init__(self, registry: Registry, reset: bool):
        self._registry = registry
        self._reset = reset
        self._prev = False

    def __enter__(self) -> Registry:
        self._prev = self._registry.enabled
        if self._reset:
            self._registry.reset()
        self._registry.enabled = True
        return self._registry

    def __exit__(self, *exc) -> None:
        self._registry.enabled = self._prev


#: The process-local default registry every instrumented module reports
#: into.  Disabled until a caller (CLI ``--trace`` / ``--stats-out``,
#: the benchmark fixture, or user code) enables it.
OBS = Registry()


def trace(name: str) -> Span:
    """``with trace("phase2"): ...`` on the default registry."""
    return OBS.time(name)


def traced(name: str | F | None = None) -> Callable[[F], F] | F:
    """Decorator timing every call of a function under the default
    registry.

    Usable bare or with an explicit timer name::

        @traced
        def phase_one(...): ...

        @traced("waf.phase2")
        def waf_connectors(...): ...

    When the registry is disabled the wrapper is a single attribute
    check plus the delegated call — near-zero overhead.
    """

    def decorate(fn: F, label: str | None = None) -> F:
        timer_name = label or f"{fn.__module__.rpartition('.')[2]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            # Via OBS.time (not a bare Span) so attached hooks — the
            # event stream, the memory tracker — see decorated calls.
            with OBS.time(timer_name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    if callable(name):
        return decorate(name)
    return lambda fn: decorate(fn, name)
