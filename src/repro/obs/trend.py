"""Bench-trend analysis: align ``BENCH_*.json`` snapshots, diff, gate.

The repo accumulates one benchmark snapshot per optimisation PR
(``BENCH_baseline.json``, ``BENCH_pr2.json``, ``BENCH_pr3.json``, ...)
but until now nothing read them *together*.  This module is the
observatory: it loads any sequence of ``bench_to_json.py`` outputs,
aligns their cases (``<case>/<fixture>`` names such as
``greedy/udg150``), computes median-time and counter deltas between
consecutive snapshots, renders one markdown trend report, and applies
a **regression gate** to the newest pair — the CI ``perf-gate`` job
compares a fresh quick-bench run against the latest committed snapshot
and fails the build on counter drift.

Two kinds of delta, two kinds of budget:

* **Median wall-clock time** is machine- and load-dependent, so it is
  compared against a *noise threshold* (``--threshold``, percent;
  deltas inside it are reported as ``~``).  On shared CI runners the
  time gate should be off (``--no-time-gate``): the report still shows
  the numbers, but only counters can fail the build.
* **Operation counters** are deterministic per fixture (same instance →
  same work, bit for bit), so their budget defaults to **zero** —
  any drift is an algorithmic change that must be explained (or the
  snapshot regenerated intentionally).

CLI (also reachable as ``python -m repro bench compare``)::

    python -m repro bench compare BENCH_baseline.json BENCH_pr2.json \\
        BENCH_pr3.json --threshold 20 --out trend.md
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "BENCH_SCHEMA_ID",
    "BenchSnapshot",
    "CaseDelta",
    "SnapshotComparison",
    "load_snapshot",
    "counter_drift",
    "compare_snapshots",
    "render_trend_report",
    "main",
]

#: Schema tag ``benchmarks/bench_to_json.py`` stamps on its output.
BENCH_SCHEMA_ID = "repro.obs/bench-baseline/v1"


@dataclass
class BenchSnapshot:
    """One parsed ``bench_to_json.py`` output."""

    label: str
    path: str | None
    git_commit: str | None
    repeats: int | None
    fixtures: dict
    cases: dict[str, dict]  # "<case>/<fixture>" -> run record object

    @classmethod
    def from_obj(cls, obj: Mapping, label: str, path: str | None = None) -> "BenchSnapshot":
        schema = obj.get("schema")
        if schema != BENCH_SCHEMA_ID:
            raise ValueError(
                f"{label}: unknown bench schema {schema!r} "
                f"(expected {BENCH_SCHEMA_ID!r})"
            )
        cases = {}
        for run in obj.get("runs", ()):
            name = run.get("algorithm")
            if not isinstance(name, str) or "meta" not in run:
                raise ValueError(f"{label}: malformed run entry {name!r}")
            cases[name] = run
        return cls(
            label=label,
            path=path,
            git_commit=obj.get("git_commit"),
            repeats=obj.get("repeats"),
            fixtures=dict(obj.get("fixtures", {})),
            cases=cases,
        )

    def median(self, case: str) -> float:
        return self.cases[case]["meta"]["seconds_median"]


def load_snapshot(path: str | Path, label: str | None = None) -> BenchSnapshot:
    path = Path(path)
    obj = json.loads(path.read_text())
    return BenchSnapshot.from_obj(obj, label or path.stem, str(path))


def counter_drift(
    old: Mapping[str, float],
    new: Mapping[str, float],
    threshold: float = 0.0,
) -> dict[str, tuple[float, float]]:
    """Counters whose relative drift exceeds ``threshold`` (a fraction).

    Returns ``{name: (old_value, new_value)}`` over the union of both
    counter sets (a counter appearing or disappearing counts as drift
    from/to 0).  This is **the** counter-equivalence implementation —
    ``benchmarks/check_counters.py`` is a thin wrapper over it.
    """
    drifted: dict[str, tuple[float, float]] = {}
    for name in sorted(set(old) | set(new)):
        a = old.get(name, 0)
        b = new.get(name, 0)
        if a == b:
            continue
        rel = abs(b - a) / abs(a) if a else float("inf")
        if rel > threshold:
            drifted[name] = (a, b)
    return drifted


@dataclass
class CaseDelta:
    """One aligned case between two snapshots."""

    case: str
    old_median: float
    new_median: float
    counters: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def rel_time(self) -> float:
        """Relative median-time change: +0.25 means 25% slower."""
        if self.old_median == 0:
            return 0.0 if self.new_median == 0 else float("inf")
        return (self.new_median - self.old_median) / self.old_median

    @property
    def speedup(self) -> float:
        """old/new ratio: >1 means the new snapshot is faster."""
        return self.old_median / self.new_median if self.new_median else float("inf")


@dataclass
class SnapshotComparison:
    """All aligned deltas between two snapshots, plus the misalignment."""

    old_label: str
    new_label: str
    deltas: list[CaseDelta]
    only_old: list[str]
    only_new: list[str]

    def time_regressions(self, threshold: float) -> list[CaseDelta]:
        """Deltas slower than the noise threshold (a fraction)."""
        return [d for d in self.deltas if d.rel_time > threshold]

    def counter_regressions(self) -> list[CaseDelta]:
        return [d for d in self.deltas if d.counters]


def compare_snapshots(
    old: BenchSnapshot,
    new: BenchSnapshot,
    counter_threshold: float = 0.0,
) -> SnapshotComparison:
    """Align two snapshots' cases and compute every delta.

    Cases present in only one snapshot are listed, not failed — a new
    fixture tier or a retired case is an intentional change; the gate
    judges only what both snapshots measured.
    """
    common = [name for name in old.cases if name in new.cases]
    deltas = [
        CaseDelta(
            case=name,
            old_median=old.median(name),
            new_median=new.median(name),
            counters=counter_drift(
                old.cases[name].get("counters", {}),
                new.cases[name].get("counters", {}),
                counter_threshold,
            ),
        )
        for name in common
    ]
    return SnapshotComparison(
        old_label=old.label,
        new_label=new.label,
        deltas=deltas,
        only_old=sorted(set(old.cases) - set(new.cases)),
        only_new=sorted(set(new.cases) - set(old.cases)),
    )


# -- markdown rendering ----------------------------------------------


def _ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.3g} ms"


def _flag(delta: CaseDelta, threshold: float) -> str:
    if delta.counters:
        return "**COUNTER DRIFT**"
    if delta.rel_time > threshold:
        return "**SLOWER**"
    if delta.rel_time < -threshold:
        return f"improved ({delta.speedup:.1f}x)"
    return "~"


def render_trend_report(
    snapshots: Sequence[BenchSnapshot],
    comparisons: Sequence[SnapshotComparison],
    time_threshold: float,
    time_gate: bool = True,
) -> str:
    """The full markdown trend report over a snapshot series."""
    lines: list[str] = ["# Bench trend report", ""]
    lines.append("| snapshot | git | repeats | cases |")
    lines.append("|---|---|---|---|")
    for snap in snapshots:
        commit = (snap.git_commit or "-")[:12]
        lines.append(
            f"| {snap.label} | {commit} | {snap.repeats} | {len(snap.cases)} |"
        )
    lines.append("")

    # Series overview: median per case across every snapshot that has it.
    all_cases = sorted({c for s in snapshots for c in s.cases})
    series_cases = [
        c for c in all_cases if sum(c in s.cases for s in snapshots) >= 2
    ]
    if series_cases:
        lines.append("## Median seconds across the series")
        lines.append("")
        lines.append("| case | " + " | ".join(s.label for s in snapshots) + " |")
        lines.append("|---|" + "---|" * len(snapshots))
        for case in series_cases:
            cells = [
                _ms(s.median(case)) if case in s.cases else "-" for s in snapshots
            ]
            lines.append(f"| {case} | " + " | ".join(cells) + " |")
        lines.append("")

    for comp in comparisons:
        lines.append(f"## {comp.old_label} → {comp.new_label}")
        lines.append("")
        if not comp.deltas:
            lines.append("(no aligned cases)")
            lines.append("")
            continue
        lines.append("| case | old median | new median | Δ time | flag |")
        lines.append("|---|---|---|---|---|")
        for d in sorted(comp.deltas, key=lambda d: d.rel_time):
            lines.append(
                f"| {d.case} | {_ms(d.old_median)} | {_ms(d.new_median)} "
                f"| {d.rel_time:+.1%} | {_flag(d, time_threshold)} |"
            )
        drifted = comp.counter_regressions()
        if drifted:
            lines.append("")
            lines.append("Counter drift (deterministic — explain or regenerate):")
            lines.append("")
            for d in drifted:
                for name, (a, b) in d.counters.items():
                    lines.append(f"- `{d.case}` `{name}`: {a:g} → {b:g}")
        if comp.only_old or comp.only_new:
            lines.append("")
            if comp.only_old:
                lines.append(
                    f"Cases only in {comp.old_label}: "
                    + ", ".join(f"`{c}`" for c in comp.only_old)
                )
            if comp.only_new:
                lines.append(
                    f"Cases only in {comp.new_label}: "
                    + ", ".join(f"`{c}`" for c in comp.only_new)
                )
        lines.append("")

    if comparisons:
        gate = comparisons[-1]
        lines.append("## Gate (newest pair: " f"{gate.old_label} → {gate.new_label})")
        lines.append("")
        problems = _gate_problems(gate, time_threshold, time_gate)
        if problems:
            lines.append("**REGRESSED:**")
            lines.append("")
            lines.extend(f"- {p}" for p in problems)
        else:
            skipped = (
                "" if time_gate else " (time drift advisory: --no-time-gate)"
            )
            lines.append(f"No regression beyond budget{skipped}.")
        lines.append("")
    return "\n".join(lines)


def _gate_problems(
    comparison: SnapshotComparison, time_threshold: float, time_gate: bool
) -> list[str]:
    """The regression lines that make the gate fail (empty = pass)."""
    problems = []
    for d in comparison.counter_regressions():
        for name, (a, b) in d.counters.items():
            problems.append(f"`{d.case}` counter `{name}` drifted {a:g} → {b:g}")
    if time_gate:
        for d in comparison.time_regressions(time_threshold):
            problems.append(
                f"`{d.case}` median time {_ms(d.old_median)} → "
                f"{_ms(d.new_median)} ({d.rel_time:+.1%}, budget "
                f"{time_threshold:.0%})"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench compare",
        description=(
            "Align a series of bench_to_json.py snapshots, render a "
            "markdown trend report, and fail (exit 1) when the newest "
            "pair regresses beyond budget."
        ),
    )
    parser.add_argument(
        "snapshots", nargs="+", metavar="BENCH.json",
        help="two or more snapshots, oldest first",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="time noise threshold in percent (default: 20)",
    )
    parser.add_argument(
        "--counter-threshold",
        type=float,
        default=0.0,
        metavar="PCT",
        help="counter drift budget in percent (default: 0 — exact match)",
    )
    parser.add_argument(
        "--no-time-gate",
        action="store_true",
        help=(
            "report time deltas but never fail on them (for shared CI "
            "runners, where only the deterministic counters are trusted)"
        ),
    )
    parser.add_argument(
        "--out", metavar="FILE", help="also write the markdown report here"
    )
    args = parser.parse_args(argv)
    if len(args.snapshots) < 2:
        print("need at least two snapshots to compare", file=sys.stderr)
        return 2

    snapshots = []
    for path in args.snapshots:
        try:
            snapshots.append(load_snapshot(path))
        except (OSError, ValueError) as exc:
            print(f"cannot load {path}: {exc}", file=sys.stderr)
            return 2

    time_threshold = args.threshold / 100.0
    comparisons = [
        compare_snapshots(a, b, counter_threshold=args.counter_threshold / 100.0)
        for a, b in zip(snapshots, snapshots[1:])
    ]
    report = render_trend_report(
        snapshots,
        comparisons,
        time_threshold=time_threshold,
        time_gate=not args.no_time_gate,
    )
    print(report)
    if args.out:
        Path(args.out).write_text(report + "\n")

    problems = _gate_problems(
        comparisons[-1], time_threshold, time_gate=not args.no_time_gate
    )
    if problems:
        for p in problems:
            print(f"REGRESSION: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
