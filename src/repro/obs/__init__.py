"""``repro.obs`` — instrumentation and run records.

A zero-dependency observability layer for the whole library:

* :class:`Counter` / :class:`Timer` / :class:`Span` primitives held in
  a process-local :class:`Registry` (the shared default is :data:`OBS`);
* the :func:`traced` decorator and :func:`trace` context manager, both
  near-zero overhead while the registry is disabled (the default);
* :class:`RunRecord` — a versioned, schema-checked JSON/CSV snapshot of
  one run: algorithm, instance parameters, seed, counters, timings and
  result sizes.

The solvers, the UDG builders, the distributed simulator and the
experiment harness all report here; ``python -m repro ... --trace`` /
``--stats-out`` and the ``benchmarks/bench_to_json.py`` exporter are
the front ends.  See ``docs/observability.md``.
"""

from .core import OBS, Counter, Registry, Span, SpanHook, Timer, trace, traced
from .record import (
    RUN_RECORD_SCHEMA,
    SCHEMA_ID,
    RunRecord,
    assert_valid_run_record,
    records_to_csv,
    validate_run_record,
)
# Lazy so ``python -m repro.obs.report`` (and the other runnable
# submodules) do not re-import the module they are about to execute
# (runpy's double-import RuntimeWarning), and so the cheap core import
# never pays for tracemalloc/cProfile/trend machinery it may not use.
_LAZY = {
    "render_record": "report",
    "render_report": "report",
    "EVENT_SCHEMA_ID": "events",
    "EventLog": "events",
    "SpanNode": "events",
    "merge_events": "events",
    "parse_events": "events",
    "read_events": "events",
    "replay": "events",
    "validate_events": "events",
    "write_events": "events",
    "Histogram": "metrics",
    "LAYOUT_ID": "metrics",
    "record_percentile": "metrics",
    "validate_histogram_record": "metrics",
    "EXPOSITION_VERSION": "expose",
    "SNAPSHOT_SCHEMA_ID": "expose",
    "MetricsExporter": "expose",
    "PeriodicSnapshotter": "expose",
    "SnapshotStream": "expose",
    "metric_name": "expose",
    "parse_snapshots": "expose",
    "read_snapshots": "expose",
    "render_exposition": "expose",
    "snapshot_state": "expose",
    "validate_exposition": "expose",
    "validate_snapshot": "expose",
    "MemTracker": "profile",
    "mem_tracing": "profile",
    "profile_to": "profile",
    "BENCH_SCHEMA_ID": "trend",
    "BenchSnapshot": "trend",
    "compare_snapshots": "trend",
    "counter_drift": "trend",
    "load_snapshot": "trend",
    "render_trend_report": "trend",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "OBS",
    "Counter",
    "Registry",
    "Span",
    "SpanHook",
    "Timer",
    "trace",
    "traced",
    "RUN_RECORD_SCHEMA",
    "SCHEMA_ID",
    "RunRecord",
    "assert_valid_run_record",
    "records_to_csv",
    "validate_run_record",
    *sorted(_LAZY),
]
