"""``repro.obs`` — instrumentation and run records.

A zero-dependency observability layer for the whole library:

* :class:`Counter` / :class:`Timer` / :class:`Span` primitives held in
  a process-local :class:`Registry` (the shared default is :data:`OBS`);
* the :func:`traced` decorator and :func:`trace` context manager, both
  near-zero overhead while the registry is disabled (the default);
* :class:`RunRecord` — a versioned, schema-checked JSON/CSV snapshot of
  one run: algorithm, instance parameters, seed, counters, timings and
  result sizes.

The solvers, the UDG builders, the distributed simulator and the
experiment harness all report here; ``python -m repro ... --trace`` /
``--stats-out`` and the ``benchmarks/bench_to_json.py`` exporter are
the front ends.  See ``docs/observability.md``.
"""

from .core import OBS, Counter, Registry, Span, Timer, trace, traced
from .record import (
    RUN_RECORD_SCHEMA,
    SCHEMA_ID,
    RunRecord,
    assert_valid_run_record,
    records_to_csv,
    validate_run_record,
)
# Lazy so ``python -m repro.obs.report`` does not re-import the module
# it is about to execute (runpy's double-import RuntimeWarning).
def __getattr__(name):
    if name in ("render_record", "render_report"):
        from . import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "OBS",
    "Counter",
    "Registry",
    "Span",
    "Timer",
    "trace",
    "traced",
    "RUN_RECORD_SCHEMA",
    "SCHEMA_ID",
    "RunRecord",
    "assert_valid_run_record",
    "records_to_csv",
    "validate_run_record",
    "render_record",
    "render_report",
]
