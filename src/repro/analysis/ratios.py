"""Approximation-ratio measurement.

The paper proves worst-case ratios (7 1/3 and 6 7/18); the experiments
measure realized ratios ``|CDS| / gamma_c`` on sampled instances.  For
small instances ``gamma_c`` comes from the exact solver; beyond that we
fall back to the paper's own certified lower bound (Corollary 7
inverted, fed with the exact independence number or a heuristic MIS),
in which case the reported ratio is an *upper estimate* and is flagged
as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

from ..graphs.graph import Graph
from ..cds.base import CDSResult
from ..cds.bounds import gamma_c_lower_bound_from_alpha
from ..cds.exact import minimum_cds
from ..mis.exact import independence_number
from ..mis.greedy import lexicographic_mis

N = TypeVar("N", bound=Hashable)

__all__ = ["GammaEstimate", "RatioMeasurement", "estimate_gamma_c", "measure_ratio"]


@dataclass(frozen=True)
class GammaEstimate:
    """``gamma_c`` or a certified lower bound on it.

    ``exact`` tells which: when False, ``value <= gamma_c`` and any
    ratio computed against it over-estimates the true ratio.
    """

    value: int
    exact: bool
    method: str


@dataclass(frozen=True)
class RatioMeasurement:
    """One algorithm's realized ratio on one instance."""

    algorithm: str
    cds_size: int
    gamma: GammaEstimate

    @property
    def ratio(self) -> float:
        return self.cds_size / self.gamma.value


def estimate_gamma_c(
    graph: Graph[N],
    exact_node_limit: int = 30,
    exact_alpha_limit: int = 60,
    upper_bound: int | None = None,
) -> GammaEstimate:
    """``gamma_c`` exactly when affordable, else a certified lower bound.

    Policy: exact branch-and-bound up to ``exact_node_limit`` nodes;
    then the Corollary 7 bound fed with the exact independence number
    up to ``exact_alpha_limit`` nodes; beyond that, fed with a greedy
    MIS (still a valid lower bound since ``|MIS| <= alpha``).
    """
    n = len(graph)
    if n <= exact_node_limit:
        return GammaEstimate(
            value=len(minimum_cds(graph, upper_bound=upper_bound)),
            exact=True,
            method="branch-and-bound",
        )
    if n <= exact_alpha_limit:
        alpha = independence_number(graph)
        return GammaEstimate(
            value=gamma_c_lower_bound_from_alpha(alpha),
            exact=False,
            method="corollary7(alpha exact)",
        )
    mis_size = len(lexicographic_mis(graph))
    return GammaEstimate(
        value=gamma_c_lower_bound_from_alpha(mis_size),
        exact=False,
        method="corollary7(greedy MIS)",
    )


def measure_ratio(
    graph: Graph[N],
    algorithm: Callable[[Graph[N]], CDSResult],
    gamma: GammaEstimate | None = None,
    **estimate_kwargs,
) -> RatioMeasurement:
    """Run ``algorithm`` on ``graph`` and relate its size to ``gamma_c``.

    Pass a precomputed ``gamma`` when measuring several algorithms on
    the same instance (the expensive part is the optimum, not the
    heuristics).
    """
    result = algorithm(graph)
    if not result.is_valid(graph):
        raise AssertionError(f"{result.algorithm} produced an invalid CDS")
    if gamma is None:
        gamma = estimate_gamma_c(graph, **estimate_kwargs)
    return RatioMeasurement(
        algorithm=result.algorithm, cds_size=result.size, gamma=gamma
    )
