"""Empirical verification of every bound the paper proves.

Each checker returns a :class:`BoundCheck` — the named claim, the
measured left-hand side, the bound, and whether it holds.  A failing
check on valid inputs would mean either the reproduction or the paper
is wrong, so the test suite asserts ``holds`` across randomized and
adversarial instance families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Sequence, TypeVar

from ..geometry.point import Point
from ..geometry.packing import phi
from ..geometry.stars import is_star
from ..cds import bounds
from ..cds.base import CDSResult
from .independence import packing_count

N = TypeVar("N", bound=Hashable)

__all__ = [
    "BoundCheck",
    "check_theorem3",
    "check_theorem3_conditional",
    "check_theorem6",
    "check_theorem6_variants",
    "check_corollary7",
    "check_ratio_bound",
    "check_lemma9_trace",
    "PrefixDecomposition",
    "prefix_decomposition",
]


@dataclass(frozen=True)
class BoundCheck:
    """One verified inequality: ``lhs <= rhs`` for claim ``name``."""

    name: str
    lhs: float
    rhs: float

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs + 1e-9

    @property
    def slack(self) -> float:
        """How far below the bound the measurement sits."""
        return self.rhs - self.lhs


def check_theorem3(
    star: Sequence[Point], independent: Sequence[Point]
) -> BoundCheck:
    """Theorem 3: ``|I(S)| <= phi_n`` for an n-star ``S``.

    Raises:
        ValueError: if ``star`` is not actually a star.
    """
    if not is_star(star):
        raise ValueError("input set is not a star")
    n = len(star)
    return BoundCheck(
        name=f"theorem3(n={n})",
        lhs=packing_count(independent, star),
        rhs=phi(n),
    )


def check_theorem3_conditional(
    star: Sequence[Point], independent: Sequence[Point]
) -> BoundCheck | None:
    """Theorem 3's conditional claim: for ``n <= 4`` stars where every
    member sees at most 4 independent points, ``|I(S)| <= phi_n - 1``.

    Returns ``None`` when the premise does not apply (larger star, or
    some member with 5 independent points in range).
    """
    from .independence import points_near

    if not is_star(star):
        raise ValueError("input set is not a star")
    n = len(star)
    if n > 4:
        return None
    if any(len(points_near(independent, v)) > 4 for v in star):
        return None
    return BoundCheck(
        name=f"theorem3-conditional(n={n})",
        lhs=packing_count(independent, star),
        rhs=phi(n) - 1,
    )


def check_theorem6(
    connected_set: Sequence[Point], independent: Sequence[Point]
) -> BoundCheck:
    """Theorem 6: ``|I(V)| <= 11n/3 + 1`` for connected ``V`` (n >= 2)."""
    n = len(connected_set)
    return BoundCheck(
        name=f"theorem6(n={n})",
        lhs=packing_count(independent, connected_set),
        rhs=float(bounds.neighborhood_bound(n)),
    )


def check_theorem6_variants(
    connected_set: Sequence[Point], independent: Sequence[Point]
) -> list[BoundCheck]:
    """Theorem 6's conditional refinements, where their premises apply.

    * every ``|I(v)| <= 4``  →  ``|I(V)| <= 11n/3``;
    * ``V ∩ I ≠ ∅``          →  ``|I(V)| <= 11n/3 − 1``.

    Returns the checks whose premises hold (possibly empty).
    """
    from .independence import points_near

    n = len(connected_set)
    if n < 2:
        raise ValueError("Theorem 6 requires n >= 2")
    count = packing_count(independent, connected_set)
    checks: list[BoundCheck] = []
    if all(len(points_near(independent, v)) <= 4 for v in connected_set):
        checks.append(
            BoundCheck(
                name=f"theorem6-capped(n={n})",
                lhs=count,
                rhs=float(bounds.neighborhood_bound_capped_degree(n)),
            )
        )
    independent_set = set(independent)
    if any(v in independent_set for v in connected_set):
        checks.append(
            BoundCheck(
                name=f"theorem6-intersecting(n={n})",
                lhs=count,
                rhs=float(bounds.neighborhood_bound_intersecting(n)),
            )
        )
    return checks


def check_corollary7(alpha: int, gamma_c: int) -> BoundCheck:
    """Corollary 7: ``alpha <= 3 2/3 gamma_c + 1``."""
    return BoundCheck(
        name="corollary7",
        lhs=alpha,
        rhs=float(bounds.alpha_bound_this_paper(gamma_c)),
    )


def check_ratio_bound(result: CDSResult, gamma_c: int) -> BoundCheck:
    """Theorem 8 / Theorem 10, dispatched on the algorithm label.

    Algorithms without a proven bound in this paper check against
    ``+inf`` (always holds) so sweeps can run uniformly.
    """
    caps = {
        "waf": bounds.waf_bound_this_paper,
        "waf-distributed": bounds.waf_bound_this_paper,
        "greedy-connector": bounds.greedy_bound_this_paper,
        "greedy-distributed": bounds.greedy_bound_this_paper,
    }
    cap = caps.get(result.algorithm)
    rhs = float(cap(gamma_c)) if cap is not None else math.inf
    return BoundCheck(
        name=f"ratio({result.algorithm})", lhs=result.size, rhs=rhs
    )


def check_lemma9_trace(result: CDSResult, gamma_c: int) -> list[BoundCheck]:
    """Lemma 9 along a greedy run: the i-th realized gain is at least
    ``max(1, ceil(q_i / gamma_c) - 1)``.

    Requires a result carrying ``gain_history`` / ``q_history`` meta
    (the Section IV algorithm records them).
    """
    gains = result.meta.get("gain_history")
    q_values = result.meta.get("q_history")
    if gains is None or q_values is None:
        raise ValueError("result has no greedy trace in meta")
    checks = []
    for i, g in enumerate(gains):
        need = bounds.lemma9_min_gain(q_values[i], gamma_c)
        checks.append(
            BoundCheck(name=f"lemma9(step={i},q={q_values[i]})", lhs=need, rhs=g)
        )
    return checks


@dataclass(frozen=True)
class PrefixDecomposition:
    """The C1/C2/C3 split from the proof of Theorem 10.

    ``C1`` is the shortest prefix of the connector sequence with
    ``q <= floor(11 gamma_c / 3) - 3``; ``C1 ∪ C2`` the shortest with
    ``q <= 2 gamma_c + 1``; ``C3`` the rest.  The proof shows
    ``|C1| <= 1``, ``|C2| <= 13 gamma_c / 18 - 1`` and
    ``|C3| <= 2 gamma_c - 1``.
    """

    c1: int
    c2: int
    c3: int
    gamma_c: int

    def checks(self) -> list[BoundCheck]:
        g = self.gamma_c
        out = [BoundCheck(name="theorem10.C1", lhs=self.c1, rhs=1.0)]
        if g >= 3:
            # The |C2| cap is stated for gamma_c >= 3 (C2 is empty below).
            out.append(
                BoundCheck(
                    name="theorem10.C2",
                    lhs=self.c2,
                    rhs=float(Fraction(13, 18) * g - 1) if g > 2 else 0.0,
                )
            )
        else:
            out.append(BoundCheck(name="theorem10.C2", lhs=self.c2, rhs=0.0))
        out.append(BoundCheck(name="theorem10.C3", lhs=self.c3, rhs=2.0 * g - 1.0))
        return out


def prefix_decomposition(
    q_history: Sequence[int], gamma_c: int
) -> PrefixDecomposition:
    """Split a greedy connector run into the Theorem 10 prefixes.

    ``q_history[k]`` must be the component count after ``k`` selections
    (so ``q_history[0] = |I|`` and ``q_history[-1] = 1``).
    """
    if gamma_c < 1:
        raise ValueError("gamma_c must be >= 1")
    total = len(q_history) - 1
    # Clamp thresholds to 1: q always reaches 1, so the prefixes are
    # well-defined even for gamma_c = 1 where the raw t1 would be 0.
    t1 = max(1, math.floor(Fraction(11, 3) * gamma_c) - 3)
    t2 = max(1, 2 * gamma_c + 1)
    len_c1 = next(k for k in range(total + 1) if q_history[k] <= t1)
    len_c12 = next(k for k in range(total + 1) if q_history[k] <= t2)
    len_c12 = max(len_c12, len_c1)
    return PrefixDecomposition(
        c1=len_c1,
        c2=len_c12 - len_c1,
        c3=total - len_c12,
        gamma_c=gamma_c,
    )
