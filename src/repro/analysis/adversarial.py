"""Adversarial instance search: how bad can the ratio actually get?

Random UDGs realize ratios around 1.5 — far below the proven 7 1/3 and
6 7/18.  This module searches for *bad* instances by hill-climbing over
node positions: perturb one node at a time, keep the move whenever the
realized ``|CDS| / gamma_c`` does not decrease (exact ``gamma_c``, so
instance sizes stay small).  Chain-like seeds are included because the
paper's own worst-case family (Figure 2) is linear.

The search is a probe, not a proof: it gives empirical lower bounds on
each algorithm's worst-case ratio, showing how much of the gap between
the average case and the theorems adversarial geometry can recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..geometry.point import Point
from ..graphs.graph import Graph
from ..graphs.generators import chain_points, uniform_points
from ..graphs.traversal import is_connected
from ..graphs.udg import unit_disk_graph
from ..cds.base import CDSResult
from ..cds.exact import minimum_cds

__all__ = ["AdversarialResult", "adversarial_ratio_search"]


@dataclass(frozen=True)
class AdversarialResult:
    """Outcome of one search run."""

    algorithm: str
    best_ratio: float
    best_points: tuple[Point, ...]
    cds_size: int
    gamma_c: int
    accepted_moves: int
    iterations: int


def _ratio_of(
    points: Sequence[Point], algorithm: Callable[[Graph[Point]], CDSResult]
) -> tuple[float, int, int] | None:
    """Realized ratio on a deployment, or None if not connected."""
    graph = unit_disk_graph(points)
    if not is_connected(graph):
        return None
    result = algorithm(graph)
    gamma_c = len(minimum_cds(graph, upper_bound=result.size))
    return result.size / gamma_c, result.size, gamma_c


def _seed_deployments(n: int, rng: random.Random) -> list[list[Point]]:
    """Starting points: a jittered chain plus random connected fields."""
    seeds: list[list[Point]] = []
    chain = chain_points(n, spacing=0.95)
    seeds.append(
        [Point(p.x, p.y + rng.uniform(-0.02, 0.02)) for p in chain]
    )
    side = max(1.5, 0.75 * n**0.5)
    for _ in range(3):
        pts = uniform_points(n, side, seed=rng.randint(0, 10**9))
        if is_connected(unit_disk_graph(pts)):
            seeds.append(pts)
    return seeds


def adversarial_ratio_search(
    n: int,
    algorithm: Callable[[Graph[Point]], CDSResult],
    iterations: int = 150,
    seed: int = 0,
    step: float = 0.35,
) -> AdversarialResult:
    """Hill-climb node positions to maximize ``|CDS| / gamma_c``.

    Args:
        n: instance size (keep <= ~18: every evaluation solves an exact
            minimum CDS).
        algorithm: the CDS construction under attack.
        iterations: proposal count across all seeds.
        seed: RNG seed; the search is deterministic given it.
        step: Gaussian proposal scale for position perturbations.

    Returns:
        The best instance found and its realized ratio.
    """
    if n < 3:
        raise ValueError("adversarial search needs n >= 3")
    rng = random.Random(seed)
    best: tuple[float, list[Point], int, int] | None = None
    accepted = 0
    label = "?"

    for start in _seed_deployments(n, rng):
        current = list(start)
        evaluated = _ratio_of(current, algorithm)
        if evaluated is None:
            continue
        ratio, size, gamma_c = evaluated
        label = algorithm(unit_disk_graph(current)).algorithm
        if best is None or ratio > best[0]:
            best = (ratio, list(current), size, gamma_c)
        for _ in range(iterations // 4):
            index = rng.randrange(n)
            proposal = list(current)
            proposal[index] = Point(
                current[index].x + rng.gauss(0.0, step),
                current[index].y + rng.gauss(0.0, step),
            )
            evaluated = _ratio_of(proposal, algorithm)
            if evaluated is None:
                continue
            new_ratio, new_size, new_gamma = evaluated
            # Accept non-worsening moves (plateau walks escape local optima).
            if new_ratio >= ratio:
                current, ratio = proposal, new_ratio
                accepted += 1
                if best is None or new_ratio > best[0]:
                    best = (new_ratio, list(proposal), new_size, new_gamma)

    if best is None:
        raise ValueError("no connected deployment found; lower n or step")
    return AdversarialResult(
        algorithm=label,
        best_ratio=best[0],
        best_points=tuple(best[1]),
        cds_size=best[2],
        gamma_c=best[3],
        accepted_moves=accepted,
        iterations=iterations,
    )
