"""Small statistics helpers for the experiment tables.

Means, sample standard deviations and normal-approximation confidence
intervals — enough for the "mean ± CI over seeds" rows the experiment
harness prints, without dragging in a stats dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def ci95_half_width(self) -> float:
        """Half-width of the normal-approximation 95% CI of the mean."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.count)

    def format(self, precision: int = 2) -> str:
        return (
            f"{self.mean:.{precision}f} ± {self.ci95_half_width():.{precision}f} "
            f"[{self.minimum:.{precision}f}, {self.maximum:.{precision}f}]"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty sample")
    n = len(vals)
    mean = sum(vals) / n
    if n >= 2:
        var = sum((v - mean) ** 2 for v in vals) / (n - 1)
        stdev = math.sqrt(var)
    else:
        stdev = 0.0
    return Summary(
        count=n, mean=mean, stdev=stdev, minimum=min(vals), maximum=max(vals)
    )
