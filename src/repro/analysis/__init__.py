"""Analysis: theorem checkers, packing counters, ratio measurement."""

from .independence import (
    empirical_max_packing,
    lemma1_quantity,
    lemma2_quantity,
    packing_count,
    points_near,
    symmetric_difference_count,
)
from .ratios import GammaEstimate, RatioMeasurement, estimate_gamma_c, measure_ratio
from .bounds_check import (
    BoundCheck,
    PrefixDecomposition,
    check_corollary7,
    check_lemma9_trace,
    check_ratio_bound,
    check_theorem3,
    check_theorem3_conditional,
    check_theorem6,
    check_theorem6_variants,
    prefix_decomposition,
)
from .adversarial import AdversarialResult, adversarial_ratio_search
from .statistics import Summary, summarize

__all__ = [
    "empirical_max_packing",
    "lemma1_quantity",
    "lemma2_quantity",
    "packing_count",
    "points_near",
    "symmetric_difference_count",
    "GammaEstimate",
    "RatioMeasurement",
    "estimate_gamma_c",
    "measure_ratio",
    "BoundCheck",
    "PrefixDecomposition",
    "check_corollary7",
    "check_lemma9_trace",
    "check_ratio_bound",
    "check_theorem3",
    "check_theorem3_conditional",
    "check_theorem6",
    "check_theorem6_variants",
    "prefix_decomposition",
    "Summary",
    "summarize",
    "AdversarialResult",
    "adversarial_ratio_search",
]
