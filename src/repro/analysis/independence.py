"""Neighborhood packing counts — the quantities of Section II.

For an independent point set ``I`` and points/sets in the plane, the
paper works with ``I(u) = I ∩ D_u`` and ``I(U) = ∪_u I(u)``.  These
helpers compute those sets and the specific quantities the lemmas
bound (the Lemma 1 symmetric difference, the Lemma 2 union), plus an
empirical maximum-packing search used to probe the bounds from below.
"""

from __future__ import annotations

from typing import Sequence

from ..geometry.point import EPS, Point
from ..geometry.disks import in_disk, points_in_neighborhood
from ..geometry.packing import (
    greedy_independent_subset,
    max_independent_subset,
    neighborhood_candidates,
)

__all__ = [
    "points_near",
    "packing_count",
    "symmetric_difference_count",
    "lemma1_quantity",
    "lemma2_quantity",
    "empirical_max_packing",
]


def points_near(independent: Sequence[Point], u: Point, tol: float = EPS) -> list[Point]:
    """``I(u) = I ∩ D_u``: members of ``independent`` within unit distance."""
    return [p for p in independent if in_disk(p, u, 1.0, tol)]


def packing_count(independent: Sequence[Point], centers: Sequence[Point]) -> int:
    """``|I(U)|``: members of ``independent`` in the neighborhood of ``centers``."""
    return len(points_in_neighborhood(independent, centers))


def symmetric_difference_count(
    independent: Sequence[Point], o: Point, u: Point
) -> int:
    """``|I(o) Δ I(u)|`` — bounded by 7 when ``|ou| <= 1`` (Lemma 1)."""
    io = set(points_near(independent, o))
    iu = set(points_near(independent, u))
    return len(io ^ iu)


def lemma1_quantity(independent: Sequence[Point], o: Point, u: Point) -> int:
    """Alias for :func:`symmetric_difference_count` (the Lemma 1 LHS)."""
    return symmetric_difference_count(independent, o, u)


def lemma2_quantity(
    independent: Sequence[Point], o: Point, others: Sequence[Point]
) -> tuple[int, bool]:
    """The Lemma 2 pair: ``|(∪_j I(u_j)) \\ I(o)|`` and its premise.

    Returns ``(count, premise)`` where ``premise`` is whether
    ``(I(o) \\ {o}) \\ ∪_j I(u_j)`` is non-empty — under which Lemma 2
    caps the count at 11 (for three ``others`` inside ``D_o``).
    """
    io = set(points_near(independent, o))
    union_others: set[Point] = set()
    for u in others:
        union_others |= set(points_near(independent, u))
    count = len(union_others - io)
    premise = bool((io - {o}) - union_others)
    return count, premise


def empirical_max_packing(
    centers: Sequence[Point],
    step: float = 0.18,
    exact_limit: int | None = None,
    tol: float = EPS,
) -> list[Point]:
    """Search for a large independent packing in a neighborhood.

    Builds a candidate grid over ``∪ D_u`` and extracts an independent
    subset — greedily by default, exactly (branch and bound over the
    candidate conflict graph) when the candidate count is small enough
    to afford it.  Used by the Theorem 3 / Theorem 6 experiments to
    show how close random-free packings get to ``phi_n`` and
    ``11n/3 + 1``; the *tight* witnesses come from
    :mod:`repro.geometry.constructions` instead.

    Args:
        centers: the star / connected set.
        step: candidate grid pitch (finer = stronger packings, slower).
        exact_limit: if the candidate set has at most this many points,
            use the exact solver; default: always greedy.
    """
    candidates = neighborhood_candidates(centers, step)
    if exact_limit is not None and len(candidates) <= exact_limit:
        return max_independent_subset(candidates, tol)
    # Several greedy passes from different corners; keep the best.
    best: list[Point] = []
    for key in (
        None,
        lambda p: (-p.x, p.y),
        lambda p: (p.y, p.x),
        lambda p: (-p.y, -p.x),
        lambda p: (p.x * 0.618 + p.y, p.x),
    ):
        got = greedy_independent_subset(candidates, tol, key=key)
        if len(got) > len(best):
            best = got
    return best
