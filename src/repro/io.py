"""Persistence: deployments and CDS results on disk.

A downstream user wants to pin down the exact instance a result came
from.  Deployments (point sets) are stored as two-column CSV; results
as JSON carrying the algorithm label, the node set and the phase split.
Round-tripping is exact: coordinates are written with ``repr`` so
``float`` survives bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .geometry.point import Point
from .cds.base import CDSResult

__all__ = [
    "save_points",
    "load_points",
    "save_result",
    "load_result",
]


def save_points(points: Iterable[Point], path: str | Path) -> None:
    """Write a deployment as ``x,y`` CSV (with header)."""
    lines = ["x,y"]
    for p in points:
        lines.append(f"{p.x!r},{p.y!r}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_points(path: str | Path) -> list[Point]:
    """Read a deployment written by :func:`save_points`.

    Raises:
        ValueError: on a malformed file.
    """
    text = Path(path).read_text().strip()
    lines = text.splitlines()
    if not lines or lines[0].strip().lower() != "x,y":
        raise ValueError(f"{path}: expected 'x,y' header")
    points: list[Point] = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = line.split(",")
        if len(parts) != 2:
            raise ValueError(f"{path}:{lineno}: expected two columns")
        try:
            points.append(Point(float(parts[0]), float(parts[1])))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    return points


def _point_to_obj(node) -> object:
    if isinstance(node, Point):
        return {"x": node.x, "y": node.y}
    return node


def _obj_to_node(obj: object):
    if isinstance(obj, dict) and set(obj) == {"x", "y"}:
        return Point(float(obj["x"]), float(obj["y"]))
    if isinstance(obj, list):  # JSON has no tuples
        return tuple(obj)
    return obj


def save_result(result: CDSResult, path: str | Path) -> None:
    """Write a :class:`CDSResult` as JSON.

    ``meta`` is stored only where JSON-serializable; unserializable
    entries are dropped (they are run diagnostics, not results).
    """
    meta = {}
    for key, value in result.meta.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        meta[key] = value
    payload = {
        "algorithm": result.algorithm,
        "nodes": [_point_to_obj(v) for v in sorted(result.nodes)],
        "dominators": [_point_to_obj(v) for v in result.dominators],
        "connectors": [_point_to_obj(v) for v in result.connectors],
        "meta": meta,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_result(path: str | Path) -> CDSResult:
    """Read a result written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    return CDSResult(
        algorithm=payload["algorithm"],
        nodes=frozenset(_obj_to_node(v) for v in payload["nodes"]),
        dominators=tuple(_obj_to_node(v) for v in payload["dominators"]),
        connectors=tuple(_obj_to_node(v) for v in payload["connectors"]),
        meta=dict(payload.get("meta", {})),
    )
