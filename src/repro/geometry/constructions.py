"""Tightness constructions from Section V (Figures 1 and 2).

The paper shows its star-packing bound ``phi_n`` is tight for
``n <= 3`` with an explicit instance (Figure 1): the neighborhood of a
2-star holds 8 independent points and that of a 3-star holds 12.
Figure 2 generalizes it: the neighborhood of ``n >= 3`` collinear points
with consecutive distance one holds ``3(n + 1)`` independent points —
the instance behind the paper's "ratio 6 / 5.5" conjecture.

Every function returns ``(centers, independent_points)`` where
``centers`` is the star / chain and ``independent_points`` achieves the
stated packing number.  The perturbation parameters default to values
with comfortable floating-point margins; the invariants (independence,
containment in the neighborhood) are enforced at construction time, so
a bad parameter choice fails loudly rather than silently producing a
broken witness.

Geometry of the construction (matching the paper's Figure 1):

* interior "mid" points ``v_i`` sit near the midpoints of consecutive
  centers, nudged off the axis by ``eps``;
* "top"/"bottom" rows sit near the topmost/bottommost points of the
  disks, alternating between heights ``1`` and ``1 - eps`` so adjacent
  points are at distance ``sqrt(1 + eps^2) > 1``;
* at each end of the chain, four points ``p, q, q', p'`` sit on the end
  circle at angles ``±(90° + δ)`` and ``±(30° + δ/3)`` from the outward
  direction, so all angular gaps on the cap exceed 60° and every chord
  exceeds one.  Pushing ``p`` *past* the vertical (angle 90° + δ) is
  what lets four points share the cap; it forces ``δ`` to be tiny
  relative to ``eps`` (``2 sin δ < eps²``) so that ``p`` stays at
  distance > 1 from the neighboring top point.
"""

from __future__ import annotations

import math
from typing import Sequence

from .point import Point
from .disks import in_neighborhood
from .packing import is_independent

__all__ = [
    "DEFAULT_EPS",
    "DEFAULT_DELTA",
    "one_star_packing",
    "figure1_two_star",
    "figure1_three_star",
    "figure2_linear",
]

#: Vertical perturbation of the paper's epsilon.
DEFAULT_EPS: float = 1e-2
#: Angular perturbation; must satisfy ``2*sin(delta) < eps**2`` with margin.
DEFAULT_DELTA: float = 2e-5


def _validate(
    centers: Sequence[Point], independent: Sequence[Point], label: str
) -> None:
    if not is_independent(independent):
        raise AssertionError(f"{label}: constructed points are not independent")
    for p in independent:
        if not in_neighborhood(p, centers):
            raise AssertionError(f"{label}: point {p} escapes the neighborhood")


def one_star_packing() -> tuple[list[Point], list[Point]]:
    """A 1-star whose neighborhood holds ``phi_1 = 5`` independent points.

    A regular pentagon on the unit circle: chords are
    ``2 sin(54°) ≈ 1.176 > 1``.
    """
    center = Point(0.0, 0.0)
    pts = [Point.polar(1.0, 2.0 * math.pi * k / 5.0) for k in range(5)]
    _validate([center], pts, "one_star_packing")
    return [center], pts


def _cap_points(
    end: Point, outward_angle: float, delta: float
) -> list[Point]:
    """The four cap points ``p, q, q', p'`` on the circle around ``end``.

    Angles are measured from ``outward_angle`` (the direction pointing
    away from the chain); the four points sit at
    ``+(90° + δ), +(30° + δ/3), −(30° + δ/3), −(90° + δ)`` so the three
    angular gaps are all ``60° + 2δ/3 > 60°``.
    """
    offsets = [
        math.pi / 2.0 + delta,
        math.pi / 6.0 + delta / 3.0,
        -(math.pi / 6.0 + delta / 3.0),
        -(math.pi / 2.0 + delta),
    ]
    return [end + Point.polar(1.0, outward_angle + off) for off in offsets]


def figure2_linear(
    n: int, eps: float = DEFAULT_EPS, delta: float = DEFAULT_DELTA
) -> tuple[list[Point], list[Point]]:
    """Figure 2: ``n`` collinear unit-spaced centers, ``3(n+1)`` packing.

    Centers are ``(0,0), (1,0), ..., (n-1,0)``.  The packing consists of
    a top row of ``n`` points, a bottom row of ``n`` points, a middle
    row of ``n - 1`` points, and ``2`` extra cap points per end, for a
    total of ``n + n + (n - 1) + 4 = 3n + 3 = 3(n + 1)``.

    The paper draws separate pictures for even and odd ``n`` because the
    alternating top-row heights need a parity fix-up at one end when
    ``n`` is even; we apply the fix-up (one point at height
    ``1 - 2 eps``) automatically.

    Requires ``n >= 3``; the paper states the bound for this range (the
    ``n = 3`` instance coincides with the 3-star of Figure 1 up to
    translation).
    """
    if n < 3:
        raise ValueError("figure2_linear requires n >= 3 (use figure1_* below)")
    if not (0.0 < eps < 0.1):
        raise ValueError("eps must be a small positive perturbation")
    if not (0.0 < 2.0 * math.sin(delta) < eps * eps):
        raise ValueError("delta must satisfy 2 sin(delta) < eps^2")

    centers = [Point(float(i), 0.0) for i in range(n)]
    left, right = centers[0], centers[-1]

    # Cap points: p, q on each end; p doubles as the end of the top row
    # and p' as the end of the bottom row.
    right_cap = _cap_points(right, 0.0, delta)  # p, q, q', p'
    left_cap = _cap_points(left, math.pi, delta)

    top = [left_cap[0], right_cap[0]]
    bottom = [left_cap[3], right_cap[3]]
    extras = [right_cap[1], right_cap[2], left_cap[1], left_cap[2]]

    # Interior top/bottom rows over centers 1 .. n-2, alternating heights
    # 1 and 1 - eps; positions adjacent to the end p-points (which sit at
    # height cos(delta) ≈ 1) must be at the lower height.
    heights: dict[int, float] = {}
    for i in range(1, n - 1):
        heights[i] = 1.0 - eps if i % 2 == 1 else 1.0
    if n >= 4 and heights[n - 2] == 1.0:
        # Parity fix-up for even n: drop the last interior point further
        # so it clears both its interior neighbor and the end p-point.
        heights[n - 2] = 1.0 - 2.0 * eps
    for i in range(1, n - 1):
        top.append(Point(float(i), heights[i]))
        bottom.append(Point(float(i), -heights[i]))

    # Middle row: near the midpoints of consecutive centers, alternating
    # sides of the axis.
    middle = [
        Point(i + 0.5, eps if i % 2 == 0 else -eps) for i in range(n - 1)
    ]

    independent = top + bottom + middle + extras
    assert len(independent) == 3 * n + 3
    _validate(centers, independent, f"figure2_linear(n={n})")
    return centers, independent


def figure1_three_star(
    eps: float = DEFAULT_EPS, delta: float = DEFAULT_DELTA
) -> tuple[list[Point], list[Point]]:
    """Figure 1 (right): a 3-star whose neighborhood holds 12 points.

    The 3-star is ``{o, u1, u2}`` with ``u1 = (1, 0)`` and
    ``u2 = -u1`` — equivalently the ``n = 3`` chain of Figure 2
    translated so the star center ``o`` is at the origin.  Achieves
    ``phi_3 = 12``.
    """
    centers, independent = figure2_linear(3, eps, delta)
    shift = Point(-1.0, 0.0)
    centers = [c + shift for c in centers]
    independent = [p + shift for p in independent]
    # Present the star as (center, u1, u2) like the paper.
    o, u1, u2 = centers[1], centers[2], centers[0]
    return [o, u1, u2], independent


def figure1_two_star(
    eps: float = DEFAULT_EPS, delta: float = DEFAULT_DELTA
) -> tuple[list[Point], list[Point]]:
    """Figure 1 (left): a 2-star whose neighborhood holds 8 points.

    The 2-star is ``{o, u1}`` with ``u1 = (1, 0)``.  The packing is the
    ``I_0 ∪ I_1`` half of the 3-star instance: the four interior points
    ``v1, w1, v2, w2`` around ``o`` plus the four cap points on
    ``∂D_{u1}``.  Achieves ``phi_2 = 8``.
    """
    if not (0.0 < 2.0 * math.sin(delta) < eps * eps):
        raise ValueError("delta must satisfy 2 sin(delta) < eps^2")
    o = Point(0.0, 0.0)
    u1 = Point(1.0, 0.0)
    v1 = Point(0.5, eps)
    w1 = Point(0.0, 1.0 - eps)
    i0 = [v1, w1, -v1, -w1]
    i1 = _cap_points(u1, 0.0, delta)
    centers = [o, u1]
    independent = i0 + i1
    assert len(independent) == 8
    _validate(centers, independent, "figure1_two_star")
    return centers, independent
