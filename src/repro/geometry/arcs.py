"""Arcs and arc-polygons.

The appendix of the paper reasons about *arc-polygons*: bounded regions
surrounded by minor unit-arcs and line segments (e.g. the arc triangles
``a p1 s1`` in the proof of Lemma 1, each of which contains exactly one
independent point).  The structural fact the proofs rely on is:

    the diameter of an arc-polygon is at most one if and only if the
    diameter of its vertex set is at most one.

This module provides arc primitives (minor/major classification, point
sampling, membership) and the vertex-diameter test for arc-polygons,
which the lemma-checking tests exercise numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from .point import EPS, Point
from .predicates import diameter

__all__ = [
    "Arc",
    "ArcPolygon",
    "arc_between",
    "chord_length",
]


def _normalize_angle(theta: float) -> float:
    """Map an angle into ``[0, 2*pi)``."""
    two_pi = 2.0 * math.pi
    theta = math.fmod(theta, two_pi)
    if theta < 0.0:
        theta += two_pi
    return theta


@dataclass(frozen=True, slots=True)
class Arc:
    """A circular arc swept counterclockwise from ``start`` to ``end``.

    ``start`` and ``end`` are polar angles on the circle of ``radius``
    around ``center``.  The sweep is always counterclockwise; a clockwise
    arc is represented by swapping the endpoints.
    """

    center: Point
    radius: float
    start: float
    end: float

    def measure(self) -> float:
        """Arc measure in radians, in ``[0, 2*pi)``."""
        return _normalize_angle(self.end - self.start)

    def is_minor(self, tol: float = EPS) -> bool:
        """Whether the arc measures at most 180 degrees."""
        return self.measure() <= math.pi + tol

    def is_major(self, tol: float = EPS) -> bool:
        """Whether the arc measures at least 180 degrees."""
        return self.measure() >= math.pi - tol

    def point_at(self, fraction: float) -> Point:
        """The point a given fraction of the way along the arc."""
        theta = self.start + fraction * self.measure()
        return Point(
            self.center.x + self.radius * math.cos(theta),
            self.center.y + self.radius * math.sin(theta),
        )

    def endpoints(self) -> tuple[Point, Point]:
        return (self.point_at(0.0), self.point_at(1.0))

    def sample(self, count: int) -> list[Point]:
        """``count`` points evenly spaced along the arc (inclusive ends)."""
        if count < 2:
            return [self.point_at(0.0)] if count == 1 else []
        return [self.point_at(i / (count - 1)) for i in range(count)]

    def evenly_interior(self, count: int) -> list[Point]:
        """``count`` points splitting the arc into ``count + 1`` equal parts.

        This realizes the paper's phrase "the two points evenly on the
        major arc between p1 and p2" (Section V, Figure 1 construction).
        """
        return [self.point_at(i / (count + 1)) for i in range(1, count + 1)]


def arc_between(center: Point, radius: float, a: Point, b: Point, minor: bool = True) -> Arc:
    """The arc of the circle through ``a`` and ``b``.

    ``a`` and ``b`` must lie (approximately) on the circle.  With
    ``minor=True`` the shorter arc is returned, otherwise the longer.
    """
    for p in (a, b):
        if abs(center.distance_to(p) - radius) > 1e-6:
            raise ValueError(f"point {p} is not on the circle (r={radius})")
    theta_a = center.angle_to(a)
    theta_b = center.angle_to(b)
    ccw = Arc(center, radius, theta_a, theta_b)
    cw = Arc(center, radius, theta_b, theta_a)
    short, long_ = (ccw, cw) if ccw.measure() <= cw.measure() else (cw, ccw)
    return short if minor else long_


def chord_length(radius: float, arc_measure: float) -> float:
    """Chord subtending an arc of the given measure: ``2 r sin(m/2)``.

    The proofs use this constantly: two points on a unit circle are at
    distance > 1 exactly when their angular gap exceeds 60 degrees.
    """
    return 2.0 * radius * math.sin(arc_measure / 2.0)


@dataclass(frozen=True)
class ArcPolygon:
    """A region bounded by minor unit-arcs and straight segments.

    Represented by its vertex cycle plus, for each edge, either ``None``
    (straight segment) or the :class:`Arc` realizing it.  Only the
    diameter machinery needed by the lemma checkers is implemented.
    """

    vertices: tuple[Point, ...]
    edges: tuple[Arc | None, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) != len(self.edges):
            raise ValueError("one edge per vertex (edge i runs from vertex i)")
        for arc in self.edges:
            if arc is not None and not arc.is_minor(tol=1e-6):
                raise ValueError("arc-polygon boundary arcs must be minor arcs")

    def vertex_diameter(self) -> float:
        """Diameter of the vertex set."""
        return diameter(self.vertices)

    def boundary_sample(self, per_edge: int = 32) -> list[Point]:
        """Points along the whole boundary (vertices plus arc samples)."""
        pts: list[Point] = list(self.vertices)
        for arc in self.edges:
            if arc is not None:
                pts.extend(arc.evenly_interior(per_edge))
        return pts

    def boundary_diameter(self, per_edge: int = 32) -> float:
        """Approximate diameter of the full boundary.

        By the appendix's observation this equals the vertex diameter
        whenever the vertex diameter is at most one; the sampled value
        lets tests confirm that equivalence numerically.
        """
        return diameter(self.boundary_sample(per_edge))

    def has_unit_diameter(self, tol: float = EPS) -> bool:
        """Whether the region's diameter is at most one.

        Uses the vertex-set criterion from the appendix.
        """
        return self.vertex_diameter() <= 1.0 + tol
