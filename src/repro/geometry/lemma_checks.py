"""Executable forms of the appendix lemmas (Figures 3–9).

The appendix proves Lemmas 1 and 2 through a chain of geometric lemmas
whose proofs the paper omits for space (Lemmas 11–15).  This module
turns each omitted lemma's *statement* into executable predicates, so
the test suite can verify them numerically over randomized
configurations — the closest a reproduction can get to "checking" an
omitted proof.

Lemma 11  (Figure 3): in a convex quadrilateral ``o u p v`` with
    ``|ov| = |up|``: ``angle(ovp) + angle(upv) <= 180°  iff  |vp| >= |ou|``.

Lemma 12  (Figure 4): a specific four-point configuration built from
    three mutually intersecting unit circles has diameter exactly one.

Lemma 13  (Figure 6): with ``|ou| <= 1``, ``a ∈ ∂D_o ∩ ∂D_u`` and
    ``v ∈ D_o \\ D_u``, taking ``p = a`` if ``|av| >= 1`` else the point
    on ``∂D_u \\ D_o`` with ``|pv| = 1``:  ``angle(uov) + angle(puo) >= 150°``.

Lemma 15's region split (Figure 8) is exercised via the diameter
machinery in :mod:`repro.geometry.arcs`; Lemma 14's arc-triangle
accounting is covered by the Lemma 1/2 empirical checks.
"""

from __future__ import annotations

import math

from .point import EPS, Point
from .predicates import angle_at, is_convex_polygon
from .disks import circle_circle_intersection, in_disk

__all__ = [
    "lemma11_angle_sum",
    "lemma11_holds",
    "lemma12_configuration",
    "lemma13_point_p",
    "lemma13_angle_sum",
]


def lemma11_angle_sum(o: Point, u: Point, p: Point, v: Point) -> float:
    """``angle(o v p) + angle(u p v)`` for the quadrilateral ``o u p v``.

    The quadrilateral is taken in the paper's vertex order (``o, u, p,
    v`` around the boundary); the two measured angles sit at ``v`` and
    ``p``.
    """
    return angle_at(v, o, p) + angle_at(p, u, v)


def lemma11_holds(o: Point, u: Point, p: Point, v: Point, tol: float = 1e-7) -> bool:
    """Check Lemma 11 on one configuration.

    Requires a convex quadrilateral with ``|ov| = |up|`` (raises
    ``ValueError`` otherwise, since the lemma says nothing there).
    Returns whether the biconditional holds:
    ``angle sum <= 180°  <=>  |vp| >= |ou|``.
    """
    if abs(o.distance_to(v) - u.distance_to(p)) > 1e-6:
        raise ValueError("Lemma 11 requires |ov| = |up|")
    if not is_convex_polygon([o, u, p, v]):
        raise ValueError("Lemma 11 requires a convex quadrilateral o,u,p,v")
    angle_sum = lemma11_angle_sum(o, u, p, v)
    left = angle_sum <= math.pi + tol
    right = v.distance_to(p) >= o.distance_to(u) - tol
    # Near the boundary (angle sum ~ 180 or |vp| ~ |ou|) both sides flip
    # together; the tolerance keeps the comparison fair.
    return left == right


def lemma12_configuration(o: Point, u: Point, p: Point) -> list[Point] | None:
    """Build the Lemma 12 four-point configuration, if it exists.

    Given ``0 < |ou| <= 1``, ``a ∈ ∂D_o ∩ ∂D_u`` (the one above the
    line ``ou``), and ``p ∈ ∂D_u`` with ``|ap| <= 1 <= |op|``, the
    lemma asserts ``diam({v1, v2, p, s}) = 1`` where

    * ``v1 ∈ ∂D_p ∩ ∂D_o`` on the same side of ``op`` as ``a``;
    * ``∂D_p ∩ ∂D_u = {v2, q}`` with ``v2`` on the same side of ``up``
      as ``a`` (so ``q`` is the far intersection);
    * ``s ∈ ∂D_q ∩ ∂D_o`` on the same side of ``oq`` as ``a``.

    Returns the four points, or ``None`` when the preconditions fail
    (callers sample random configurations and skip those).
    """
    d = o.distance_to(u)
    if not (0.0 < d <= 1.0 + EPS):
        return None
    inter_ou = circle_circle_intersection(o, 1.0, u, 1.0)
    if len(inter_ou) < 2:
        return None
    a = inter_ou[0]  # left of o->u: "above" the segment
    if abs(u.distance_to(p) - 1.0) > 1e-9:
        return None
    if a.distance_to(p) > 1.0 + EPS or o.distance_to(p) < 1.0 - EPS:
        return None

    po = circle_circle_intersection(p, 1.0, o, 1.0)
    pu = circle_circle_intersection(p, 1.0, u, 1.0)
    if len(po) < 2 or len(pu) < 2:
        return None

    def same_side(x: Point, base: Point, through: Point, reference: Point) -> bool:
        cross_x = (through - base).cross(x - base)
        cross_ref = (through - base).cross(reference - base)
        return cross_x * cross_ref > 0

    v1_candidates = [x for x in po if same_side(x, o, p, a)]
    v2_candidates = [x for x in pu if same_side(x, u, p, a)]
    q_candidates = [x for x in pu if not same_side(x, u, p, a)]
    if not (v1_candidates and v2_candidates and q_candidates):
        return None
    q = q_candidates[0]
    qo = circle_circle_intersection(q, 1.0, o, 1.0)
    if len(qo) < 2:
        return None
    s_candidates = [x for x in qo if same_side(x, o, q, a)]
    if not s_candidates:
        return None
    return [v1_candidates[0], v2_candidates[0], p, s_candidates[0]]


def lemma13_point_p(o: Point, u: Point, a: Point, v: Point) -> Point | None:
    """The point ``p`` of Lemma 13.

    ``p = a`` when ``|av| >= 1``; otherwise the point on
    ``∂D_u \\ D_o`` at distance exactly one from ``v`` (on ``a``'s side).
    Returns ``None`` if no such boundary point exists.
    """
    if a.distance_to(v) >= 1.0 - EPS:
        return a
    candidates = circle_circle_intersection(u, 1.0, v, 1.0)
    outside = [c for c in candidates if not in_disk(c, o, 1.0, tol=-1e-9)]
    if not outside:
        return None
    # Pick the candidate on the same side of ou as a.
    def side(x: Point) -> float:
        return (u - o).cross(x - o)

    same = [c for c in outside if side(c) * side(a) > 0]
    return same[0] if same else outside[0]


def lemma13_angle_sum(o: Point, u: Point, v: Point) -> float | None:
    """``angle(uov) + angle(puo)`` for the Lemma 13 configuration.

    Given ``|ou| <= 1`` and ``v ∈ D_o \\ D_u`` (on the upper side), the
    lemma asserts this sum is at least 150 degrees.  Returns ``None``
    when the configuration degenerates (no valid ``p``).
    """
    if o.distance_to(u) > 1.0 + EPS or o.distance_to(u) <= EPS:
        return None
    if not in_disk(v, o) or in_disk(v, u):
        return None
    inter = circle_circle_intersection(o, 1.0, u, 1.0)
    if len(inter) < 2:
        return None
    # Use the intersection on the same side of ou as v.
    def side(x: Point) -> float:
        return (u - o).cross(x - o)

    sided = [c for c in inter if side(c) * side(v) > 0]
    if not sided:
        return None
    a = sided[0]
    p = lemma13_point_p(o, u, a, v)
    if p is None:
        return None
    try:
        return angle_at(o, u, v) + angle_at(u, p, o)
    except ValueError:
        return None
