"""Hexagonal-lattice helpers.

Fejes Tóth's theorem (cited in Section V) says the densest packing of
unit disks in the plane is the hexagonal lattice, with density
``pi / sqrt(12)``.  The experiments use hexagonal point lattices both as
high-quality independent packings (lower-bound witnesses for the
packing theorems) and to sanity-check the Voronoi area machinery.
"""

from __future__ import annotations

import math
from typing import Sequence

from .point import Point
from .disks import in_disk, in_neighborhood

__all__ = [
    "FEJES_TOTH_DENSITY",
    "hexagonal_lattice",
    "hexagonal_points_in_disk",
    "hexagonal_points_in_neighborhood",
]

#: Density of the hexagonal circle packing: ``pi / sqrt(12)``.
FEJES_TOTH_DENSITY: float = math.pi / math.sqrt(12.0)


def hexagonal_lattice(
    spacing: float, rows: int, cols: int, origin: Point = Point(0.0, 0.0)
) -> list[Point]:
    """A ``rows x cols`` patch of the hexagonal (triangular) lattice.

    Nearest-neighbor distance is exactly ``spacing``; odd rows are
    offset by half a spacing, rows are ``spacing * sqrt(3)/2`` apart.
    """
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")
    dy = spacing * math.sqrt(3.0) / 2.0
    points: list[Point] = []
    for r in range(rows):
        x_off = 0.5 * spacing if r % 2 == 1 else 0.0
        for c in range(cols):
            points.append(Point(origin.x + c * spacing + x_off, origin.y + r * dy))
    return points


def _covering_lattice(spacing: float, center: Point, reach: float) -> list[Point]:
    """Lattice points covering a disk of radius ``reach`` around ``center``."""
    dy = spacing * math.sqrt(3.0) / 2.0
    rows = int(math.ceil(2.0 * reach / dy)) + 2
    cols = int(math.ceil(2.0 * reach / spacing)) + 2
    origin = Point(center.x - reach - spacing, center.y - reach - dy)
    return hexagonal_lattice(spacing, rows, cols, origin)


def hexagonal_points_in_disk(
    center: Point, radius: float, spacing: float
) -> list[Point]:
    """Hexagonal lattice points inside a closed disk.

    With ``spacing`` slightly above one this is an independent packing;
    for ``radius = 2`` it yields 19 points, a concrete lower-bound
    witness against Wegner's cap of 21.
    """
    lattice = _covering_lattice(spacing, center, radius)
    # Center the lattice on the disk center by snapping the nearest
    # lattice point onto it, which maximizes the count for small disks.
    nearest = min(lattice, key=lambda p: p.distance_to(center))
    shift = center - nearest
    return [p + shift for p in lattice if in_disk(p + shift, center, radius)]


def hexagonal_points_in_neighborhood(
    centers: Sequence[Point], spacing: float
) -> list[Point]:
    """Hexagonal lattice points inside the unit-disk neighborhood of ``centers``."""
    if not centers:
        return []
    cx = sum(c.x for c in centers) / len(centers)
    cy = sum(c.y for c in centers) / len(centers)
    mid = Point(cx, cy)
    reach = max(mid.distance_to(c) for c in centers) + 1.0 + spacing
    lattice = _covering_lattice(spacing, mid, reach)
    return [p for p in lattice if in_neighborhood(p, centers)]
