"""Computational-geometry substrate for the CDS reproduction.

Everything the paper's packing arguments need: points, predicates,
unit disks and circle intersections, arcs and arc-polygons, independent
packings and the ``phi_n`` bound, stars and the Lemma 4 star
decomposition, the Figure 1/2 tightness constructions, and the
Voronoi / hexagonal-lattice machinery for the Section V discussion.
"""

from .point import (
    EPS,
    ORIGIN,
    Point,
    almost_equal,
    centroid,
    distance,
    distance_squared,
    max_pairwise_distance,
    midpoint,
    min_pairwise_distance,
    pairwise_distances,
)
from .predicates import (
    angle_at,
    angle_between,
    angular_separations,
    convex_hull,
    diameter,
    is_ccw,
    is_collinear,
    is_convex_polygon,
    orientation,
    point_in_polygon,
    polygon_area,
)
from .disks import (
    Disk,
    circle_circle_intersection,
    disk_union_area,
    in_disk,
    in_neighborhood,
    points_in_neighborhood,
    unit_disk,
)
from .arcs import Arc, ArcPolygon, arc_between, chord_length
from .packing import (
    WEGNER_RADIUS2_CAPACITY,
    disk_candidates,
    greedy_independent_subset,
    grid_candidates,
    independence_violations,
    is_independent,
    max_independent_subset,
    max_independent_subset_size,
    neighborhood_candidates,
    phi,
)
from .stars import (
    is_nontrivial_star_decomposition,
    is_star,
    is_star_decomposition,
    star_centers,
    star_decomposition,
)
from .constructions import (
    DEFAULT_DELTA,
    DEFAULT_EPS,
    figure1_three_star,
    figure1_two_star,
    figure2_linear,
    one_star_packing,
)
from .voronoi import (
    HEXAGON_SIDE,
    area_argument_bound,
    hexagon_area,
    voronoi_cell_areas,
)
from .lemma_checks import (
    lemma11_angle_sum,
    lemma11_holds,
    lemma12_configuration,
    lemma13_angle_sum,
    lemma13_point_p,
)
from .hexagonal import (
    FEJES_TOTH_DENSITY,
    hexagonal_lattice,
    hexagonal_points_in_disk,
    hexagonal_points_in_neighborhood,
)

__all__ = [
    # point
    "EPS",
    "ORIGIN",
    "Point",
    "almost_equal",
    "centroid",
    "distance",
    "distance_squared",
    "max_pairwise_distance",
    "midpoint",
    "min_pairwise_distance",
    "pairwise_distances",
    # predicates
    "angle_at",
    "angle_between",
    "angular_separations",
    "convex_hull",
    "diameter",
    "is_ccw",
    "is_collinear",
    "is_convex_polygon",
    "orientation",
    "point_in_polygon",
    "polygon_area",
    # disks
    "Disk",
    "circle_circle_intersection",
    "disk_union_area",
    "in_disk",
    "in_neighborhood",
    "points_in_neighborhood",
    "unit_disk",
    # arcs
    "Arc",
    "ArcPolygon",
    "arc_between",
    "chord_length",
    # packing
    "WEGNER_RADIUS2_CAPACITY",
    "disk_candidates",
    "greedy_independent_subset",
    "grid_candidates",
    "independence_violations",
    "is_independent",
    "max_independent_subset",
    "max_independent_subset_size",
    "neighborhood_candidates",
    "phi",
    # stars
    "is_nontrivial_star_decomposition",
    "is_star",
    "is_star_decomposition",
    "star_centers",
    "star_decomposition",
    # constructions
    "DEFAULT_DELTA",
    "DEFAULT_EPS",
    "figure1_three_star",
    "figure1_two_star",
    "figure2_linear",
    "one_star_packing",
    # voronoi
    "HEXAGON_SIDE",
    "area_argument_bound",
    "hexagon_area",
    "voronoi_cell_areas",
    # lemma checks (appendix)
    "lemma11_angle_sum",
    "lemma11_holds",
    "lemma12_configuration",
    "lemma13_angle_sum",
    "lemma13_point_p",
    # hexagonal
    "FEJES_TOTH_DENSITY",
    "hexagonal_lattice",
    "hexagonal_points_in_disk",
    "hexagonal_points_in_neighborhood",
]
