"""Planar points and elementary vector operations.

The whole reproduction works in the Euclidean plane: nodes of a wireless
ad hoc network are points, the communication topology is the unit-disk
graph over them, and the paper's packing arguments (Theorems 3 and 6)
are statements about how many pairwise-far points fit inside unions of
unit disks.  :class:`Point` is the single currency every other module
trades in.

Points are immutable, hashable and ordered lexicographically, so they can
be graph nodes, dict keys and members of sorted structures without any
wrapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "EPS",
    "Point",
    "distance",
    "distance_squared",
    "midpoint",
    "centroid",
    "pairwise_distances",
    "min_pairwise_distance",
    "max_pairwise_distance",
    "almost_equal",
]

#: Default absolute tolerance for geometric comparisons.  The paper's
#: constructions place points *exactly* at unit distance (e.g. the collinear
#: chain of Figure 2), so strict predicates are evaluated with this slack.
EPS: float = 1e-9


@dataclass(frozen=True)
class Point:
    """An immutable point in the plane.

    Supports vector arithmetic (``+``, ``-``, scalar ``*`` / ``/``,
    unary ``-``) because the paper's tightness constructions are most
    naturally expressed with reflections and translations
    (e.g. ``v2 = -v1`` in Figure 1).

    Slotted (no per-instance ``__dict__``) and hash-cached: points are
    the hot per-node object — a 10k-node deployment hashes every point
    hundreds of times across UDG bucketing, graph interning and CDS
    set algebra, so ``__hash__`` computes the (unchanged) field-tuple
    hash once and memoizes it in a slot.  The lexicographic ordering is
    likewise hand-written (same semantics ``dataclass(order=True)``
    would generate, minus its two tuple allocations per comparison) —
    value-sorting all nodes is on the solver hot path.
    """

    __slots__ = ("x", "y", "_hashval")

    x: float
    y: float

    def __hash__(self) -> int:
        try:
            return self._hashval
        except AttributeError:
            h = hash((self.x, self.y))
            object.__setattr__(self, "_hashval", h)
            return h

    # -- lexicographic order (by (x, y), Points only) ----------------------

    def __lt__(self, other: "Point") -> bool:
        if other.__class__ is Point:
            sx, ox = self.x, other.x
            if sx != ox:
                return sx < ox
            return self.y < other.y
        return NotImplemented

    def __le__(self, other: "Point") -> bool:
        if other.__class__ is Point:
            sx, ox = self.x, other.x
            if sx != ox:
                return sx < ox
            return self.y <= other.y
        return NotImplemented

    def __gt__(self, other: "Point") -> bool:
        if other.__class__ is Point:
            sx, ox = self.x, other.x
            if sx != ox:
                return sx > ox
            return self.y > other.y
        return NotImplemented

    def __ge__(self, other: "Point") -> bool:
        if other.__class__ is Point:
            sx, ox = self.x, other.x
            if sx != ox:
                return sx > ox
            return self.y >= other.y
        return NotImplemented

    # Manual __slots__ breaks default pickling of frozen instances
    # (setstate would hit the frozen __setattr__); state is the fields
    # only, so the cache is recomputed lazily after unpickling.

    def __getstate__(self):
        return (self.x, self.y)

    def __setstate__(self, state):
        object.__setattr__(self, "x", state[0])
        object.__setattr__(self, "y", state[1])

    # -- vector arithmetic -------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- metric helpers ----------------------------------------------------

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector from the origin."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: if this is the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated 90 degrees counterclockwise."""
        return Point(-self.y, self.x)

    def rotated(self, angle: float, about: "Point" | None = None) -> "Point":
        """Rotate counterclockwise by ``angle`` radians about ``about``.

        ``about`` defaults to the origin.
        """
        cx, cy = (about.x, about.y) if about is not None else (0.0, 0.0)
        dx, dy = self.x - cx, self.y - cy
        c, s = math.cos(angle), math.sin(angle)
        return Point(cx + c * dx - s * dy, cy + s * dx + c * dy)

    def angle(self) -> float:
        """Polar angle of the vector from the origin, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def angle_to(self, other: "Point") -> float:
        """Polar angle of the vector from ``self`` to ``other``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    # -- misc ---------------------------------------------------------------

    @staticmethod
    def polar(radius: float, angle: float) -> "Point":
        """The point at the given polar coordinates around the origin."""
        return Point(radius * math.cos(angle), radius * math.sin(angle))

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


ORIGIN = Point(0.0, 0.0)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def distance_squared(a: Point, b: Point) -> float:
    dx, dy = a.x - b.x, a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def pairwise_distances(points: Sequence[Point]) -> Iterator[float]:
    """Yield the distance of every unordered pair of distinct indices."""
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            yield points[i].distance_to(points[j])


def min_pairwise_distance(points: Sequence[Point]) -> float:
    """Smallest pairwise distance; ``inf`` for fewer than two points."""
    return min(pairwise_distances(points), default=math.inf)


def max_pairwise_distance(points: Sequence[Point]) -> float:
    """Largest pairwise distance (the *diameter*); 0 for < 2 points."""
    return max(pairwise_distances(points), default=0.0)


def almost_equal(a: Point, b: Point, tol: float = EPS) -> bool:
    """Whether two points coincide up to ``tol`` in each coordinate."""
    return abs(a.x - b.x) <= tol and abs(a.y - b.y) <= tol
