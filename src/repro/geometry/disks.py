"""Unit disks, circles, and their intersections.

The paper's notation: ``D_u`` is the unit disk centered at ``u`` and
``∂D_u`` its boundary circle.  The *neighborhood* of a point set ``S``
is ``∪_{u in S} D_u`` — the region whose independent-point capacity
Theorems 3 and 6 bound.  This module provides disk membership tests,
circle–circle intersection (used pervasively in the appendix, e.g.
``∂D_o ∩ ∂D_u = {a, a'}``), and neighborhood membership/area helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .point import EPS, Point

__all__ = [
    "Disk",
    "unit_disk",
    "in_disk",
    "in_neighborhood",
    "circle_circle_intersection",
    "disk_union_area",
    "disk_union_area_grid",
    "points_in_neighborhood",
]


@dataclass(frozen=True, slots=True)
class Disk:
    """A closed disk with ``center`` and ``radius``."""

    center: Point
    radius: float = 1.0

    def contains(self, p: Point, tol: float = EPS) -> bool:
        """Closed-disk membership with tolerance ``tol``."""
        return self.center.distance_to(p) <= self.radius + tol

    def contains_strict(self, p: Point, tol: float = EPS) -> bool:
        """Open-disk membership (strictly inside, with tolerance)."""
        return self.center.distance_to(p) < self.radius - tol

    def boundary_point(self, angle: float) -> Point:
        """The boundary point at the given polar angle."""
        return Point(
            self.center.x + self.radius * math.cos(angle),
            self.center.y + self.radius * math.sin(angle),
        )

    def area(self) -> float:
        return math.pi * self.radius * self.radius


def unit_disk(center: Point) -> Disk:
    """``D_center`` in the paper's notation."""
    return Disk(center, 1.0)


def in_disk(p: Point, center: Point, radius: float = 1.0, tol: float = EPS) -> bool:
    """Whether ``p`` lies in the closed disk of ``radius`` around ``center``."""
    return center.distance_to(p) <= radius + tol


def in_neighborhood(
    p: Point, centers: Iterable[Point], radius: float = 1.0, tol: float = EPS
) -> bool:
    """Whether ``p`` lies in the neighborhood ``∪ D_u`` of ``centers``."""
    return any(in_disk(p, c, radius, tol) for c in centers)


def points_in_neighborhood(
    points: Iterable[Point],
    centers: Sequence[Point],
    radius: float = 1.0,
    tol: float = EPS,
) -> list[Point]:
    """The sublist of ``points`` lying in the neighborhood of ``centers``.

    This is exactly ``I(U) = ∪_{u in U} (I ∩ D_u)`` from Section II when
    ``points`` is an independent set ``I``.
    """
    return [p for p in points if in_neighborhood(p, centers, radius, tol)]


def circle_circle_intersection(
    c1: Point, r1: float, c2: Point, r2: float, tol: float = EPS
) -> list[Point]:
    """Intersection points of two circles.

    Returns zero, one (tangency) or two points.  When two points are
    returned, the first lies on the left side of the directed line
    ``c1 -> c2`` (positive cross product), matching the appendix's
    convention of naming ``a`` the intersection *above* the segment
    ``ou`` and ``a'`` the one below.

    Coincident circles raise ``ValueError`` (infinitely many points).
    """
    d = c1.distance_to(c2)
    if d <= tol:
        if abs(r1 - r2) <= tol:
            raise ValueError("coincident circles intersect everywhere")
        return []
    if d > r1 + r2 + tol or d < abs(r1 - r2) - tol:
        return []
    # Distance from c1 to the foot of the chord along c1->c2.
    a = (d * d + r1 * r1 - r2 * r2) / (2.0 * d)
    h_sq = r1 * r1 - a * a
    if h_sq < 0.0:
        h_sq = 0.0
    h = math.sqrt(h_sq)
    direction = (c2 - c1) / d
    foot = c1 + direction * a
    if h <= tol:
        return [foot]
    offset = direction.perpendicular() * h
    return [foot + offset, foot - offset]


def disk_union_area(
    centers: Sequence[Point], radius: float = 1.0, resolution: int = 600
) -> float:
    """Monte-Carlo-free area of ``∪ D_u`` by uniform grid integration.

    Deterministic midpoint-rule rasterization over the bounding box.
    Accuracy is ``O(perimeter / resolution)``; with the default
    resolution the relative error on paper-scale instances is below
    one percent, good enough for the Section V area-argument
    experiments (which compare areas across instance families, not
    absolute constants).
    """
    return disk_union_area_grid(centers, radius, resolution)


def disk_union_area_grid(
    centers: Sequence[Point], radius: float, resolution: int
) -> float:
    if not centers:
        return 0.0
    min_x = min(c.x for c in centers) - radius
    max_x = max(c.x for c in centers) + radius
    min_y = min(c.y for c in centers) - radius
    max_y = max(c.y for c in centers) + radius
    width, height = max_x - min_x, max_y - min_y
    if width <= 0.0 or height <= 0.0:
        return 0.0
    step = max(width, height) / resolution
    nx = max(1, int(math.ceil(width / step)))
    ny = max(1, int(math.ceil(height / step)))
    r_sq = radius * radius
    cell = step * step
    covered = 0
    # Bucket centers into coarse rows to skip distance tests cheaply.
    for iy in range(ny):
        y = min_y + (iy + 0.5) * step
        row = [c for c in centers if abs(c.y - y) <= radius]
        if not row:
            continue
        for ix in range(nx):
            x = min_x + (ix + 0.5) * step
            for c in row:
                dx = c.x - x
                dy = c.y - y
                if dx * dx + dy * dy <= r_sq:
                    covered += 1
                    break
    return covered * cell
