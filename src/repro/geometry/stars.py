"""Stars and star decompositions (Lemma 4).

A finite planar set ``S`` is a *star* when some ``v in S`` has every
point of ``S`` within unit distance (``S ⊂ D_v``); a star of k points is
a *k-star*.  Lemma 4 of the paper proves constructively that every
connected planar set of at least two points admits a *nontrivial*
star decomposition — a partition into stars none of which is a
singleton.  That construction is the engine behind Theorem 6 and both
approximation-ratio proofs, so we implement it exactly as the inductive
proof describes and expose validators for tests.
"""

from __future__ import annotations

from typing import Sequence

from .point import EPS, Point

__all__ = [
    "is_star",
    "star_centers",
    "star_decomposition",
    "is_star_decomposition",
    "is_nontrivial_star_decomposition",
]


def _within_unit(a: Point, b: Point, tol: float = EPS) -> bool:
    dx, dy = a.x - b.x, a.y - b.y
    return dx * dx + dy * dy <= (1.0 + tol) * (1.0 + tol)


def star_centers(points: Sequence[Point], tol: float = EPS) -> list[Point]:
    """All points ``v`` of the set with the whole set inside ``D_v``."""
    return [
        v
        for v in points
        if all(_within_unit(v, p, tol) for p in points)
    ]


def is_star(points: Sequence[Point], tol: float = EPS) -> bool:
    """Whether the (non-empty) set is a star."""
    if not points:
        return False
    return bool(star_centers(points, tol))


def _unit_adjacency(points: Sequence[Point], tol: float) -> dict[Point, set[Point]]:
    """Adjacency of the unit-disk graph induced by ``points``."""
    adj: dict[Point, set[Point]] = {p: set() for p in points}
    pts = list(points)
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if _within_unit(pts[i], pts[j], tol):
                adj[pts[i]].add(pts[j])
                adj[pts[j]].add(pts[i])
    return adj


def _components(
    nodes: set[Point], adj: dict[Point, set[Point]]
) -> list[list[Point]]:
    """Connected components of the sub-UDG induced by ``nodes``."""
    seen: set[Point] = set()
    comps: list[list[Point]] = []
    for start in sorted(nodes):
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        comp = [start]
        while stack:
            u = stack.pop()
            for w in adj[u]:
                if w in nodes and w not in seen:
                    seen.add(w)
                    comp.append(w)
                    stack.append(w)
        comps.append(comp)
    return comps


def star_decomposition(
    points: Sequence[Point], tol: float = EPS
) -> list[list[Point]]:
    """A nontrivial star decomposition of a connected planar set.

    Implements the inductive construction from the proof of Lemma 4:

    * two points: the set itself is a star;
    * otherwise remove an arbitrary point ``v``, recursively decompose
      every non-singleton component of the remainder, and then either
      (case 1) group ``v`` with all singleton components — all of which
      are adjacent to ``v`` — or (case 2, no singleton components)
      attach ``v`` to the star containing one of its neighbors ``u``:
      if that star fits in ``D_u`` then ``v`` simply joins it; otherwise
      the star has at least three points and ``u`` is peeled off to form
      the pair ``{u, v}``.

    Raises:
        ValueError: if the set has fewer than two points or its induced
            unit-disk graph is disconnected.
    """
    pts = list(dict.fromkeys(points))  # deduplicate, preserve order
    if len(pts) < 2:
        raise ValueError("star decomposition requires at least two points")
    adj = _unit_adjacency(pts, tol)
    if len(_components(set(pts), adj)) != 1:
        raise ValueError("point set must induce a connected unit-disk graph")
    return _decompose(pts, adj, tol)


def _decompose(
    pts: list[Point], adj: dict[Point, set[Point]], tol: float
) -> list[list[Point]]:
    n = len(pts)
    if n == 2:
        return [list(pts)]
    node_set = set(pts)
    v = pts[0]
    remaining = node_set - {v}
    comps = _components(remaining, adj)
    singletons = [c[0] for c in comps if len(c) == 1]
    stars: list[list[Point]] = []
    for comp in comps:
        if len(comp) >= 2:
            stars.extend(_decompose(comp, adj, tol))

    if singletons:
        # Case 1: all singleton components are neighbors of v (the set was
        # connected); they form a star centered at v together with v.
        stars.append([v] + singletons)
        return stars

    # Case 2: every component is non-singleton and already decomposed.
    u = min(adj[v] & remaining)
    star_with_u = next(s for s in stars if u in s)
    if all(_within_unit(u, w, tol) for w in star_with_u):
        # The star fits inside D_u, so v (a neighbor of u) can join it
        # with u as the witness center.
        star_with_u.append(v)
    else:
        # |star| >= 3; peel u off (the remaining points still share the
        # original center) and pair it with v.
        star_with_u.remove(u)
        stars.append([u, v])
    return stars


def is_star_decomposition(
    partition: Sequence[Sequence[Point]],
    points: Sequence[Point],
    tol: float = EPS,
) -> bool:
    """Whether ``partition`` partitions ``points`` into stars."""
    flat: list[Point] = [p for part in partition for p in part]
    if len(flat) != len(set(flat)):
        return False
    if set(flat) != set(points):
        return False
    return all(is_star(part, tol) for part in partition)


def is_nontrivial_star_decomposition(
    partition: Sequence[Sequence[Point]],
    points: Sequence[Point],
    tol: float = EPS,
) -> bool:
    """A star decomposition with no singleton star (Lemma 4's guarantee)."""
    return is_star_decomposition(partition, points, tol) and all(
        len(part) >= 2 for part in partition
    )
