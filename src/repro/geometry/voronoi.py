"""Voronoi-cell areas for the Section V discussion.

Section V examines the claim of Funke et al. that
``|I| <= area(Ω) / min_u area(Vor(u) ∩ Ω)`` with ``Ω`` the union of
radius-1.5 disks around a connected set ``V`` and ``Vor(u)`` the Voronoi
cell of an independent point ``u``, together with the *unproven* claim
that each clipped cell has at least the area of a regular hexagon of
side ``1/sqrt(3)`` centered at ``u``.

The paper does not resolve the claim; it demotes the resulting
``3.453n + 8.291`` bound to a conjecture.  We therefore provide the
measurement machinery: rasterized Voronoi cell areas clipped to ``Ω``,
the hexagon constant, and the resulting area-argument estimate, so the
experiments can report how the measured minima compare to the
hexagon-area claim on concrete instances.
"""

from __future__ import annotations

import math
from typing import Sequence

from .point import Point

__all__ = [
    "HEXAGON_SIDE",
    "hexagon_area",
    "voronoi_cell_areas",
    "area_argument_bound",
]

#: Side length of the regular hexagon in the Funke et al. claim.
HEXAGON_SIDE: float = 1.0 / math.sqrt(3.0)


def hexagon_area(side: float = HEXAGON_SIDE) -> float:
    """Area of a regular hexagon with the given side length.

    For the default side ``1/sqrt(3)`` this is ``sqrt(3)/2 ≈ 0.866``,
    the per-point area floor the Funke et al. argument asserts.
    """
    return 3.0 * math.sqrt(3.0) / 2.0 * side * side


def voronoi_cell_areas(
    sites: Sequence[Point],
    region_centers: Sequence[Point],
    region_radius: float = 1.5,
    resolution: int = 400,
) -> list[float]:
    """Area of each site's Voronoi cell clipped to ``Ω``.

    ``Ω`` is the union of disks of ``region_radius`` around
    ``region_centers``.  Areas are computed by deterministic midpoint
    rasterization: every grid cell inside ``Ω`` is assigned to its
    nearest site.  Ties go to the lowest-index site; at the default
    resolution the tie set has measure ~0 and the per-cell relative
    error is well under one percent, which is all the comparative
    Section V experiments need.

    Returns one area per site, in input order.
    """
    if not sites:
        return []
    if not region_centers:
        return [0.0] * len(sites)
    min_x = min(c.x for c in region_centers) - region_radius
    max_x = max(c.x for c in region_centers) + region_radius
    min_y = min(c.y for c in region_centers) - region_radius
    max_y = max(c.y for c in region_centers) + region_radius
    span = max(max_x - min_x, max_y - min_y)
    if span <= 0.0:
        return [0.0] * len(sites)
    step = span / resolution
    nx = max(1, int(math.ceil((max_x - min_x) / step)))
    ny = max(1, int(math.ceil((max_y - min_y) / step)))
    r_sq = region_radius * region_radius
    cell_area = step * step
    areas = [0.0] * len(sites)
    site_xy = [(s.x, s.y) for s in sites]
    centers_xy = [(c.x, c.y) for c in region_centers]
    for iy in range(ny):
        y = min_y + (iy + 0.5) * step
        row_centers = [(cx, cy) for cx, cy in centers_xy if abs(cy - y) <= region_radius]
        if not row_centers:
            continue
        for ix in range(nx):
            x = min_x + (ix + 0.5) * step
            covered = False
            for cx, cy in row_centers:
                dx, dy = cx - x, cy - y
                if dx * dx + dy * dy <= r_sq:
                    covered = True
                    break
            if not covered:
                continue
            best_i = 0
            best_d = math.inf
            for i, (sx, sy) in enumerate(site_xy):
                dx, dy = sx - x, sy - y
                d = dx * dx + dy * dy
                if d < best_d:
                    best_d = d
                    best_i = i
            areas[best_i] += cell_area
    return areas


def area_argument_bound(
    region_area: float, min_cell_area: float
) -> float:
    """The Funke et al. counting bound ``area(Ω) / min cell area``.

    Exposed so the experiments can juxtapose the area-argument estimate
    with the paper's proven ``11n/3 + 1`` bound and the measured packing
    numbers.
    """
    if min_cell_area <= 0.0:
        raise ValueError("minimum cell area must be positive")
    return region_area / min_cell_area
