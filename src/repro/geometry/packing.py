"""Independent-point packings.

A finite planar set is *independent* (Section I of the paper) when all
pairwise distances are strictly greater than one.  The paper's central
quantities are packing numbers: how many independent points fit in a
unit disk (5), in the symmetric difference of two overlapping disks
(Lemma 1: 7), in the neighborhood of an n-star (Theorem 3: ``phi_n``),
and in a radius-2 disk (Wegner's theorem: 21).

This module provides the independence predicate, greedy and exact
maximum packings over finite candidate sets, candidate generators used
by the empirical theorem checkers, and the ``phi_n`` formula itself.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from .point import EPS, Point
from .disks import in_disk, in_neighborhood

__all__ = [
    "WEGNER_RADIUS2_CAPACITY",
    "is_independent",
    "independence_violations",
    "phi",
    "greedy_independent_subset",
    "max_independent_subset",
    "max_independent_subset_size",
    "grid_candidates",
    "disk_candidates",
    "neighborhood_candidates",
]

#: Wegner's theorem [11]: a disk of radius two contains at most 21 points
#: with pairwise distances >= 1.  Theorem 3 uses it for the ``n >= 6`` cap.
WEGNER_RADIUS2_CAPACITY: int = 21


def is_independent(points: Sequence[Point], tol: float = EPS) -> bool:
    """Whether all pairwise distances exceed one.

    ``tol`` guards against floating-point noise: a pair at distance
    ``1 + tol/2`` is *not* counted as independent.  The paper's
    constructions are built with margins of about ``1e-5``, far above
    the default tolerance.
    """
    threshold_sq = (1.0 + tol) * (1.0 + tol)
    for i in range(len(points)):
        pi = points[i]
        for j in range(i + 1, len(points)):
            pj = points[j]
            dx, dy = pi.x - pj.x, pi.y - pj.y
            if dx * dx + dy * dy <= threshold_sq:
                return False
    return True


def independence_violations(
    points: Sequence[Point], tol: float = EPS
) -> list[tuple[int, int, float]]:
    """All index pairs at distance <= 1, with their distances.

    Useful in tests to report *which* pair broke a construction.
    """
    violations: list[tuple[int, int, float]] = []
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            d = points[i].distance_to(points[j])
            if d <= 1.0 + tol:
                violations.append((i, j, d))
    return violations


def phi(n: int) -> int:
    """The packing bound ``phi_n`` of Theorem 3.

    ``phi_n = 3n + 2`` for ``n <= 2`` and ``min(3n + 3, 21)`` for
    ``n >= 3``: the largest number of independent points that can lie in
    the neighborhood of an n-star.
    """
    if n < 1:
        raise ValueError(f"phi_n is defined for n >= 1, got {n}")
    if n <= 2:
        return 3 * n + 2
    return min(3 * n + 3, 21)


def greedy_independent_subset(
    candidates: Sequence[Point],
    tol: float = EPS,
    key: Callable[[Point], float] | None = None,
) -> list[Point]:
    """A maximal independent subset of ``candidates``, greedily.

    Candidates are scanned in ``key`` order (default: lexicographic) and
    kept whenever they stay at distance > 1 from everything already
    kept.  This is the workhorse of the empirical bound checkers: it
    produces large-but-not-necessarily-maximum packings cheaply.
    """
    ordered = sorted(candidates, key=key) if key is not None else sorted(candidates)
    chosen: list[Point] = []
    threshold_sq = (1.0 + tol) * (1.0 + tol)
    for p in ordered:
        ok = True
        for q in chosen:
            dx, dy = p.x - q.x, p.y - q.y
            if dx * dx + dy * dy <= threshold_sq:
                ok = False
                break
        if ok:
            chosen.append(p)
    return chosen


def max_independent_subset(
    candidates: Sequence[Point], tol: float = EPS, limit: int | None = None
) -> list[Point]:
    """A maximum independent subset of a finite candidate set.

    Branch and bound over the *conflict graph* (vertices = candidates,
    edges = pairs at distance <= 1).  Exponential in the worst case;
    intended for the candidate sets the theorem checkers build
    (tens of points).  ``limit`` optionally caps the search: once a
    packing of that size is found it is returned immediately.
    """
    pts = list(candidates)
    n = len(pts)
    threshold_sq = (1.0 + tol) * (1.0 + tol)
    conflict: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            dx = pts[i].x - pts[j].x
            dy = pts[i].y - pts[j].y
            if dx * dx + dy * dy <= threshold_sq:
                conflict[i].add(j)
                conflict[j].add(i)

    best: list[int] = []
    # Order vertices by degree (fewest conflicts first) for better bounds.
    order = sorted(range(n), key=lambda i: len(conflict[i]))
    rank = {v: r for r, v in enumerate(order)}

    def expand(chosen: list[int], allowed: list[int]) -> None:
        nonlocal best
        if limit is not None and len(best) >= limit:
            return
        if len(chosen) + len(allowed) <= len(best):
            return
        if not allowed:
            if len(chosen) > len(best):
                best = chosen[:]
            return
        v = allowed[0]
        rest = allowed[1:]
        # Branch 1: take v.
        expand(chosen + [v], [u for u in rest if u not in conflict[v]])
        # Branch 2: skip v.
        expand(chosen, rest)

    expand([], sorted(range(n), key=lambda i: rank[i]))
    return [pts[i] for i in best]


def max_independent_subset_size(
    candidates: Sequence[Point], tol: float = EPS
) -> int:
    """Size of a maximum independent subset of ``candidates``."""
    return len(max_independent_subset(candidates, tol))


def grid_candidates(
    min_x: float, max_x: float, min_y: float, max_y: float, step: float
) -> list[Point]:
    """A regular grid of candidate points over a bounding box."""
    if step <= 0.0:
        raise ValueError("step must be positive")
    nx = int(math.floor((max_x - min_x) / step)) + 1
    ny = int(math.floor((max_y - min_y) / step)) + 1
    return [
        Point(min_x + i * step, min_y + j * step)
        for i in range(nx)
        for j in range(ny)
    ]


def disk_candidates(center: Point, radius: float, step: float) -> list[Point]:
    """Grid candidates restricted to a closed disk."""
    box = grid_candidates(
        center.x - radius, center.x + radius, center.y - radius, center.y + radius, step
    )
    return [p for p in box if in_disk(p, center, radius)]


def neighborhood_candidates(
    centers: Sequence[Point], step: float, radius: float = 1.0
) -> list[Point]:
    """Grid candidates restricted to the neighborhood ``∪ D_u``.

    The empirical Theorem 3 / Theorem 6 checks pack independent points
    from this candidate set and compare the count against ``phi_n`` and
    ``11n/3 + 1``.
    """
    if not centers:
        return []
    min_x = min(c.x for c in centers) - radius
    max_x = max(c.x for c in centers) + radius
    min_y = min(c.y for c in centers) - radius
    max_y = max(c.y for c in centers) + radius
    box = grid_candidates(min_x, max_x, min_y, max_y, step)
    return [p for p in box if in_neighborhood(p, centers, radius)]
