"""Geometric predicates used throughout the packing proofs.

These are the primitive tests the paper's appendix reasons with:
orientation of point triples, interior angles of convex quadrilaterals
(Lemma 11), angular separation of independent neighbors (used in the
proof of Lemma 2: four independent points around ``o`` have adjacent
angular separations strictly between 60 and 180 degrees), and the
diameter of finite point sets (arc-polygon diameter reduces to vertex-set
diameter).
"""

from __future__ import annotations

import math
from typing import Sequence

from .point import EPS, Point, max_pairwise_distance

__all__ = [
    "orientation",
    "is_ccw",
    "is_collinear",
    "angle_at",
    "angle_between",
    "angular_separations",
    "is_convex_polygon",
    "convex_hull",
    "diameter",
    "polygon_area",
    "point_in_polygon",
]


def orientation(a: Point, b: Point, c: Point) -> float:
    """Signed area of triangle ``abc`` times two.

    Positive for a counterclockwise turn, negative for clockwise,
    (near) zero for collinear points.
    """
    return (b - a).cross(c - a)


def is_ccw(a: Point, b: Point, c: Point, tol: float = EPS) -> bool:
    """Whether ``a -> b -> c`` makes a strict counterclockwise turn."""
    return orientation(a, b, c) > tol


def is_collinear(a: Point, b: Point, c: Point, tol: float = EPS) -> bool:
    """Whether the three points are collinear up to ``tol``."""
    return abs(orientation(a, b, c)) <= tol


def angle_at(vertex: Point, a: Point, b: Point) -> float:
    """Interior angle ``a-vertex-b`` in radians, in ``[0, pi]``.

    This is the quantity Lemma 11 manipulates (``angle ovp + angle upv``).
    """
    u = a - vertex
    v = b - vertex
    nu, nv = u.norm(), v.norm()
    if nu == 0.0 or nv == 0.0:
        raise ValueError("angle undefined when a side has zero length")
    cosine = max(-1.0, min(1.0, u.dot(v) / (nu * nv)))
    return math.acos(cosine)


def angle_between(u: Point, v: Point) -> float:
    """Unsigned angle between two vectors, in ``[0, pi]``."""
    return angle_at(Point(0.0, 0.0), u, v)


def angular_separations(center: Point, points: Sequence[Point]) -> list[float]:
    """Adjacent angular gaps (radians) of ``points`` as seen from ``center``.

    The points are sorted by polar angle around ``center``; the returned
    list contains one gap per adjacent pair, including the wrap-around
    gap, so it always sums to ``2*pi`` (for two or more points).

    The proof of Lemma 2 uses the fact that independent points within
    unit distance of ``center`` have all adjacent separations > 60
    degrees: this helper lets tests verify that property numerically.
    """
    if len(points) < 2:
        return []
    angles = sorted(center.angle_to(p) for p in points)
    gaps = [angles[i + 1] - angles[i] for i in range(len(angles) - 1)]
    gaps.append(2.0 * math.pi - (angles[-1] - angles[0]))
    return gaps


def is_convex_polygon(vertices: Sequence[Point], tol: float = EPS) -> bool:
    """Whether the vertex cycle bounds a convex polygon.

    Accepts either orientation; collinear (zero-turn) vertices are
    permitted.  Degenerate inputs (< 3 vertices) are not convex polygons.
    """
    n = len(vertices)
    if n < 3:
        return False
    sign = 0.0
    for i in range(n):
        turn = orientation(vertices[i], vertices[(i + 1) % n], vertices[(i + 2) % n])
        if abs(turn) <= tol:
            continue
        if sign == 0.0:
            sign = turn
        elif sign * turn < 0.0:
            return False
    return True


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """Convex hull in counterclockwise order (Andrew's monotone chain).

    Collinear points on the hull boundary are discarded.  For fewer than
    three distinct points the distinct points are returned sorted.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def half_hull(seq: list[Point]) -> list[Point]:
        hull: list[Point] = []
        for p in seq:
            while len(hull) >= 2 and orientation(hull[-2], hull[-1], p) <= EPS:
                hull.pop()
            hull.append(p)
        return hull

    lower = half_hull(pts)
    upper = half_hull(pts[::-1])
    return lower[:-1] + upper[:-1]


def diameter(points: Sequence[Point]) -> float:
    """Diameter (largest pairwise distance) of a finite point set.

    The appendix repeatedly bounds ``diam({p1, s1, p2, s2})``; for the
    small sets involved the quadratic scan is exact and fast.  For large
    sets this routine first reduces to the convex hull.
    """
    pts = list(points)
    if len(pts) > 64:
        pts = convex_hull(pts) or pts
    return max_pairwise_distance(pts)


def polygon_area(vertices: Sequence[Point]) -> float:
    """Unsigned area of a simple polygon (shoelace formula)."""
    n = len(vertices)
    if n < 3:
        return 0.0
    total = 0.0
    for i in range(n):
        a, b = vertices[i], vertices[(i + 1) % n]
        total += a.cross(b)
    return abs(total) / 2.0


def point_in_polygon(p: Point, vertices: Sequence[Point], tol: float = EPS) -> bool:
    """Whether ``p`` lies inside or on the boundary of a simple polygon."""
    n = len(vertices)
    if n < 3:
        return False
    # Boundary check: p on any edge counts as inside.
    for i in range(n):
        a, b = vertices[i], vertices[(i + 1) % n]
        if abs(orientation(a, b, p)) <= tol:
            lo_x, hi_x = min(a.x, b.x) - tol, max(a.x, b.x) + tol
            lo_y, hi_y = min(a.y, b.y) - tol, max(a.y, b.y) + tol
            if lo_x <= p.x <= hi_x and lo_y <= p.y <= hi_y:
                return True
    inside = False
    j = n - 1
    for i in range(n):
        a, b = vertices[i], vertices[j]
        if (a.y > p.y) != (b.y > p.y):
            x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x
            if p.x < x_cross:
                inside = not inside
        j = i
    return inside
