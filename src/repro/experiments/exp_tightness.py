"""Experiments F1 / F2 — the Section V tightness constructions.

Figure 1: the neighborhood of a 2-star (resp. 3-star) can contain 8
(resp. 12) independent points.  Figure 2: the neighborhood of ``n``
collinear unit-spaced points can contain ``3(n + 1)``.

Pass criterion: every construction validates (independence + inside the
neighborhood) and achieves the exact claimed count.
"""

from __future__ import annotations

from ..geometry.constructions import (
    figure1_three_star,
    figure1_two_star,
    figure2_linear,
    one_star_packing,
)
from ..geometry.packing import is_independent, phi
from ..analysis.independence import packing_count
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


@experiment("F1F2", "Figures 1-2: tightness constructions")
def run(chain_sizes: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 10, 12)) -> ExperimentResult:
    fig1 = Table(
        title="Figure 1 (+ pentagon): star instances",
        headers=["instance", "claimed", "achieved", "phi_n", "ok"],
    )
    all_ok = True
    for label, builder, claimed in (
        ("1-star pentagon", one_star_packing, 5),
        ("2-star (Fig 1 left)", figure1_two_star, 8),
        ("3-star (Fig 1 right)", figure1_three_star, 12),
    ):
        centers, witness = builder()
        achieved = packing_count(witness, centers)
        ok = is_independent(witness) and achieved == claimed == phi(len(centers))
        all_ok = all_ok and ok
        fig1.add_row(label, claimed, achieved, phi(len(centers)), ok)

    fig2 = Table(
        title="Figure 2: n collinear unit-spaced points",
        headers=["n", "claimed 3(n+1)", "achieved", "ok"],
    )
    for n in chain_sizes:
        centers, witness = figure2_linear(n)
        achieved = packing_count(witness, centers)
        ok = is_independent(witness) and achieved == 3 * (n + 1)
        all_ok = all_ok and ok
        fig2.add_row(n, 3 * (n + 1), achieved, ok)

    return ExperimentResult(
        experiment_id="F1F2",
        title="Tightness constructions (Figures 1-2)",
        tables=[fig1, fig2],
        passed=all_ok,
        notes=(
            "Both even and odd chain lengths are exercised — the paper "
            "draws them separately (Fig 2a/2b) because the alternating-"
            "height rows need a parity fix-up for even n."
        ),
    )
