"""Shared instance families for the experiments.

One place defining the deployments every experiment samples from, so
tables across experiments are comparable: uniform squares at a range of
densities, connected random *planar sets* (for the packing theorems,
which are about point sets rather than graphs), random stars, and the
integer relabeling the distributed protocols want.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..geometry.point import Point
from ..graphs.graph import Graph
from ..graphs.generators import random_connected_udg

__all__ = [
    "default_side",
    "connected_udg_instances",
    "connected_planar_sets",
    "random_star",
    "int_labeled",
]


def default_side(n: int, mean_degree: float = 5.5) -> float:
    """Square side giving roughly ``mean_degree`` UDG neighbors per node.

    For n uniform points in a side-s square the expected degree is about
    ``pi * n / s**2``; solving for ``s`` keeps instances comfortably above
    the connectivity threshold so rejection sampling converges fast.
    """
    return max(1.5, (3.141592653589793 * n / mean_degree) ** 0.5)


def connected_udg_instances(
    n: int, side: float, seeds: range
) -> Iterator[tuple[list[Point], Graph[Point]]]:
    """One connected uniform-square UDG per seed."""
    for seed in seeds:
        yield random_connected_udg(n, side, seed=seed)


def connected_planar_sets(
    n: int, side: float, seeds: range, max_attempts: int = 400
) -> Iterator[list[Point]]:
    """Connected planar point sets (for Theorem 6 style packing)."""
    for seed in seeds:
        pts, _ = random_connected_udg(n, side, seed=seed, max_attempts=max_attempts)
        yield pts


def random_star(n: int, seed: int) -> list[Point]:
    """A random n-star: a center plus ``n - 1`` points within its disk."""
    rng = random.Random(seed)
    center = Point(0.0, 0.0)
    pts = [center]
    while len(pts) < n:
        candidate = Point(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))
        if candidate.norm() <= 1.0:
            pts.append(candidate)
    return pts


def int_labeled(graph: Graph[Point]) -> Graph[int]:
    """Relabel a point graph with integer ids (sorted by coordinates).

    The distributed protocols want orderable, compact ids.
    """
    ids = {p: i for i, p in enumerate(sorted(graph.nodes()))}
    out: Graph[int] = Graph()
    for p in graph.nodes():
        out.add_node(ids[p])
    for u, v in graph.edges():
        out.add_edge(ids[u], ids[v])
    return out
