"""Experiment APP — the appendix lemmas (Figures 3, 4, 6).

The paper omits the proofs of the geometric Lemmas 11–13 for space.
This experiment verifies their *statements* numerically over large
randomized configuration samples:

* Lemma 11 (Figure 3): in a convex quadrilateral ``o u p v`` with
  ``|ov| = |up|``, the angle sum at ``v`` and ``p`` is at most 180°
  iff ``|vp| >= |ou|``;
* Lemma 12 (Figure 4): the three-circle configuration has diameter
  exactly one;
* Lemma 13 (Figure 6): ``angle(uov) + angle(puo) >= 150°``.

Pass criterion: zero counterexamples across all samples.
"""

from __future__ import annotations

import math
import random

from ..geometry.point import Point
from ..geometry.predicates import diameter
from ..geometry.lemma_checks import (
    lemma11_angle_sum,
    lemma11_holds,
    lemma12_configuration,
    lemma13_angle_sum,
)
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


def _sample_lemma11(rng: random.Random):
    o = Point(0.0, 0.0)
    u = Point(rng.uniform(0.3, 1.5), 0.0)
    r = rng.uniform(0.4, 1.5)
    v = o + Point.polar(r, rng.uniform(math.radians(50), math.radians(130)))
    p = u + Point.polar(r, rng.uniform(math.radians(50), math.radians(130)))
    return o, u, p, v


@experiment("APP", "Appendix lemmas 11-13 (Figures 3, 4, 6)")
def run(samples: int = 800, seed: int = 11) -> ExperimentResult:
    rng = random.Random(seed)
    table = Table(
        title="randomized verification of the omitted-proof lemmas",
        headers=["lemma", "valid samples", "counterexamples", "extremal value"],
    )
    all_ok = True

    # Lemma 11.
    checked = bad = 0
    for _ in range(samples):
        o, u, p, v = _sample_lemma11(rng)
        try:
            ok = lemma11_holds(o, u, p, v)
        except ValueError:
            continue
        if abs(lemma11_angle_sum(o, u, p, v) - math.pi) < 1e-3:
            continue
        if abs(v.distance_to(p) - o.distance_to(u)) < 1e-3:
            continue
        checked += 1
        if not ok:
            bad += 1
    all_ok = all_ok and bad == 0
    table.add_row("11 (angle iff side)", checked, bad, "-")

    # Lemma 12.
    checked = bad = 0
    worst = 0.0
    for _ in range(samples):
        o = Point(0.0, 0.0)
        u = Point(rng.uniform(0.2, 1.0), 0.0)
        p = u + Point.polar(1.0, rng.uniform(0.05, math.pi - 0.05))
        config = lemma12_configuration(o, u, p)
        if config is None:
            continue
        checked += 1
        d = diameter(config)
        worst = max(worst, abs(d - 1.0))
        if abs(d - 1.0) > 1e-6:
            bad += 1
    all_ok = all_ok and bad == 0
    table.add_row("12 (diameter = 1)", checked, bad, f"max |d-1| = {worst:.2e}")

    # Lemma 13.
    checked = bad = 0
    tightest = math.inf
    for _ in range(samples):
        o = Point(0.0, 0.0)
        u = Point(rng.uniform(0.15, 1.0), 0.0)
        v = Point.polar(rng.uniform(0.0, 1.0), rng.uniform(0.0, math.pi))
        if v.distance_to(u) <= 1.0:
            continue
        total = lemma13_angle_sum(o, u, v)
        if total is None:
            continue
        checked += 1
        tightest = min(tightest, math.degrees(total))
        if total < math.radians(150) - 1e-6:
            bad += 1
    all_ok = all_ok and bad == 0
    table.add_row("13 (sum >= 150 deg)", checked, bad, f"min sum = {tightest:.1f} deg")

    return ExperimentResult(
        experiment_id="APP",
        title="Appendix lemmas, numerically",
        tables=[table],
        passed=all_ok,
        notes=(
            "The omitted proofs cannot be re-derived mechanically; "
            "randomized verification of the statements is the honest "
            "substitute.  Lemma 12's diameter lands on 1 at machine "
            "precision, and the sampled Lemma 13 angle sums stay "
            "comfortably above the 150-degree floor."
        ),
    )
