"""Parallel sweep runner: multiprocessing maps with deterministic output.

Every empirical table in this reproduction is a *sweep*: the same
computation over a grid of ``(n, seed)`` cells (instance sizes ×
replications).  Cells are independent, so they parallelise trivially —
what needs care is keeping the results exactly as reproducible as the
serial loop:

* **Deterministic ordering.**  :func:`parallel_map` always returns
  results in *input* order (``multiprocessing.Pool.map`` preserves it),
  so a table built from the returned list is byte-identical whatever
  ``jobs`` is, and identical to ``jobs=1``.
* **Determinism per cell.**  Workers receive the cell parameters and
  regenerate the instance from its seed inside the child process —
  nothing depends on which worker runs which cell.
* **Instrumentation is captured in the child, merged in the parent.**
  The :data:`repro.obs.OBS` registry is process-local; a child's
  counters never reach the parent by themselves.  Workers that want
  counts capture them *inside* the cell (see :func:`solve_cell`, which
  returns them in its result dict) or export the whole registry state
  (see :func:`run_experiments_parallel` with ``collect_obs=True``,
  which the CLI merges deterministically so ``--trace``/``--stats-out``
  work at any ``--jobs``).

Workers must be defined at module level (``multiprocessing`` pickles
them by reference); :func:`functools.partial` over a module-level
function works for parameterised workers and is what
:func:`solve_cells` does internally.

The CLI experiments mode exposes this as ``--jobs N``
(``python -m repro --all --jobs 4``), and
``benchmarks/bench_to_json.py`` uses the same map to spread benchmark
cases over cores (timing runs stay trustworthy because each case is
timed inside a single process, unshared).
"""

from __future__ import annotations

import multiprocessing
import os
from functools import partial
from typing import Callable, Iterable, NamedTuple, Sequence, TypeVar

from ..reliability.failures import CellError
from .harness import ExperimentResult, get_experiment
from .instances import default_side

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "SweepCell",
    "cell_key",
    "sweep_cells",
    "parallel_map",
    "merge_cell_counters",
    "solve_cell",
    "solve_cells",
    "solve_cells_resilient",
    "run_experiments_parallel",
    "run_experiments_resilient",
    "default_jobs",
]


class SweepCell(NamedTuple):
    """One cell of an experiment sweep: an instance size and its seed.

    ``side`` is carried explicitly (not re-derived in the worker) so a
    cell is self-describing and the grid stays frozen even if the
    density default changes.
    """

    n: int
    side: float
    seed: int


def sweep_cells(
    ns: Sequence[int],
    seeds: Iterable[int],
    side: float | Callable[[int], float] | None = None,
) -> list[SweepCell]:
    """The ``(n, seed)`` grid, n-major, in deterministic order.

    ``side`` may be a constant, a function of ``n``, or ``None`` for
    :func:`repro.experiments.instances.default_side`.
    """
    if side is None:
        side = default_side
    seeds = list(seeds)
    cells = []
    for n in ns:
        s = side(n) if callable(side) else side
        for seed in seeds:
            cells.append(SweepCell(n=n, side=s, seed=seed))
    return cells


def cell_key(cell: SweepCell) -> str:
    """The cell's stable identity string (checkpoint ledger key)."""
    return f"n={cell.n};side={cell.side!r};seed={cell.seed}"


def default_jobs() -> int:
    """A conservative default worker count: physical parallelism, capped."""
    return max(1, min(8, os.cpu_count() or 1))


class _ContextWorker:
    """Wraps a map worker so its exceptions name the failing item.

    Picklable whenever the wrapped worker is, so the pool path gets the
    same enrichment: an exception crossing the process boundary arrives
    as a :class:`~repro.reliability.failures.CellError` carrying the
    item's repr, its input index, and the worker-side traceback —
    instead of a bare traceback with no cell identity.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, task: tuple[int, object]):
        index, item = task
        try:
            return self.worker(item)
        except Exception as exc:
            raise CellError.wrap(item, index, exc) from exc


def parallel_map(
    worker: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    pool=None,
) -> list[R]:
    """``[worker(item) for item in items]``, optionally across processes.

    ``jobs <= 1`` (or fewer than two items) runs serially in-process —
    no pool, no pickling, identical semantics.  Otherwise a
    ``multiprocessing.Pool`` of ``min(jobs, len(items))`` workers maps
    the items; results always come back in input order, so output is
    independent of scheduling.  ``worker`` must be picklable (a
    module-level function or a :func:`functools.partial` of one).

    A worker exception aborts the map (fail-fast — this is the strict
    primitive; see :func:`repro.reliability.run_cells` for the
    fault-isolated one) but is re-raised as a
    :class:`~repro.reliability.failures.CellError` naming the failing
    item and its index, with the original exception chained in-process
    and its traceback text preserved across the pool boundary.

    ``pool`` optionally supplies an externally managed
    ``multiprocessing`` pool to map on instead of creating (and tearing
    down) one per call; the caller owns its lifecycle.  Long-lived
    multi-threaded processes need this — the solve daemon reuses one
    forkserver-context pool across batches, because fork()ing a fresh
    pool out of a threaded process can deadlock the child on locks the
    fork happened to snapshot mid-held.
    """
    items = list(items)
    wrapped = _ContextWorker(worker)
    tasks = list(enumerate(items))
    if jobs <= 1 or len(items) < 2:
        return [wrapped(task) for task in tasks]
    if pool is not None:
        return pool.map(wrapped, tasks)
    with multiprocessing.Pool(processes=min(jobs, len(items))) as fresh:
        return fresh.map(wrapped, tasks)


def solve_cell(
    cell: SweepCell,
    algorithm: str = "greedy",
    kernel: str | None = None,
    m: int | None = None,
) -> dict:
    """Worker: build the cell's connected UDG, solve it, count everything.

    Runs with instrumentation captured locally (safe under
    multiprocessing — see the module docstring) and returns a flat,
    picklable summary::

        {"n": ..., "side": ..., "seed": ..., "algorithm": ...,
         "cds_size": ..., "dominators": ..., "connectors": ...,
         "counters": {...}}

    ``algorithm`` is a key of the CLI solver registry (``"greedy"``,
    ``"waf"``, a baseline name, ...).  ``kernel`` optionally pins the
    graph kernel of the kernelized solvers (``"indexed"`` /
    ``"bitset"`` / ``"array"``; results are identical under every
    kernel) and is
    echoed in the summary; ``None`` leaves the solver's default and
    the summary shape exactly as before.  ``m`` likewise pins the
    coverage multiplicity of the fault-tolerant solvers
    (``mfold-greedy`` / ``mfold-2conn``).

    Raises:
        ValueError: when ``kernel`` (or ``m``) is given but
            ``algorithm`` does not accept it.
    """
    import inspect

    from ..cli import _solver_registry
    from ..graphs.generators import random_connected_udg
    from ..obs import OBS

    solver = _solver_registry()[algorithm]
    params = inspect.signature(solver).parameters
    kwargs = {}
    if kernel is not None:
        if "kernel" not in params:
            raise ValueError(
                f"algorithm {algorithm!r} does not take a kernel "
                "(only the kernelized solvers: waf, greedy)"
            )
        kwargs["kernel"] = kernel
    if m is not None:
        if "m" not in params:
            raise ValueError(
                f"algorithm {algorithm!r} does not take a coverage "
                "multiplicity m (only the fault-tolerant solvers: "
                "mfold-greedy, mfold-2conn)"
            )
        kwargs["m"] = m
    _, graph = random_connected_udg(cell.n, cell.side, seed=cell.seed)
    with OBS.capture() as reg:
        result = solver(graph, **kwargs)
        counters = reg.counters()
    summary = {
        "n": cell.n,
        "side": cell.side,
        "seed": cell.seed,
        "algorithm": result.algorithm,
        "cds_size": result.size,
        "dominators": len(result.dominators),
        "connectors": len(result.connectors),
        "counters": counters,
    }
    if kernel is not None:
        summary["kernel"] = kernel
    if m is not None:
        summary["m"] = m
    return summary


def solve_cells(
    cells: Sequence[SweepCell], algorithm: str = "greedy", jobs: int = 1
) -> list[dict]:
    """Map :func:`solve_cell` over a grid, one result dict per cell."""
    return parallel_map(partial(solve_cell, algorithm=algorithm), cells, jobs)


def merge_cell_counters(results: Iterable[dict]) -> dict:
    """Sum the per-cell ``counters`` of solve summaries, sorted by name.

    The "merged obs counters" of a sweep: deterministic per grid
    because each cell's counters are deterministic per seed, and
    addition is order-independent — an interrupted-and-resumed sweep
    merges to exactly the numbers of an uninterrupted one.
    """
    merged: dict[str, int | float] = {}
    for summary in results:
        for name, value in summary.get("counters", {}).items():
            merged[name] = merged.get(name, 0) + value
    return {name: merged[name] for name in sorted(merged)}


def solve_cells_resilient(
    cells: Sequence[SweepCell],
    algorithm: str = "greedy",
    jobs: int = 1,
    *,
    kernel: str | None = None,
    m: int | None = None,
    policy=None,
    faults=None,
    checkpoint: str | None = None,
    resume: bool = False,
):
    """Fault-isolated :func:`solve_cells`: failures become data.

    Runs the grid through :func:`repro.reliability.run_cells` (one
    forked process per attempt): a cell that raises, stalls past the
    policy's timeout, or dies outright yields a structured
    :class:`~repro.reliability.failures.CellFailure` in its slot while
    every other cell completes.  With ``checkpoint=...`` progress is
    journalled per cell; ``resume=True`` re-runs only the missing
    cells and the merged results/counters are bit-identical to an
    uninterrupted run.  Returns the
    :class:`~repro.reliability.runner.SweepReport`.
    """
    from ..reliability import run_cells

    return run_cells(
        partial(solve_cell, algorithm=algorithm, kernel=kernel, m=m),
        cells,
        jobs=jobs,
        policy=policy,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        label=f"solve:{algorithm}:{kernel or 'auto'}",
        key_fn=cell_key,
    )


def _run_experiment_worker(experiment_id: str) -> ExperimentResult:
    """Module-level worker so experiment runs pickle across processes."""
    return get_experiment(experiment_id)()


def _run_experiment_worker_obs(
    task: tuple[str, int, bool, bool],
) -> tuple[ExperimentResult, dict, list | None]:
    """Instrumented worker: run one experiment under a captured registry.

    Returns ``(result, registry_state, events)`` — all picklable, so
    the parent can merge every worker's counters/timers with
    :meth:`Registry.merge_state` and interleave the per-worker event
    logs with :func:`repro.obs.events.merge_events`.  The worker index
    is the experiment's position in the input list, which keeps run ids
    and the merged event order deterministic.
    """
    experiment_id, worker_index, collect_events, mem_trace = task
    from contextlib import nullcontext

    from ..obs import OBS

    fn = get_experiment(experiment_id)
    with OBS.capture() as reg:
        log = None
        if collect_events:
            from ..obs.events import EventLog

            log = EventLog(reg, run_id=f"worker-{worker_index}", worker=worker_index)
            reg.add_hook(log)
        if mem_trace:
            from ..obs.profile import mem_tracing

            mem = mem_tracing(reg)
        else:
            mem = nullcontext()
        try:
            with mem, reg.time(f"experiment.{experiment_id}"):
                result = fn()
        finally:
            if log is not None:
                reg.remove_hook(log)
        state = reg.export_state()
    return result, state, (log.events if log is not None else None)


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    *,
    collect_obs: bool = False,
    collect_events: bool = False,
    mem_trace: bool = False,
) -> list:
    """Run registered experiments, possibly across processes.

    Ids are resolved (and canonicalised) up front so an unknown id
    raises ``KeyError`` before any process is forked; results come back
    in the order the ids were given.

    With ``collect_obs=False`` (the default) the return value is a
    plain ``list[ExperimentResult]`` and instrumentation stays in the
    child processes.  With ``collect_obs=True`` each element is a
    ``(result, registry_state, events)`` triple: the per-worker
    :data:`repro.obs.OBS` registry is captured around the run and
    exported, which is how ``--trace``/``--stats-out`` work under
    ``--jobs N`` — the CLI merges the states into its own registry
    (counters sum; timers merge total/count/max).  ``collect_events``
    additionally records each worker's ``repro.obs/event/v1`` log;
    per-span *nesting* across workers is reconstructed from the merged
    event log, not from the merged timers (a merged timer has no
    parent/child structure).
    """
    canonical = [get_experiment(eid).experiment_id for eid in experiment_ids]
    if not collect_obs:
        return parallel_map(_run_experiment_worker, canonical, jobs)
    tasks = [
        (eid, index, collect_events, mem_trace)
        for index, eid in enumerate(canonical)
    ]
    return parallel_map(_run_experiment_worker_obs, tasks, jobs)


def _run_experiment_worker_record(task: tuple[str, bool]) -> dict:
    """Checkpointable worker: one experiment, JSON-ready outcome.

    Returns ``{"result": <ExperimentResult json>, "state": <registry
    state or None>}`` — everything JSON-serialisable, so the resilient
    runner can journal it into the checkpoint ledger verbatim and a
    resumed sweep replays both the tables *and* the merged counters
    bit-identically.
    """
    experiment_id, collect_obs = task
    fn = get_experiment(experiment_id)
    if not collect_obs:
        return {"result": fn().to_json_obj(), "state": None}
    from ..obs import OBS

    with OBS.capture() as reg:
        with reg.time(f"experiment.{experiment_id}"):
            result = fn()
        state = reg.export_state()
    return {"result": result.to_json_obj(), "state": state}


def _experiment_task_key(task: tuple[str, bool]) -> str:
    return task[0]


def run_experiments_resilient(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    *,
    collect_obs: bool = False,
    policy=None,
    faults=None,
    checkpoint: str | None = None,
    resume: bool = False,
):
    """Fault-isolated, checkpointable :func:`run_experiments_parallel`.

    Each experiment runs in its own forked process; a crashing or
    overdue one becomes a structured failure in its slot instead of
    killing the batch, and with ``checkpoint=`` / ``resume=True`` an
    interrupted batch picks up where the ledger ends.  Returns the
    :class:`~repro.reliability.runner.SweepReport` whose successful
    outcomes carry ``{"result": <ExperimentResult json>, "state":
    <registry state or None>}`` payloads — decode with
    :meth:`repro.experiments.harness.ExperimentResult.from_json_obj`
    and merge states with :meth:`repro.obs.Registry.merge_state`.
    """
    from ..reliability import run_cells

    canonical = [get_experiment(eid).experiment_id for eid in experiment_ids]
    return run_cells(
        _run_experiment_worker_record,
        [(eid, collect_obs) for eid in canonical],
        jobs=jobs,
        policy=policy,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        label="experiments",
        key_fn=_experiment_task_key,
    )
