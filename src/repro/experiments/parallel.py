"""Parallel sweep runner: multiprocessing maps with deterministic output.

Every empirical table in this reproduction is a *sweep*: the same
computation over a grid of ``(n, seed)`` cells (instance sizes ×
replications).  Cells are independent, so they parallelise trivially —
what needs care is keeping the results exactly as reproducible as the
serial loop:

* **Deterministic ordering.**  :func:`parallel_map` always returns
  results in *input* order (``multiprocessing.Pool.map`` preserves it),
  so a table built from the returned list is byte-identical whatever
  ``jobs`` is, and identical to ``jobs=1``.
* **Determinism per cell.**  Workers receive the cell parameters and
  regenerate the instance from its seed inside the child process —
  nothing depends on which worker runs which cell.
* **Instrumentation is captured in the child, merged in the parent.**
  The :data:`repro.obs.OBS` registry is process-local; a child's
  counters never reach the parent by themselves.  Workers that want
  counts capture them *inside* the cell (see :func:`solve_cell`, which
  returns them in its result dict) or export the whole registry state
  (see :func:`run_experiments_parallel` with ``collect_obs=True``,
  which the CLI merges deterministically so ``--trace``/``--stats-out``
  work at any ``--jobs``).

Workers must be defined at module level (``multiprocessing`` pickles
them by reference); :func:`functools.partial` over a module-level
function works for parameterised workers and is what
:func:`solve_cells` does internally.

The CLI experiments mode exposes this as ``--jobs N``
(``python -m repro --all --jobs 4``), and
``benchmarks/bench_to_json.py`` uses the same map to spread benchmark
cases over cores (timing runs stay trustworthy because each case is
timed inside a single process, unshared).
"""

from __future__ import annotations

import multiprocessing
import os
from functools import partial
from typing import Callable, Iterable, NamedTuple, Sequence, TypeVar

from .harness import ExperimentResult, get_experiment
from .instances import default_side

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "SweepCell",
    "sweep_cells",
    "parallel_map",
    "solve_cell",
    "solve_cells",
    "run_experiments_parallel",
    "default_jobs",
]


class SweepCell(NamedTuple):
    """One cell of an experiment sweep: an instance size and its seed.

    ``side`` is carried explicitly (not re-derived in the worker) so a
    cell is self-describing and the grid stays frozen even if the
    density default changes.
    """

    n: int
    side: float
    seed: int


def sweep_cells(
    ns: Sequence[int],
    seeds: Iterable[int],
    side: float | Callable[[int], float] | None = None,
) -> list[SweepCell]:
    """The ``(n, seed)`` grid, n-major, in deterministic order.

    ``side`` may be a constant, a function of ``n``, or ``None`` for
    :func:`repro.experiments.instances.default_side`.
    """
    if side is None:
        side = default_side
    seeds = list(seeds)
    cells = []
    for n in ns:
        s = side(n) if callable(side) else side
        for seed in seeds:
            cells.append(SweepCell(n=n, side=s, seed=seed))
    return cells


def default_jobs() -> int:
    """A conservative default worker count: physical parallelism, capped."""
    return max(1, min(8, os.cpu_count() or 1))


def parallel_map(
    worker: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> list[R]:
    """``[worker(item) for item in items]``, optionally across processes.

    ``jobs <= 1`` (or fewer than two items) runs serially in-process —
    no pool, no pickling, identical semantics.  Otherwise a
    ``multiprocessing.Pool`` of ``min(jobs, len(items))`` workers maps
    the items; results always come back in input order, so output is
    independent of scheduling.  ``worker`` must be picklable (a
    module-level function or a :func:`functools.partial` of one).
    """
    items = list(items)
    if jobs <= 1 or len(items) < 2:
        return [worker(item) for item in items]
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(worker, items)


def solve_cell(cell: SweepCell, algorithm: str = "greedy") -> dict:
    """Worker: build the cell's connected UDG, solve it, count everything.

    Runs with instrumentation captured locally (safe under
    multiprocessing — see the module docstring) and returns a flat,
    picklable summary::

        {"n": ..., "side": ..., "seed": ..., "algorithm": ...,
         "cds_size": ..., "dominators": ..., "connectors": ...,
         "counters": {...}}

    ``algorithm`` is a key of the CLI solver registry (``"greedy"``,
    ``"waf"``, a baseline name, ...).
    """
    from ..cli import _solver_registry
    from ..graphs.generators import random_connected_udg
    from ..obs import OBS

    solver = _solver_registry()[algorithm]
    _, graph = random_connected_udg(cell.n, cell.side, seed=cell.seed)
    with OBS.capture() as reg:
        result = solver(graph)
        counters = reg.counters()
    return {
        "n": cell.n,
        "side": cell.side,
        "seed": cell.seed,
        "algorithm": result.algorithm,
        "cds_size": result.size,
        "dominators": len(result.dominators),
        "connectors": len(result.connectors),
        "counters": counters,
    }


def solve_cells(
    cells: Sequence[SweepCell], algorithm: str = "greedy", jobs: int = 1
) -> list[dict]:
    """Map :func:`solve_cell` over a grid, one result dict per cell."""
    return parallel_map(partial(solve_cell, algorithm=algorithm), cells, jobs)


def _run_experiment_worker(experiment_id: str) -> ExperimentResult:
    """Module-level worker so experiment runs pickle across processes."""
    return get_experiment(experiment_id)()


def _run_experiment_worker_obs(
    task: tuple[str, int, bool, bool],
) -> tuple[ExperimentResult, dict, list | None]:
    """Instrumented worker: run one experiment under a captured registry.

    Returns ``(result, registry_state, events)`` — all picklable, so
    the parent can merge every worker's counters/timers with
    :meth:`Registry.merge_state` and interleave the per-worker event
    logs with :func:`repro.obs.events.merge_events`.  The worker index
    is the experiment's position in the input list, which keeps run ids
    and the merged event order deterministic.
    """
    experiment_id, worker_index, collect_events, mem_trace = task
    from contextlib import nullcontext

    from ..obs import OBS

    fn = get_experiment(experiment_id)
    with OBS.capture() as reg:
        log = None
        if collect_events:
            from ..obs.events import EventLog

            log = EventLog(reg, run_id=f"worker-{worker_index}", worker=worker_index)
            reg.add_hook(log)
        if mem_trace:
            from ..obs.profile import mem_tracing

            mem = mem_tracing(reg)
        else:
            mem = nullcontext()
        try:
            with mem, reg.time(f"experiment.{experiment_id}"):
                result = fn()
        finally:
            if log is not None:
                reg.remove_hook(log)
        state = reg.export_state()
    return result, state, (log.events if log is not None else None)


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    *,
    collect_obs: bool = False,
    collect_events: bool = False,
    mem_trace: bool = False,
) -> list:
    """Run registered experiments, possibly across processes.

    Ids are resolved (and canonicalised) up front so an unknown id
    raises ``KeyError`` before any process is forked; results come back
    in the order the ids were given.

    With ``collect_obs=False`` (the default) the return value is a
    plain ``list[ExperimentResult]`` and instrumentation stays in the
    child processes.  With ``collect_obs=True`` each element is a
    ``(result, registry_state, events)`` triple: the per-worker
    :data:`repro.obs.OBS` registry is captured around the run and
    exported, which is how ``--trace``/``--stats-out`` work under
    ``--jobs N`` — the CLI merges the states into its own registry
    (counters sum; timers merge total/count/max).  ``collect_events``
    additionally records each worker's ``repro.obs/event/v1`` log;
    per-span *nesting* across workers is reconstructed from the merged
    event log, not from the merged timers (a merged timer has no
    parent/child structure).
    """
    canonical = [get_experiment(eid).experiment_id for eid in experiment_ids]
    if not collect_obs:
        return parallel_map(_run_experiment_worker, canonical, jobs)
    tasks = [
        (eid, index, collect_events, mem_trace)
        for index, eid in enumerate(canonical)
    ]
    return parallel_map(_run_experiment_worker_obs, tasks, jobs)
