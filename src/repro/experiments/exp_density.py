"""Experiment DENS — realized ratios across network density.

Where do the two-phased algorithms lose the most against the optimum?
This sweep fixes n, varies the mean degree, and measures realized
ratios with exact optima.

Measured shape (perhaps counter-intuitive): the *absolute* backbone is
largest in sparse networks, but the realized *ratio* peaks at moderate-
to-high density — there ``gamma_c`` collapses to a handful of nodes
while the MIS + connectors overhead cannot shrink below a few nodes per
dominator.  This mirrors the adversarial search (experiment ADV), whose
worst instances all have small ``gamma_c``.

Pass criterion: all bounds hold at every density, the greedy-connector
ratio never exceeds WAF's by more than noise, and every mean ratio
stays below 2.5 (far under the 6 7/18 / 7 1/3 ceilings).
"""

from __future__ import annotations

import math

from ..cds.greedy_connector import greedy_connector_cds
from ..cds.waf import waf_cds
from ..cds.bounds import greedy_bound_this_paper, waf_bound_this_paper
from ..analysis.ratios import estimate_gamma_c
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances

__all__ = ["run"]


@experiment("DENS", "Realized ratio vs network density")
def run(
    n: int = 20,
    seeds: int = 6,
    mean_degrees: tuple[float, ...] = (4.0, 6.0, 9.0, 13.0),
) -> ExperimentResult:
    table = Table(
        title=f"ratio vs density (n = {n}, exact gamma_c, {seeds} seeds)",
        headers=[
            "mean degree",
            "gamma_c (mean)",
            "waf ratio (mean)",
            "greedy ratio (mean)",
            "violations",
        ],
    )
    all_ok = True
    means: list[tuple[float, float]] = []
    for degree in mean_degrees:
        side = math.sqrt(math.pi * n / degree)
        waf_ratios: list[float] = []
        greedy_ratios: list[float] = []
        gammas: list[int] = []
        violations = 0
        for _, graph in connected_udg_instances(n, side, range(seeds)):
            gamma = estimate_gamma_c(graph)
            assert gamma.exact
            gammas.append(gamma.value)
            waf = waf_cds(graph).validate(graph)
            greedy = greedy_connector_cds(graph).validate(graph)
            waf_ratios.append(waf.size / gamma.value)
            greedy_ratios.append(greedy.size / gamma.value)
            if waf.size > float(waf_bound_this_paper(gamma.value)):
                violations += 1
            if greedy.size > float(greedy_bound_this_paper(gamma.value)):
                violations += 1
        all_ok = all_ok and violations == 0
        mean_waf = summarize(waf_ratios).mean
        mean_greedy = summarize(greedy_ratios).mean
        means.append((mean_waf, mean_greedy))
        table.add_row(
            f"{degree:.1f}",
            f"{summarize(gammas).mean:.1f}",
            f"{summarize(waf_ratios).mean:.3f}",
            f"{mean_greedy:.3f}",
            violations,
        )
    # Shape checks: greedy <= waf per density (within noise), and all
    # realized means far below the proven ceilings.
    all_ok = all_ok and all(g <= w + 0.05 for w, g in means)
    all_ok = all_ok and all(max(w, g) < 2.5 for w, g in means)
    return ExperimentResult(
        experiment_id="DENS",
        title="Ratio vs density",
        tables=[table],
        passed=all_ok,
        notes=(
            "The ratio peaks where gamma_c is small (moderate/high "
            "density): the optimum collapses faster than the two-phased "
            "overhead.  Consistent with the adversarial search (ADV), "
            "whose worst instances all have gamma_c ~ 3."
        ),
    )
