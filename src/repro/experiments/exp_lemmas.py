"""Experiments L1 / L2 / W — the packing lemmas behind Theorem 3.

* Lemma 1: ``|I(o) Δ I(u)| <= 7`` whenever ``|ou| <= 1`` — probed with
  randomized maximal packings around random pairs, plus the Figure 1
  2-star construction showing the symmetric difference can reach 7.
* Lemma 2: for ``{u1,u2,u3} ⊂ D_o`` with a private independent point of
  ``o``, ``|(∪ I(u_j)) \\ I(o)| <= 11``.
* Wegner's theorem: at most 21 points with pairwise distance >= 1 in a
  radius-2 disk — probed with grid-search packings (the hexagonal
  lattice gives the classic lower-bound witness of 19).

Pass criterion: zero violations across all probes.
"""

from __future__ import annotations

import random

from ..geometry.point import Point
from ..geometry.packing import (
    WEGNER_RADIUS2_CAPACITY,
    disk_candidates,
    greedy_independent_subset,
)
from ..geometry.hexagonal import hexagonal_points_in_disk
from ..geometry.constructions import figure1_two_star
from ..analysis.independence import lemma2_quantity, symmetric_difference_count
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


def _random_packing_near(points: list[Point], rng: random.Random, step: float) -> list[Point]:
    """A randomized maximal independent packing covering all D_p."""
    candidates: list[Point] = []
    for p in points:
        candidates.extend(disk_candidates(p, 1.0, step))
    rng.shuffle(candidates)
    # A constant key keeps the (shuffled) input order: stable sort.
    return greedy_independent_subset(candidates, key=lambda q: 0.0)


@experiment("LEM", "Lemmas 1-2 and the Wegner bound")
def run(trials: int = 12, step: float = 0.3, seed: int = 7) -> ExperimentResult:
    rng = random.Random(seed)
    all_ok = True

    lemma1 = Table(
        title="Lemma 1: |I(o) XOR I(u)| with |ou| <= 1",
        headers=["probe", "max observed", "bound", "ok"],
    )
    max_sym = 0
    for _ in range(trials):
        o = Point(0.0, 0.0)
        u = Point(rng.uniform(0.05, 1.0), 0.0)
        packing = _random_packing_near([o, u], rng, step)
        max_sym = max(max_sym, symmetric_difference_count(packing, o, u))
    ok = max_sym <= 7
    all_ok = all_ok and ok
    lemma1.add_row(f"{trials} random packings", max_sym, 7, ok)
    # The Figure-1 2-star witness: I(o) = 4 interior, I(u1) = 4 cap points,
    # disjoint, so the symmetric difference hits at least 7 (Lemma 1 is
    # tight: 8 would contradict it, 7 is achievable).
    (o, u1), witness = figure1_two_star()
    sym = symmetric_difference_count(witness, o, u1)
    ok = sym <= 7
    all_ok = all_ok and ok
    lemma1.add_row("Figure 1 witness", sym, 7, ok)

    lemma2 = Table(
        title="Lemma 2: |(U I(u_j)) \\ I(o)| with premise",
        headers=["probe", "max (premise held)", "bound", "ok"],
    )
    max_l2 = 0
    applicable = 0
    for _ in range(trials):
        o = Point(0.0, 0.0)
        others = [
            Point.polar(rng.uniform(0.3, 1.0), rng.uniform(0.0, 6.28))
            for _ in range(3)
        ]
        packing = _random_packing_near([o] + others, rng, step)
        count, premise = lemma2_quantity(packing, o, others)
        if premise:
            applicable += 1
            max_l2 = max(max_l2, count)
    ok = max_l2 <= 11
    all_ok = all_ok and ok
    lemma2.add_row(f"{applicable}/{trials} probes with premise", max_l2, 11, ok)

    wegner = Table(
        title="Wegner: points at pairwise distance >= 1 in a radius-2 disk",
        headers=["method", "count", "bound", "ok"],
    )
    hexagonal = hexagonal_points_in_disk(Point(0.0, 0.0), 2.0, 1.0)
    ok = len(hexagonal) <= WEGNER_RADIUS2_CAPACITY
    all_ok = all_ok and ok
    wegner.add_row("hexagonal lattice witness", len(hexagonal), 21, ok)
    best_grid = 0
    for _ in range(trials):
        candidates = disk_candidates(Point(0.0, 0.0), 2.0, step * 0.7)
        rng.shuffle(candidates)
        # Wegner uses distance >= 1 (not > 1): shrink by an epsilon so the
        # strict-independence machinery applies.
        found = greedy_independent_subset(
            [p * 0.999 for p in candidates], key=lambda q: 0.0
        )
        best_grid = max(best_grid, len(found))
    ok = best_grid <= WEGNER_RADIUS2_CAPACITY
    all_ok = all_ok and ok
    wegner.add_row(f"grid search ({trials} shuffles)", best_grid, 21, ok)

    return ExperimentResult(
        experiment_id="LEM",
        title="Packing lemmas",
        tables=[lemma1, lemma2, wegner],
        passed=all_ok,
        notes=(
            "Figures 3-9 of the paper are proof illustrations for these "
            "lemmas; the checks here are their numerical counterparts."
        ),
    )
