"""Experiment T3 — Theorem 3 star-neighborhood packing.

For each star size ``n``, three numbers are juxtaposed:

* the paper's bound ``phi_n``;
* the best packing our constructions achieve (tight for ``n <= 3``:
  the Figure 1 instances; the pentagon for ``n = 1``);
* the best packing an empirical search finds over random stars.

Pass criterion: no packing ever exceeds ``phi_n``, and the tight
constructions achieve ``phi_n`` exactly for ``n = 1, 2, 3``.
"""

from __future__ import annotations

from ..geometry.constructions import (
    figure1_three_star,
    figure1_two_star,
    one_star_packing,
)
from ..geometry.packing import is_independent, phi
from ..analysis.independence import empirical_max_packing, packing_count
from .harness import ExperimentResult, Table, experiment
from .instances import random_star

__all__ = ["run"]


@experiment("T3", "Theorem 3: |I(S)| <= phi_n for n-stars")
def run(max_n: int = 6, seeds_per_n: int = 5, grid_step: float = 0.2) -> ExperimentResult:
    table = Table(
        title="star-neighborhood packing vs phi_n",
        headers=["n", "phi_n", "tight construction", "search (random stars)", "bound holds"],
    )
    tight = {
        1: one_star_packing,
        2: figure1_two_star,
        3: figure1_three_star,
    }
    all_ok = True
    for n in range(1, max_n + 1):
        construction = "-"
        if n in tight:
            star, witness = tight[n]()
            assert is_independent(witness)
            achieved = packing_count(witness, star)
            construction = str(achieved)
            if achieved != phi(n):
                all_ok = False
        best_search = 0
        for seed in range(seeds_per_n):
            star = random_star(n, seed)
            found = empirical_max_packing(star, step=grid_step)
            best_search = max(best_search, packing_count(found, star))
        holds = best_search <= phi(n) and (construction == "-" or int(construction) <= phi(n))
        all_ok = all_ok and holds
        table.add_row(n, phi(n), construction, best_search, holds)
    return ExperimentResult(
        experiment_id="T3",
        title="Theorem 3 star packing",
        tables=[table],
        passed=all_ok,
        notes=(
            "phi_n = 3n+2 (n<=2), min(3n+3, 21) (n>=3). Constructions from "
            "Figure 1 meet the bound exactly for n <= 3 (tightness); grid "
            "search on random stars stays below it."
        ),
    )
