"""Experiment harness: registry, tables, and the pass/fail contract.

Each experiment module registers a function reproducing one paper
artifact (a theorem, figure, or implicit comparison).  An experiment
returns an :class:`ExperimentResult` holding one or more plain-text
tables — the "same rows the paper reports" — plus a ``passed`` flag
meaning *the paper's claimed shape held* (bounds respected, tightness
achieved, orderings as claimed).

Run everything from the command line::

    python -m repro --list
    python -m repro T8 CMP
    python -m repro --all
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "Table",
    "ExperimentResult",
    "experiment",
    "get_experiment",
    "all_experiments",
    "run_recorded",
]


@dataclass
class Table:
    """A plain-text table with an optional CSV escape hatch."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Fixed-width rendering."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        out.write("\n")
        out.write("  ".join("-" * w for w in widths))
        out.write("\n")
        for row in cells:
            out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            out.write("\n")
        return out.getvalue()

    def to_csv(self) -> str:
        lines = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(_fmt(c) for c in row))
        return "\n".join(lines) + "\n"

    # -- serialisation (checkpoint ledger) ----------------------------

    def to_json_obj(self) -> dict:
        """A JSON-ready dump whose round-trip renders identically.

        Non-primitive cells are stringified — exactly what
        :meth:`render` and :meth:`to_csv` would do to them anyway, so
        a table restored from a sweep checkpoint prints byte-for-byte
        the same (floats are kept as floats and re-formatted on
        render).
        """
        return {
            "title": self.title,
            "headers": [_json_cell(h) for h in self.headers],
            "rows": [[_json_cell(c) for c in row] for row in self.rows],
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "Table":
        table = cls(title=obj["title"], headers=list(obj["headers"]))
        table.rows = [list(row) for row in obj["rows"]]
        return table


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _json_cell(cell: object) -> object:
    """JSON-safe cell: primitives pass through, anything else as str.

    ``bool`` is checked before ``int`` only for clarity — both are
    JSON-native; the ``str()`` fallback matches :func:`_fmt`'s
    rendering of exotic cells, so serialisation never changes output.
    """
    if cell is None or isinstance(cell, (bool, int, float, str)):
        return cell
    return str(cell)


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    title: str
    tables: list[Table]
    passed: bool
    notes: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = [f"[{self.experiment_id}] {self.title} — {status}"]
        if self.notes:
            parts.append(self.notes)
        parts.extend(t.render() for t in self.tables)
        return "\n\n".join(parts)

    # -- serialisation (checkpoint ledger) ----------------------------

    def to_json_obj(self) -> dict:
        """JSON-ready form for the sweep checkpoint ledger; the
        round-trip preserves :meth:`render` output exactly (see
        :meth:`Table.to_json_obj`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "passed": self.passed,
            "notes": self.notes,
            "tables": [t.to_json_obj() for t in self.tables],
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "ExperimentResult":
        return cls(
            experiment_id=obj["experiment_id"],
            title=obj["title"],
            tables=[Table.from_json_obj(t) for t in obj["tables"]],
            passed=obj["passed"],
            notes=obj.get("notes", ""),
        )


_REGISTRY: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment under its paper-artifact id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = (title, fn)
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        fn.title = title  # type: ignore[attr-defined]
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment by id (case-insensitive)."""
    _load_all_modules()
    for key, (_, fn) in _REGISTRY.items():
        if key.lower() == experiment_id.lower():
            return fn
    raise KeyError(
        f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
    )


def all_experiments() -> dict[str, tuple[str, Callable[..., ExperimentResult]]]:
    """All registered experiments keyed by id."""
    _load_all_modules()
    return dict(_REGISTRY)


def run_recorded(experiment_id: str, **kwargs):
    """Run one experiment under instrumentation and also return its
    :class:`~repro.obs.RunRecord`.

    The default registry is reset, enabled for the duration of the run
    (restored afterwards), and snapshotted into a record whose
    ``algorithm`` is ``"experiment:<ID>"`` and whose ``results`` carry
    the pass/fail outcome and table shapes.  ``kwargs`` are forwarded to
    the experiment function and echoed into ``instance``.
    """
    from ..obs import OBS, RunRecord

    fn = get_experiment(experiment_id)
    experiment_id = fn.experiment_id  # canonical casing
    with OBS.capture() as reg:
        with reg.time(f"experiment.{experiment_id}"):
            result = fn(**kwargs)
        record = RunRecord.from_registry(
            reg,
            algorithm=f"experiment:{experiment_id}",
            instance={"experiment": experiment_id, **kwargs},
            results={
                "passed": result.passed,
                "tables": len(result.tables),
                "rows": sum(len(t.rows) for t in result.tables),
            },
            meta={"title": result.title},
        )
    return result, record


def _load_all_modules() -> None:
    """Import every experiment module so registrations run."""
    from . import (  # noqa: F401
        exp_adversarial,
        exp_alpha_gamma,
        exp_appendix,
        exp_broadcast,
        exp_compare,
        exp_density,
        exp_funke_conjecture,
        exp_lemmas,
        exp_maintenance,
        exp_messages,
        exp_neighborhood_packing,
        exp_ratio_greedy,
        exp_ratio_waf,
        exp_robustness,
        exp_star_packing,
        exp_stats,
        exp_tightness,
        exp_variants,
    )
