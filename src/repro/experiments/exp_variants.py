"""Experiment FT — fault-tolerant variants vs exact optima.

The ``(1, m)``- and ``(2, m)``-CDS solvers of :mod:`repro.cds.mfold`
have no paper theorem of their own here, so the validation is
*empirical-exact*: on small instances we compute the true minimum
``(1, m)``-CDS by branch-and-bound (:func:`repro.cds.exact.
minimum_mfold_cds`) and pin the greedy's realized ratio against it, per
density and per ``m``.

Two tables:

* **ratio grid** — for each ``(n, density, m)`` cell: greedy
  ``(1, m)``-CDS size vs the exact optimum, mean/max realized ratio,
  and whether the pinned per-density ceiling (:data:`RATIO_CEILINGS`)
  held.  (Zhang et al., arXiv:1510.05886, prove ratios in the 6–8
  range for UDG-like graphs; the realized values sit far below — the
  ceilings here are regression tripwires, not theorems.  Dense small
  instances get a looser ceiling: their optimum is often a single
  near-universal node, so one extra greedy pick moves the quotient a
  lot.)
* **survivability** — on the 2-connected instances of each size,
  :func:`repro.cds.mfold.mfold_2conn_cds` with ``m=2`` must pass
  :func:`repro.graphs.properties.survives_node_removal`: deleting any
  single backbone node leaves a connected dominating set.  The table
  also reports the augmentation cost (cut vertices repaired, ear nodes
  added) the hardening paid.

Pass criterion: every ratio cell under the ceiling, every 2-connected
instance survivable, zero validator failures.
"""

from __future__ import annotations

from ..analysis.statistics import summarize
from ..cds.exact import minimum_mfold_cds
from ..cds.mfold import mfold_2conn_cds, mfold_greedy_cds
from ..graphs.biconnectivity import is_k_connected
from ..graphs.properties import is_m_fold_cds, survives_node_removal
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side

__all__ = ["run", "RATIO_CEILINGS"]

#: Pinned empirical ceilings for greedy-size / exact-optimum per
#: density.  Observed maxima: 4.0 on the dense grid (optimum 1 vs
#: greedy 4 on a near-star instance), 2.5 on the default grid; both
#: far under the 6 7/18-style theorem bounds.  A breach means the
#: greedy (or the exact solver) regressed.
RATIO_CEILINGS = {"dense": 4.5, "default": 3.0}

#: Density settings: multipliers on the default (mean degree ~5.5) side.
#: Smaller side = denser deployment.
DENSITIES = (("dense", 0.8), ("default", 1.0))


@experiment("FT", "Fault-tolerant (1,m)/(2,m)-CDS vs exact optima")
def run(
    sizes: tuple[int, ...] = (10, 14, 18),
    seeds: int = 6,
    ms: tuple[int, ...] = (1, 2),
) -> ExperimentResult:
    ratio_table = Table(
        title="mfold-greedy vs exact minimum (1,m)-CDS",
        headers=[
            "n", "density", "m", "instances",
            "greedy mean", "opt mean", "ratio mean", "ratio max", "ok",
        ],
    )
    all_ok = True
    for n in sizes:
        for label, factor in DENSITIES:
            side = default_side(n) * factor
            for m in ms:
                ratios: list[float] = []
                greedy_sizes: list[float] = []
                opt_sizes: list[float] = []
                cell_ok = True
                for _, graph in connected_udg_instances(n, side, range(seeds)):
                    result = mfold_greedy_cds(graph, m=m).validate(graph)
                    if not is_m_fold_cds(graph, result.nodes, m):
                        cell_ok = False
                        continue
                    optimum = minimum_mfold_cds(
                        graph, m, upper_bound=result.size
                    )
                    greedy_sizes.append(result.size)
                    opt_sizes.append(len(optimum))
                    ratios.append(result.size / len(optimum))
                cell_ok = (
                    cell_ok
                    and bool(ratios)
                    and max(ratios) <= RATIO_CEILINGS[label]
                )
                all_ok = all_ok and cell_ok
                ratio_table.add_row(
                    n, label, m, len(ratios),
                    f"{summarize(greedy_sizes).mean:.2f}",
                    f"{summarize(opt_sizes).mean:.2f}",
                    f"{summarize(ratios).mean:.3f}",
                    f"{summarize(ratios).maximum:.3f}",
                    cell_ok,
                )

    surv_table = Table(
        title="(2,2)-CDS survivability and augmentation cost",
        headers=[
            "n", "2-conn instances", "backbone mean",
            "cuts repaired", "ear nodes", "survived all",
        ],
    )
    for n in sizes:
        side = default_side(n) * 0.8  # denser: 2-connectivity is likelier
        sizes_seen: list[float] = []
        repaired = ears = 0
        survived = True
        count = 0
        for _, graph in connected_udg_instances(n, side, range(2 * seeds)):
            if not is_k_connected(graph, 2):
                continue
            count += 1
            result = mfold_2conn_cds(graph, m=2).validate(graph)
            sizes_seen.append(result.size)
            repaired += result.meta["cut_vertices_repaired"]
            ears += result.meta["augmentation_cost"]
            survived = survived and survives_node_removal(
                graph, result.nodes, m=1
            )
        all_ok = all_ok and survived and count > 0
        surv_table.add_row(
            n, count,
            f"{summarize(sizes_seen).mean:.2f}" if sizes_seen else "-",
            repaired, ears, survived,
        )

    return ExperimentResult(
        experiment_id="FT",
        title="Fault-tolerant variants vs exact optima",
        tables=[ratio_table, surv_table],
        passed=all_ok,
        notes=(
            "Ratios are against the exact minimum (1,m)-CDS from the "
            "branch-and-bound solver; the survivability column checks the "
            "operational claim directly — every single-node deletion from "
            "the (2,2) backbone leaves a connected dominating set."
        ),
    )
