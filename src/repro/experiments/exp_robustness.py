"""Experiment QUDG — robustness beyond the ideal unit-disk model.

The paper's guarantees assume a perfect UDG; real radios are not disks.
This experiment runs both of the paper's algorithms on quasi-UDGs
(edges certain below an inner radius ``r``, absent above 1, pseudo-
random in between) across a sweep of ``r`` and reports:

* correctness — both algorithms still return valid CDSs (the phase-2
  rules rely only on properties that survive general graphs when the
  MIS comes from a BFS first-fit order);
* size inflation relative to the ideal-UDG backbone.

Pass criterion: 100% valid outputs at every inner radius; sizes may
grow (the ratio *guarantee* does not transfer, and this shows by how
much in practice).
"""

from __future__ import annotations

from ..graphs.generators import largest_component_udg, uniform_points
from ..graphs.traversal import is_connected
from ..graphs.udg import quasi_unit_disk_graph
from ..cds.greedy_connector import greedy_connector_cds
from ..cds.waf import waf_cds
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import default_side

__all__ = ["run"]


@experiment("QUDG", "Quasi-UDG robustness sweep")
def run(
    n: int = 40,
    seeds: int = 5,
    inner_radii: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6),
) -> ExperimentResult:
    table = Table(
        title=f"quasi-UDG sweep (n = {n}, {seeds} seeds per radius)",
        headers=[
            "inner radius",
            "instances",
            "valid waf",
            "valid greedy",
            "mean |waf|",
            "mean |greedy|",
            "vs ideal UDG",
        ],
    )
    all_ok = True
    for inner in inner_radii:
        waf_sizes: list[int] = []
        greedy_sizes: list[int] = []
        ideal_sizes: list[int] = []
        valid_waf = valid_greedy = instances = 0
        for seed in range(seeds):
            pts = uniform_points(n, default_side(n), seed=seed)
            graph = quasi_unit_disk_graph(pts, inner_radius=inner, seed=seed)
            if not is_connected(graph):
                comp_nodes = None
                # Keep the giant component of the quasi graph.
                from ..graphs.traversal import connected_components

                comps = connected_components(graph)
                biggest = max(comps, key=len)
                graph = graph.subgraph(biggest)
                pts = [p for p in pts if p in set(biggest)]
            if len(graph) < 5:
                continue
            instances += 1
            waf = waf_cds(graph)
            greedy = greedy_connector_cds(graph)
            if waf.is_valid(graph):
                valid_waf += 1
            if greedy.is_valid(graph):
                valid_greedy += 1
            waf_sizes.append(waf.size)
            greedy_sizes.append(greedy.size)
            ideal_pts, ideal_graph = largest_component_udg(pts)
            if len(ideal_graph) >= 5:
                ideal_sizes.append(greedy_connector_cds(ideal_graph).size)
        ok = valid_waf == instances and valid_greedy == instances and instances > 0
        all_ok = all_ok and ok
        inflation = (
            summarize(greedy_sizes).mean / summarize(ideal_sizes).mean
            if ideal_sizes
            else float("nan")
        )
        table.add_row(
            f"{inner:.1f}",
            instances,
            f"{valid_waf}/{instances}",
            f"{valid_greedy}/{instances}",
            f"{summarize(waf_sizes).mean:.1f}",
            f"{summarize(greedy_sizes).mean:.1f}",
            f"{inflation:.2f}x",
        )
    return ExperimentResult(
        experiment_id="QUDG",
        title="Quasi-UDG robustness",
        tables=[table],
        passed=all_ok,
        notes=(
            "Correctness is model-free: the BFS first-fit MIS keeps the "
            "properties both phase-2 rules rely on, so validity stays at "
            "100% while backbone sizes inflate as links get flakier."
        ),
    )
