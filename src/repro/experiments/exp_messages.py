"""Experiment DIST — distributed complexity of the full pipelines.

[10] is analyzed at ``O(n)`` messages for the MIS phase and ``O(n)``
time; [1] trades CDS size for message-optimality.  This experiment runs
the complete distributed pipelines (leader election → BFS tree → MIS
election → connectors) over growing deployments and reports
transmissions and rounds per phase, exhibiting:

* MIS election at exactly ``2n`` transmissions (rank + color per node);
* BFS tree at exactly ``n`` transmissions (one explore per node);
* leader election dominating the message bill (the known ``O(nD)``);
* the greedy connector phase paying per-iteration flooding — the price
  of the smaller CDS.

Pass criterion: the structural counts hold (MIS = 2n, tree = n) and
both pipelines return valid CDSs.
"""

from __future__ import annotations

from ..graphs.traversal import is_connected
from ..distributed.cds_protocol import distributed_greedy_cds, distributed_waf_cds
from ..distributed.leader import elect_leader
from ..distributed.bfs_tree import build_bfs_tree
from ..distributed.mis_protocol import elect_mis
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side, int_labeled

__all__ = ["run"]


@experiment("DIST", "Distributed message/round complexity")
def run(sizes: tuple[int, ...] = (10, 20, 30, 40), seed: int = 0) -> ExperimentResult:
    phase_table = Table(
        title="per-phase transmissions (single seed per size)",
        headers=["n", "leader", "bfs-tree", "mis (=2n)", "waf total", "greedy total"],
    )
    time_table = Table(
        title="rounds and resulting sizes",
        headers=["n", "waf rounds", "greedy rounds", "|waf|", "|greedy|"],
    )
    all_ok = True
    for n in sizes:
        side = default_side(n)
        _, graph_points = next(connected_udg_instances(n, side, range(seed, seed + 1)))
        graph = int_labeled(graph_points)
        assert is_connected(graph)
        leader, m_leader = elect_leader(graph)
        tree, m_tree = build_bfs_tree(graph, leader)
        _, m_mis = elect_mis(graph, tree)
        waf_result, m_waf = distributed_waf_cds(graph)
        greedy_result, m_greedy = distributed_greedy_cds(graph)
        ok = (
            m_mis.transmissions == 2 * n
            and m_tree.transmissions == n
            and waf_result.is_valid(graph)
            and greedy_result.is_valid(graph)
        )
        all_ok = all_ok and ok
        phase_table.add_row(
            n,
            m_leader.transmissions,
            m_tree.transmissions,
            m_mis.transmissions,
            m_waf.transmissions,
            m_greedy.transmissions,
        )
        time_table.add_row(
            n, m_waf.rounds, m_greedy.rounds, waf_result.size, greedy_result.size
        )
    return ExperimentResult(
        experiment_id="DIST",
        title="Distributed complexity",
        tables=[phase_table, time_table],
        passed=all_ok,
        notes=(
            "MIS election is exactly 2n transmissions and the BFS tree "
            "exactly n, matching the O(n) phase analysis of [10]; the "
            "greedy connector phase pays O(n) per selected connector for "
            "labeling/convergecast/announcement."
        ),
    )
