"""Experiment T6 — Theorem 6 neighborhood packing for connected sets.

Two instance families probe ``|I(V)| <= 11n/3 + 1``:

* the paper's own worst-case family — unit-spaced chains, where the
  Figure 2 construction achieves ``3(n+1)``;
* random connected planar sets with grid-search packings.

Pass criterion: nothing exceeds ``11n/3 + 1``; chains achieve exactly
``3n + 3``.  The gap between ``3n + 3`` and ``11n/3 + 1`` is the
paper's open conjecture (Section V).
"""

from __future__ import annotations

from fractions import Fraction

from ..geometry.constructions import figure2_linear
from ..geometry.packing import is_independent
from ..cds.bounds import neighborhood_bound
from ..analysis.independence import empirical_max_packing, packing_count
from .harness import ExperimentResult, Table, experiment
from .instances import connected_planar_sets

__all__ = ["run"]


@experiment("T6", "Theorem 6: |I(V)| <= 11n/3 + 1 for connected sets")
def run(
    chain_sizes: tuple[int, ...] = (3, 4, 5, 6, 8, 10),
    random_n: int = 8,
    random_seeds: int = 4,
    grid_step: float = 0.22,
) -> ExperimentResult:
    chain_table = Table(
        title="unit chains (Figure 2 family)",
        headers=["n", "bound 11n/3+1", "construction 3(n+1)", "conjectured max", "holds"],
    )
    all_ok = True
    for n in chain_sizes:
        centers, witness = figure2_linear(n)
        assert is_independent(witness)
        achieved = packing_count(witness, centers)
        bound = neighborhood_bound(n)
        holds = achieved <= bound and achieved == 3 * (n + 1)
        all_ok = all_ok and holds
        chain_table.add_row(n, f"{float(bound):.2f}", achieved, 3 * (n + 1), holds)

    random_table = Table(
        title="random connected planar sets (grid-search packings)",
        headers=["n", "bound 11n/3+1", "best found", "holds"],
    )
    side = max(2.0, random_n * 0.45)
    best_overall = 0
    for pts in connected_planar_sets(random_n, side, range(random_seeds)):
        found = empirical_max_packing(pts, step=grid_step)
        best_overall = max(best_overall, packing_count(found, pts))
    bound = neighborhood_bound(random_n)
    holds = Fraction(best_overall) <= bound
    all_ok = all_ok and holds
    random_table.add_row(random_n, f"{float(bound):.2f}", best_overall, holds)

    return ExperimentResult(
        experiment_id="T6",
        title="Theorem 6 neighborhood packing",
        tables=[chain_table, random_table],
        passed=all_ok,
        notes=(
            "Chains realize 3(n+1) exactly — the paper's conjectured true "
            "maximum; the proven bound 11n/3 + 1 leaves a ~2n/3 gap."
        ),
    )
