"""Experiment ADV — adversarial ratio search.

The bounds of Theorems 8 and 10 are worst-case; random instances sit
around 1.5.  This experiment hill-climbs node positions to find *bad*
instances for each algorithm and reports the best realized ratio —
an empirical floor on the true worst case, to be read against the
proven ceilings (7 1/3 and 6 7/18) and the conjectured 6 / 5.5.

Pass criterion: even adversarial instances never violate the proven
bounds (they cannot — the theorems are proven — so a violation flags
an implementation bug), and the search finds ratios strictly above the
random-instance average, demonstrating it actually searches.
"""

from __future__ import annotations

from ..analysis.adversarial import adversarial_ratio_search
from ..cds.bounds import greedy_bound_this_paper, waf_bound_this_paper
from ..cds.greedy_connector import greedy_connector_cds
from ..cds.waf import waf_cds
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


@experiment("ADV", "Adversarial search for high-ratio instances")
def run(n: int = 12, iterations: int = 120, seed: int = 3) -> ExperimentResult:
    table = Table(
        title=f"hill-climbed worst instances (n = {n}, exact gamma_c)",
        headers=[
            "algorithm",
            "best ratio found",
            "|CDS|",
            "gamma_c",
            "proven bound",
            "conjectured",
            "within bound",
        ],
    )
    all_ok = True
    for algorithm, bound_fn, conjectured in (
        (waf_cds, waf_bound_this_paper, 6.0),
        (greedy_connector_cds, greedy_bound_this_paper, 5.5),
    ):
        found = adversarial_ratio_search(n, algorithm, iterations=iterations, seed=seed)
        bound = float(bound_fn(1))
        ok = found.best_ratio <= bound + 1e-9 and found.best_ratio > 1.0
        all_ok = all_ok and ok
        table.add_row(
            found.algorithm,
            f"{found.best_ratio:.3f}",
            found.cds_size,
            found.gamma_c,
            f"{bound:.3f}",
            f"{conjectured:.1f}",
            ok,
        )
    return ExperimentResult(
        experiment_id="ADV",
        title="Adversarial ratio search",
        tables=[table],
        passed=all_ok,
        notes=(
            "Adversarial geometry roughly doubles the random-instance "
            "ratio but stays far below the proven ceilings — consistent "
            "with the paper's view that the true worst case lies near the "
            "conjectured 6 / 5.5, reachable only by the linear Figure 2 "
            "family at scale."
        ),
    )
