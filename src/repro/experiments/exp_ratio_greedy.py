"""Experiment T10 — Theorem 10: the new algorithm stays below 6 7/18.

Beyond the realized-ratio sweep, this experiment re-derives the proof's
machinery on every run:

* Lemma 9 along the greedy trace — each selected connector's gain meets
  ``max(1, ceil(q / gamma_c) - 1)``;
* the C1/C2/C3 prefix decomposition — ``|C1| <= 1``,
  ``|C2| <= 13 gc/18 − 1``, ``|C3| <= 2 gc − 1``.

Pass criterion: the size bound, Lemma 9, and all three prefix caps hold
on every instance.
"""

from __future__ import annotations

from ..cds.greedy_connector import greedy_connector_cds
from ..cds.bounds import greedy_bound_this_paper
from ..analysis.bounds_check import check_lemma9_trace, prefix_decomposition
from ..analysis.ratios import estimate_gamma_c
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side

__all__ = ["run"]


@experiment("T10", "Theorem 10: greedy-connector ratio <= 6 7/18")
def run(
    sizes: tuple[int, ...] = (12, 16, 20, 25),
    seeds: int = 8,
) -> ExperimentResult:
    ratio_table = Table(
        title="greedy-connector realized ratios (exact gamma_c)",
        headers=["n", "instances", "ratio mean", "ratio max", "bound 6 7/18", "violations"],
    )
    proof_table = Table(
        title="proof machinery checks (aggregated over instances)",
        headers=["n", "lemma9 checks", "lemma9 ok", "C1<=1", "C2 cap ok", "C3 cap ok"],
    )
    all_ok = True
    for n in sizes:
        side = default_side(n)
        ratios: list[float] = []
        violations = 0
        lemma9_total = lemma9_ok = 0
        c1_ok = c2_ok = c3_ok = True
        for _, graph in connected_udg_instances(n, side, range(seeds)):
            gamma = estimate_gamma_c(graph)
            assert gamma.exact
            result = greedy_connector_cds(graph).validate(graph)
            ratios.append(result.size / gamma.value)
            if result.size > float(greedy_bound_this_paper(gamma.value)):
                violations += 1
            checks = check_lemma9_trace(result, gamma.value)
            lemma9_total += len(checks)
            lemma9_ok += sum(1 for c in checks if c.holds)
            decomposition = prefix_decomposition(
                result.meta["q_history"], gamma.value
            )
            d1, d2, d3 = decomposition.checks()
            c1_ok = c1_ok and d1.holds
            c2_ok = c2_ok and d2.holds
            c3_ok = c3_ok and d3.holds
        all_ok = all_ok and violations == 0 and lemma9_ok == lemma9_total
        all_ok = all_ok and c1_ok and c2_ok and c3_ok
        s = summarize(ratios)
        ratio_table.add_row(
            n, seeds, f"{s.mean:.3f}", f"{s.maximum:.3f}", f"{115/18:.3f}", violations
        )
        proof_table.add_row(n, lemma9_total, lemma9_ok, c1_ok, c2_ok, c3_ok)
    return ExperimentResult(
        experiment_id="T10",
        title="Theorem 10 greedy-connector ratio",
        tables=[ratio_table, proof_table],
        passed=all_ok,
        notes=(
            "The proof-machinery table re-checks Lemma 9 and the C1/C2/C3 "
            "prefix caps on every greedy trajectory, not just the final size."
        ),
    )
