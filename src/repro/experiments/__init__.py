"""Experiment modules, one per paper artifact (see DESIGN.md's index)."""

from .harness import (
    ExperimentResult,
    Table,
    all_experiments,
    experiment,
    get_experiment,
    run_recorded,
)
from .parallel import (
    SweepCell,
    default_jobs,
    parallel_map,
    run_experiments_parallel,
    solve_cell,
    solve_cells,
    sweep_cells,
)

__all__ = [
    "ExperimentResult",
    "Table",
    "all_experiments",
    "experiment",
    "get_experiment",
    "run_recorded",
    "SweepCell",
    "default_jobs",
    "parallel_map",
    "run_experiments_parallel",
    "solve_cell",
    "solve_cells",
    "sweep_cells",
]
