"""Experiment modules, one per paper artifact (see DESIGN.md's index)."""

from .harness import (
    ExperimentResult,
    Table,
    all_experiments,
    experiment,
    get_experiment,
    run_recorded,
)

__all__ = [
    "ExperimentResult",
    "Table",
    "all_experiments",
    "experiment",
    "get_experiment",
    "run_recorded",
]
