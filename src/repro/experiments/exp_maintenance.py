"""Experiment MAINT — dynamic maintenance under churn (extension).

The paper's setting is ad hoc networks; this experiment quantifies what
the reproduction's maintenance layer delivers on sustained churn:

* the backbone stays a valid CDS after **every** event;
* local repair keeps the size within a small factor of a fresh
  rebuild (the ``slack`` column);
* the distributed join repair costs O(1) messages vs the full
  pipeline's O(n) (the last table).

Pass criterion: zero validity violations and bounded slack.
"""

from __future__ import annotations

import random

from ..cds.greedy_connector import greedy_connector_cds
from ..cds.maintenance import DynamicCDS
from ..distributed.cds_protocol import distributed_greedy_cds
from ..distributed.maintenance_protocol import distributed_join
from ..geometry.point import Point
from ..graphs.traversal import is_connected
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side, int_labeled

__all__ = ["run"]


def _churn(dynamic: DynamicCDS, rng: random.Random, events: int) -> tuple[int, bool]:
    """Apply churn events; return (applied, all_valid)."""
    applied = 0
    ok = True
    while applied < events:
        nodes = sorted(dynamic.graph.nodes())
        if rng.random() < 0.5 and len(nodes) > 8:
            try:
                dynamic.remove_node(rng.choice(nodes))
                applied += 1
            except ValueError:
                continue
        else:
            base = rng.choice(nodes)
            new = Point(base.x + rng.uniform(-0.8, 0.8), base.y + rng.uniform(-0.8, 0.8))
            if new in dynamic.graph:
                continue
            in_range = [v for v in nodes if v.distance_to(new) <= 1.0]
            if not in_range:
                continue
            dynamic.add_node(new, in_range)
            applied += 1
        ok = ok and dynamic.is_valid()
    return applied, ok


@experiment("MAINT", "Dynamic maintenance under churn (extension)")
def run(n: int = 30, events: int = 40, seeds: int = 4) -> ExperimentResult:
    churn_table = Table(
        title=f"churn bursts (n = {n} start, {events} events per seed)",
        headers=["seed", "events", "always valid", "repairs", "final size", "fresh size", "slack"],
    )
    all_ok = True
    for seed in range(seeds):
        _, graph = next(connected_udg_instances(n, default_side(n), range(seed, seed + 1)))
        dynamic = DynamicCDS(graph)
        rng = random.Random(seed)
        applied, valid = _churn(dynamic, rng, events)
        fresh = greedy_connector_cds(dynamic.graph).size
        slack = dynamic.size - fresh
        ok = valid and slack <= max(4, fresh)
        all_ok = all_ok and ok
        churn_table.add_row(
            seed, applied, valid, dynamic.repair_count, dynamic.size, fresh, slack
        )

    cost_table = Table(
        title="join repair: local protocol vs full rebuild (transmissions)",
        headers=["n", "local join repair", "full distributed pipeline"],
    )
    for size in (15, 30):
        _, graph_points = next(
            connected_udg_instances(size, default_side(size), range(7, 8))
        )
        g = int_labeled(graph_points)
        assert is_connected(g)
        backbone = frozenset(greedy_connector_cds(g).nodes)
        fringe = next(v for v in g.nodes() if v not in backbone)
        joiner = 10_000
        g.add_node(joiner)
        g.add_edge(joiner, fringe)
        _, join_metrics = distributed_join(g, joiner, backbone)
        _, pipeline_metrics = distributed_greedy_cds(g)
        cost_table.add_row(
            size + 1, join_metrics.transmissions, pipeline_metrics.transmissions
        )

    return ExperimentResult(
        experiment_id="MAINT",
        title="Dynamic maintenance",
        tables=[churn_table, cost_table],
        passed=all_ok,
        notes=(
            "Local repair is constant-cost and keeps the backbone valid "
            "through every event; the slack column is the price paid for "
            "not rebuilding, reclaimable at any time with rebuild()."
        ),
    )
