"""Experiment S5 — the Section V discussion of the Funke et al. claim.

[7] claimed ``|I| <= 3.453 n + 8.291`` via an area argument: each
independent point's Voronoi cell clipped to ``Ω`` (the union of
radius-1.5 disks around ``V``) allegedly has at least the area of a
regular hexagon of side ``1/sqrt(3)`` (``sqrt(3)/2 ≈ 0.866``).  The
paper regards the per-cell floor as *unproven*.

This experiment measures the actual clipped-cell areas on concrete
instances — the Figure 2 chains (where packings are densest) and
random connected sets — and reports:

* the minimum observed clipped Voronoi cell area vs the claimed floor;
* the resulting counting bound ``area(Ω) / min cell`` vs the proven
  ``11n/3 + 1`` and the achieved packing.

Pass criterion: measurements are consistent (achieved <= every proven
bound); the hexagon floor itself is *reported*, not asserted — it is
exactly the open question.
"""

from __future__ import annotations

from ..geometry.constructions import figure2_linear
from ..geometry.disks import disk_union_area
from ..geometry.voronoi import hexagon_area, voronoi_cell_areas
from ..cds.bounds import neighborhood_bound
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


@experiment("S5", "Section V: area-argument measurements (Funke et al. claim)")
def run(
    chain_sizes: tuple[int, ...] = (3, 5, 8), resolution: int = 260
) -> ExperimentResult:
    table = Table(
        title="Voronoi-cell areas on Figure 2 chains (Omega = 1.5-disks)",
        headers=[
            "n",
            "packing 3(n+1)",
            "area(Omega)",
            "min cell area",
            "hexagon floor",
            "floor holds?",
            "area bound",
            "proven 11n/3+1",
        ],
    )
    floor = hexagon_area()
    all_ok = True
    for n in chain_sizes:
        centers, witness = figure2_linear(n)
        omega_area = disk_union_area(centers, radius=1.5, resolution=resolution)
        areas = voronoi_cell_areas(witness, centers, 1.5, resolution=resolution)
        min_area = min(areas)
        area_bound = omega_area / min_area
        proven = float(neighborhood_bound(n))
        achieved = len(witness)
        # Consistency: the achieved packing respects the proven bound,
        # and the area *accounting* is self-consistent (cells tile Omega).
        ok = achieved <= proven + 1e-9 and abs(sum(areas) - omega_area) < 0.05 * omega_area
        all_ok = all_ok and ok
        table.add_row(
            n,
            achieved,
            f"{omega_area:.2f}",
            f"{min_area:.3f}",
            f"{floor:.3f}",
            min_area >= floor,
            f"{area_bound:.1f}",
            f"{proven:.1f}",
        )
    return ExperimentResult(
        experiment_id="S5",
        title="Funke et al. area argument, measured",
        tables=[table],
        passed=all_ok,
        notes=(
            "The 'floor holds?' column is the open question from Section V: "
            "the paper neither proves nor refutes the hexagon floor, so this "
            "experiment reports it without asserting it.  The pass criterion "
            "is only internal consistency with the proven Theorem 6 bound."
        ),
    )
