"""Experiment CMP — the implicit comparison of Sections III-IV.

The paper's motivation for the new algorithm is a smaller CDS with the
same phase 1.  This experiment runs both of the paper's algorithms,
the Steiner-connector variant, and every related-work baseline across
three deployment families (uniform, clustered, corridor), reporting
mean CDS sizes and — where exact optima are affordable — mean ratios.

Pass criterion (the paper's claimed shape): on average the
greedy-connector algorithm is never worse than WAF, and both stay
within their proven ratio bounds on every exactly-solved instance.
"""

from __future__ import annotations

from ..graphs.generators import clustered_points, corridor_points, uniform_points
from ..graphs.generators import largest_component_udg
from ..graphs.traversal import is_connected
from ..graphs.udg import unit_disk_graph
from ..cds.waf import waf_cds
from ..cds.greedy_connector import greedy_connector_cds
from ..cds.steiner import steiner_cds
from ..cds.bounds import greedy_bound_this_paper, waf_bound_this_paper
from ..baselines import ALL_BASELINES
from ..analysis.ratios import estimate_gamma_c
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import default_side

__all__ = ["run", "FAMILIES"]


def _uniform(n: int, seed: int):
    return uniform_points(n, side=default_side(n), seed=seed)


def _clustered(n: int, seed: int):
    return clustered_points(n, side=default_side(n) * 1.2, clusters=4, seed=seed)


def _corridor(n: int, seed: int):
    return corridor_points(n, length=n * 0.45, width=1.2, seed=seed)


#: label -> point factory for the three deployment families.
FAMILIES = {
    "uniform": _uniform,
    "clustered": _clustered,
    "corridor": _corridor,
}

OUR_ALGORITHMS = {
    "waf": waf_cds,
    "greedy-connector": greedy_connector_cds,
    "steiner": steiner_cds,
}


@experiment("CMP", "Algorithm comparison across deployment families")
def run(n: int = 28, seeds: int = 6, exact_limit: int = 30) -> ExperimentResult:
    algorithms = dict(OUR_ALGORITHMS)
    algorithms.update(ALL_BASELINES)
    size_table = Table(
        title=f"mean CDS size (n = {n} nodes, {seeds} seeds per family)",
        headers=["family"] + list(algorithms) + ["gamma_c"],
    )
    all_ok = True
    greedy_never_worse = True
    for family, factory in FAMILIES.items():
        sizes: dict[str, list[int]] = {name: [] for name in algorithms}
        gammas: list[float] = []
        for seed in range(seeds):
            pts = factory(n, seed)
            graph = unit_disk_graph(pts)
            if not is_connected(graph):
                _, graph = largest_component_udg(pts)
            if len(graph) < 4:
                continue
            gamma = estimate_gamma_c(graph, exact_node_limit=exact_limit)
            gammas.append(gamma.value)
            for name, algorithm in algorithms.items():
                result = algorithm(graph)
                if not result.is_valid(graph):
                    raise AssertionError(f"{name} invalid on {family} seed {seed}")
                sizes[name].append(result.size)
                if gamma.exact:
                    if name == "waf" and result.size > float(
                        waf_bound_this_paper(gamma.value)
                    ):
                        all_ok = False
                    if name == "greedy-connector" and result.size > float(
                        greedy_bound_this_paper(gamma.value)
                    ):
                        all_ok = False
        mean_waf = summarize(sizes["waf"]).mean
        mean_greedy = summarize(sizes["greedy-connector"]).mean
        if mean_greedy > mean_waf + 1e-9:
            greedy_never_worse = False
        size_table.add_row(
            family,
            *(f"{summarize(sizes[name]).mean:.1f}" for name in algorithms),
            f"{summarize(gammas).mean:.1f}",
        )
    all_ok = all_ok and greedy_never_worse
    return ExperimentResult(
        experiment_id="CMP",
        title="Algorithm comparison",
        tables=[size_table],
        passed=all_ok,
        notes=(
            "Expected shape: greedy-connector <= waf on average (the "
            "paper's motivation); guha-khuller (centralized, no "
            "distributed analogue) tracks the optimum closely; alzoubi "
            "trades size for message-optimality and is largest."
        ),
    )
