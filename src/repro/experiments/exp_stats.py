"""Experiment STATS — situating the instance families.

Context table for every other experiment: the structural statistics
(degree profile, diameter, clustering) of the three deployment
families at the comparison size, plus the chain worst case.  Not a
paper claim per se — it documents *what kind of graphs* the measured
numbers come from, which any reviewer of the empirical tables asks
first.

Pass criterion: the families are structurally distinct in the expected
directions — the chain has the extreme diameter and the minimum mean
degree, and the corridor's diameter exceeds the uniform square's.
"""

from __future__ import annotations

from ..graphs.generators import chain_points, largest_component_udg
from ..graphs.metrics import topology_stats
from ..graphs.udg import unit_disk_graph
from .exp_compare import FAMILIES
from .harness import ExperimentResult, Table, experiment

__all__ = ["run"]


@experiment("STATS", "Structural statistics of the instance families")
def run(n: int = 28, seed: int = 0) -> ExperimentResult:
    table = Table(
        title=f"topology statistics (n = {n}, seed {seed})",
        headers=["family", "nodes", "edges", "mean deg", "max deg", "diameter", "clustering"],
    )
    stats = {}
    for family, factory in FAMILIES.items():
        # Retry seeds until the giant component keeps most of the
        # deployment, so families are compared at comparable sizes.
        for attempt in range(seed, seed + 50):
            pts = factory(n, attempt)
            _, graph = largest_component_udg(pts)
            if len(graph) >= 0.7 * n:
                break
        s = topology_stats(graph)
        stats[family] = s
        table.add_row(family, *s.row())
    chain_graph = unit_disk_graph(chain_points(n, 1.0))
    chain_stats = topology_stats(chain_graph)
    stats["chain (Fig 2)"] = chain_stats
    table.add_row("chain (Fig 2)", *chain_stats.row())

    ok = (
        chain_stats.diameter
        >= max(s.diameter for f, s in stats.items() if f != "chain (Fig 2)")
        and chain_stats.mean_degree
        <= min(s.mean_degree for f, s in stats.items() if f != "chain (Fig 2)")
        and stats["corridor"].diameter >= stats["uniform"].diameter
    )
    return ExperimentResult(
        experiment_id="STATS",
        title="Instance family statistics",
        tables=[table],
        passed=ok,
        notes=(
            "Corridors stretch the diameter (more connectors per "
            "dominator), clusters concentrate coverage (cheap "
            "domination), and the unit chain is the diameter and "
            "sparsity extreme — exactly why it is the worst-case family."
        ),
    )
