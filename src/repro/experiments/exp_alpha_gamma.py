"""Experiment C7 — Corollary 7: ``alpha(G) <= 3 2/3 gamma_c(G) + 1``.

Samples connected random UDGs small enough for *exact* ``alpha`` and
``gamma_c``, and reports the observed ``(alpha - 1) / gamma_c`` slopes
against the three bounds in the paper's storyline: the ``4`` of [10],
the ``3.8`` of [12], and this paper's ``11/3``.

Pass criterion: Corollary 7 never violated.
"""

from __future__ import annotations

from ..mis.exact import independence_number
from ..cds.exact import connected_domination_number
from ..cds.bounds import (
    alpha_bound_this_paper,
    alpha_bound_wan2004,
    alpha_bound_wu2006,
)
from ..analysis.bounds_check import check_corollary7
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side

__all__ = ["run"]


@experiment("C7", "Corollary 7: alpha <= 3 2/3 gamma_c + 1")
def run(
    sizes: tuple[int, ...] = (10, 15, 20, 25),
    seeds: int = 6,
) -> ExperimentResult:
    table = Table(
        title="exact alpha vs exact gamma_c on connected random UDGs",
        headers=[
            "n",
            "instances",
            "alpha (mean)",
            "gamma_c (mean)",
            "max slope (a-1)/gc",
            "paper slope 11/3",
            "violations",
        ],
    )
    bound_table = Table(
        title="bound lineage at gamma_c = 5",
        headers=["source", "bound formula", "value at gamma_c=5"],
    )
    bound_table.add_row("Wan et al. 2004 [10]", "4 gc + 1", alpha_bound_wan2004(5))
    bound_table.add_row("Wu et al. 2006 [12]", "3.8 gc + 1.2", alpha_bound_wu2006(5))
    bound_table.add_row(
        "this paper (Cor 7)", "11/3 gc + 1", float(alpha_bound_this_paper(5))
    )

    all_ok = True
    for n in sizes:
        side = default_side(n)
        alphas: list[int] = []
        gammas: list[int] = []
        max_slope = 0.0
        violations = 0
        for _, graph in connected_udg_instances(n, side, range(seeds)):
            alpha = independence_number(graph)
            gamma_c = connected_domination_number(graph)
            alphas.append(alpha)
            gammas.append(gamma_c)
            max_slope = max(max_slope, (alpha - 1) / gamma_c)
            if not check_corollary7(alpha, gamma_c).holds:
                violations += 1
        all_ok = all_ok and violations == 0
        table.add_row(
            n,
            seeds,
            f"{summarize(alphas).mean:.2f}",
            f"{summarize(gammas).mean:.2f}",
            f"{max_slope:.3f}",
            f"{11 / 3:.3f}",
            violations,
        )
    return ExperimentResult(
        experiment_id="C7",
        title="Corollary 7 verification",
        tables=[table, bound_table],
        passed=all_ok,
        notes=(
            "Average-case slopes sit well below 11/3 (random UDGs are far "
            "from the chain worst case); the point is zero violations."
        ),
    )
