"""Experiment BCAST — the application payoff: broadcast over the backbone.

The paper's introduction motivates small CDSs by broadcast efficiency.
This experiment quantifies the full story on one deployment family:

* transmissions: blind flooding (every node once) vs backbone relaying
  (only CDS nodes), both executed on the radio simulator;
* collision-free operation: TDMA slots needed by the backbone
  (distance-2 coloring) and the resulting pipelined latency;
* load: forwarding concentration on the backbone for unicast flows.

Pass criterion: backbone broadcast reaches everyone with at most
``|CDS| + 1`` transmissions (vs n for flooding), the TDMA schedule
validates, and the traffic run delivers every packet.
"""

from __future__ import annotations

import random

from ..cds.greedy_connector import greedy_connector_cds
from ..distributed.traffic import run_traffic
from ..scheduling import (
    broadcast_schedule_length,
    distance2_coloring,
    is_collision_free,
)
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side, int_labeled

__all__ = ["run"]


@experiment("BCAST", "Broadcast and traffic over the backbone")
def run(sizes: tuple[int, ...] = (20, 40, 60), seed: int = 1) -> ExperimentResult:
    table = Table(
        title="broadcast cost and TDMA operation (one seed per size)",
        headers=[
            "n",
            "|CDS|",
            "flood tx (=n)",
            "backbone tx",
            "TDMA slots",
            "pipelined latency",
            "flows delivered",
        ],
    )
    all_ok = True
    for n in sizes:
        _, graph_points = next(
            connected_udg_instances(n, default_side(n), range(seed, seed + 1))
        )
        g = int_labeled(graph_points)
        backbone = greedy_connector_cds(g).validate(g)
        source = min(g.nodes())

        # Transmissions: flooding = n (every node relays once); backbone
        # relaying = |CDS ∪ {source}| (each backbone node once + source).
        flood_tx = len(g)
        backbone_tx = len(set(backbone.nodes) | {source})

        slots = distance2_coloring(g, set(backbone.nodes) | {source})
        schedule_ok = is_collision_free(g, slots)
        latency = broadcast_schedule_length(g, backbone.nodes, source, slots=slots)

        rng = random.Random(seed)
        nodes = sorted(g.nodes())
        flows = [tuple(rng.sample(nodes, 2)) for _ in range(10)]
        traffic = run_traffic(g, backbone.nodes, flows)

        ok = (
            schedule_ok
            and backbone_tx <= backbone.size + 1
            and backbone_tx < flood_tx
            and traffic.all_delivered
        )
        all_ok = all_ok and ok
        table.add_row(
            n,
            backbone.size,
            flood_tx,
            backbone_tx,
            max(slots.values()) + 1,
            latency,
            f"{traffic.delivered}/{traffic.total}",
        )
    return ExperimentResult(
        experiment_id="BCAST",
        title="Broadcast over the backbone",
        tables=[table],
        passed=all_ok,
        notes=(
            "The CDS saves (n - |CDS| - 1) transmissions per broadcast "
            "and admits a small TDMA frame; store-and-forward unicast "
            "over the same backbone delivers every packet — the "
            "application payoff the paper's introduction promises."
        ),
    )
