"""Experiment T8 — Theorem 8: the WAF algorithm stays below 7 1/3 gamma_c.

Runs WAF over connected random UDGs with exact optima and reports the
realized ratio distribution against the bound lineage
(8 gc − 1 → 7.6 gc + 1.4 → 7 1/3 gc), plus the Section V conjectured 6.

Pass criterion: ``|CDS| <= 7 1/3 gamma_c`` on every instance (with
exact ``gamma_c``).
"""

from __future__ import annotations

from ..cds.waf import waf_cds
from ..cds.bounds import (
    waf_bound_conjectured,
    waf_bound_this_paper,
    waf_bound_wan2004,
    waf_bound_wu2006,
)
from ..analysis.ratios import estimate_gamma_c
from ..analysis.statistics import summarize
from .harness import ExperimentResult, Table, experiment
from .instances import connected_udg_instances, default_side

__all__ = ["run"]


@experiment("T8", "Theorem 8: WAF ratio <= 7 1/3")
def run(
    sizes: tuple[int, ...] = (12, 16, 20, 25),
    side_per_size: dict[int, float] | None = None,
    seeds: int = 8,
) -> ExperimentResult:
    table = Table(
        title="WAF realized ratios (exact gamma_c)",
        headers=["n", "instances", "ratio mean", "ratio max", "bound 7 1/3", "violations"],
    )
    lineage = Table(
        title="WAF bound lineage at gamma_c = 6",
        headers=["source", "bound", "value"],
    )
    lineage.add_row("Wan et al. 2004 [10]", "8 gc - 1", waf_bound_wan2004(6))
    lineage.add_row("Wu et al. 2006 [12]", "7.6 gc + 1.4", waf_bound_wu2006(6))
    lineage.add_row("this paper (Thm 8)", "7 1/3 gc", float(waf_bound_this_paper(6)))
    lineage.add_row("Section V conjecture", "6 gc", waf_bound_conjectured(6))

    all_ok = True
    for n in sizes:
        side = (side_per_size or {}).get(n, default_side(n))
        ratios: list[float] = []
        violations = 0
        for _, graph in connected_udg_instances(n, side, range(seeds)):
            gamma = estimate_gamma_c(graph)
            assert gamma.exact
            result = waf_cds(graph).validate(graph)
            ratio = result.size / gamma.value
            ratios.append(ratio)
            if result.size > float(waf_bound_this_paper(gamma.value)):
                violations += 1
        all_ok = all_ok and violations == 0
        s = summarize(ratios)
        table.add_row(n, seeds, f"{s.mean:.3f}", f"{s.maximum:.3f}", f"{22/3:.3f}", violations)
    return ExperimentResult(
        experiment_id="T8",
        title="Theorem 8 WAF ratio",
        tables=[table, lineage],
        passed=all_ok,
        notes=(
            "Realized ratios on random UDGs cluster around 1.2-1.7, far "
            "below the worst-case 7 1/3 — as expected; the theorem is a "
            "worst-case guarantee and the check is zero violations."
        ),
    )
