"""Energy accounting and backbone rotation.

Why a CDS should be *small*, quantified: backbone nodes relay traffic
and burn energy faster.  This module tracks per-node batteries, charges
relay duty to the backbone, and supports *rotation* — periodically
rebuilding the backbone with node weights set to inverse residual
energy, so the relay burden moves around and the network lives longer.

The rotation experiment compares three policies on identical traffic:

* ``static``   — build once, never change;
* ``rotate``   — rebuild every epoch with energy-aware weights;
* ``minimal``  — rebuild every epoch minimizing *size* only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, TypeVar

from .graphs.graph import Graph
from .cds.base import CDSResult
from .cds.greedy_connector import greedy_connector_cds
from .cds.weighted import weighted_greedy_cds

N = TypeVar("N", bound=Hashable)

__all__ = ["EnergyModel", "RotationPolicy", "simulate_epochs"]


class EnergyModel:
    """Per-node batteries with relay-duty charging.

    Args:
        graph: the topology (node set defines the batteries).
        initial: starting charge per node (uniform float, or a mapping).
        relay_cost: energy one backbone node spends per epoch of duty.
        idle_cost: energy every node spends per epoch regardless.
    """

    def __init__(
        self,
        graph: Graph[N],
        initial: float | Mapping[N, float] = 100.0,
        relay_cost: float = 5.0,
        idle_cost: float = 1.0,
    ):
        if relay_cost < 0 or idle_cost < 0:
            raise ValueError("costs must be non-negative")
        self._graph = graph
        if isinstance(initial, Mapping):
            self.charge: dict[N, float] = {v: float(initial[v]) for v in graph.nodes()}
        else:
            self.charge = {v: float(initial) for v in graph.nodes()}
        if any(c <= 0 for c in self.charge.values()):
            raise ValueError("initial charges must be positive")
        self.relay_cost = relay_cost
        self.idle_cost = idle_cost
        self.epochs = 0

    def spend_epoch(self, backbone: Iterable[N]) -> None:
        """Charge one epoch of duty: idle cost to all, relay cost to
        backbone members."""
        duty = set(backbone)
        for v in self.charge:
            self.charge[v] -= self.idle_cost
            if v in duty:
                self.charge[v] -= self.relay_cost
        self.epochs += 1

    def alive(self) -> list[N]:
        """Nodes with positive residual charge."""
        return [v for v in self._graph.nodes() if self.charge[v] > 0.0]

    def all_alive(self) -> bool:
        return all(c > 0.0 for c in self.charge.values())

    def min_charge(self) -> float:
        return min(self.charge.values())

    def weights(self, floor: float = 1e-6) -> dict[N, float]:
        """Energy-aware node weights: inverse residual charge.

        Depleted nodes get a huge weight so rotation avoids them while
        they still technically function.
        """
        return {
            v: 1.0 / max(c, floor) for v, c in self.charge.items()
        }


#: A policy maps (graph, energy) to the epoch's backbone.
RotationPolicy = Callable[[Graph, EnergyModel], CDSResult]


def _static_policy() -> RotationPolicy:
    cache: dict[int, CDSResult] = {}

    def policy(graph: Graph, energy: EnergyModel) -> CDSResult:
        key = id(graph)
        if key not in cache:
            cache[key] = greedy_connector_cds(graph)
        return cache[key]

    return policy


def _rotate_policy(graph: Graph, energy: EnergyModel) -> CDSResult:
    return weighted_greedy_cds(graph, energy.weights())


def _minimal_policy(graph: Graph, energy: EnergyModel) -> CDSResult:
    return greedy_connector_cds(graph)


@dataclass
class EpochReport:
    """Outcome of a rotation simulation."""

    policy: str
    epochs_survived: int
    final_min_charge: float
    distinct_backbone_nodes: int
    backbone_sizes: list[int] = field(repr=False, default_factory=list)


def simulate_epochs(
    graph: Graph[N],
    policy: str = "rotate",
    epochs: int = 50,
    initial: float = 100.0,
    relay_cost: float = 5.0,
    idle_cost: float = 1.0,
) -> EpochReport:
    """Run one policy until a node dies or the epoch budget ends.

    Args:
        graph: connected topology (static; churn is the other example).
        policy: ``"static"``, ``"rotate"``, or ``"minimal"``.

    Returns:
        An :class:`EpochReport`; ``epochs_survived`` is the number of
        full epochs completed with every node still alive — the
        *network lifetime* metric the rotation policy maximizes.
    """
    policies: dict[str, RotationPolicy] = {
        "static": _static_policy(),
        "rotate": _rotate_policy,
        "minimal": _minimal_policy,
    }
    if policy not in policies:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(policies)}")
    chooser = policies[policy]
    energy = EnergyModel(graph, initial, relay_cost, idle_cost)
    seen: set[N] = set()
    sizes: list[int] = []
    survived = 0
    for _ in range(epochs):
        backbone = chooser(graph, energy)
        if not backbone.is_valid(graph):
            raise AssertionError(f"{policy} produced an invalid backbone")
        seen.update(backbone.nodes)
        sizes.append(backbone.size)
        energy.spend_epoch(backbone.nodes)
        if not energy.all_alive():
            break
        survived += 1
    return EpochReport(
        policy=policy,
        epochs_survived=survived,
        final_min_charge=energy.min_charge(),
        distinct_backbone_nodes=len(seen),
        backbone_sizes=sizes,
    )
