"""Collision-free broadcast scheduling over a CDS backbone.

A backbone is only useful if its relays can actually transmit without
colliding: in the radio model two transmissions collide at a common
receiver.  The standard fix is TDMA — assign backbone nodes time slots
such that nodes within two hops (who share a potential receiver) never
share a slot, i.e. a *distance-2 coloring* of the backbone inside the
full topology.

This module provides:

* :func:`distance2_coloring` — greedy distance-2 slot assignment with
  the classic ``Δ₂ + 1`` size guarantee (``Δ₂`` = max two-hop degree);
* :func:`is_collision_free` — the validator (no two same-slot backbone
  nodes share a neighbor or are adjacent);
* :func:`broadcast_schedule_length` — pipelined broadcast latency over
  a scheduled backbone: BFS depth over the backbone tree, each hop
  waiting for its slot in the frame.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, TypeVar

from .graphs.graph import Graph

N = TypeVar("N", bound=Hashable)

__all__ = [
    "distance2_coloring",
    "is_collision_free",
    "two_hop_degree",
    "broadcast_schedule_length",
]


def two_hop_degree(graph: Graph[N], node: N, within: set[N] | None = None) -> int:
    """Number of distinct nodes within two hops (optionally restricted
    to ``within``), excluding the node itself."""
    reach: set[N] = set()
    for u in graph.neighbors(node):
        reach.add(u)
        reach.update(graph.neighbors(u))
    reach.discard(node)
    if within is not None:
        reach &= within
    return len(reach)


def distance2_coloring(
    graph: Graph[N], backbone: Iterable[N]
) -> dict[N, int]:
    """Greedy distance-2 coloring of ``backbone`` within ``graph``.

    Two backbone nodes get different slots whenever they are adjacent
    or share a common neighbor *in the full graph* (hidden-terminal
    rule).  Nodes are colored in decreasing two-hop-degree order with
    the smallest feasible slot, so at most ``Δ₂ + 1`` slots are used.

    Returns:
        slot per backbone node (slots start at 0).

    Raises:
        KeyError: if a backbone node is not in the graph.
    """
    members = list(dict.fromkeys(backbone))
    member_set = set(members)
    for v in members:
        if v not in graph:
            raise KeyError(f"backbone node {v!r} not in graph")

    def conflicts(v: N) -> set[N]:
        out: set[N] = set()
        for u in graph.neighbors(v):
            if u in member_set:
                out.add(u)
            for w in graph.neighbors(u):
                if w in member_set and w != v:
                    out.add(w)
        return out

    order = sorted(
        members,
        key=lambda v: (-two_hop_degree(graph, v, member_set), _key(v)),
    )
    slots: dict[N, int] = {}
    for v in order:
        taken = {slots[u] for u in conflicts(v) if u in slots}
        slot = 0
        while slot in taken:
            slot += 1
        slots[v] = slot
    return slots


def is_collision_free(graph: Graph[N], slots: Mapping[N, int]) -> bool:
    """Whether no two same-slot nodes are within two hops of each other."""
    members = list(slots)
    member_set = set(members)
    for v in members:
        # Same-slot conflicts among neighbors and two-hop neighbors.
        seen: set[N] = set()
        for u in graph.neighbors(v):
            if u in member_set and u != v:
                seen.add(u)
            for w in graph.neighbors(u):
                if w in member_set and w != v:
                    seen.add(w)
        for other in seen:
            if slots[other] == slots[v]:
                return False
    return True


def broadcast_schedule_length(
    graph: Graph[N], backbone: Iterable[N], source: N, slots: Mapping[N, int] | None = None
) -> int:
    """Pipelined broadcast latency in slots over a scheduled backbone.

    The source transmits in its slot of frame 0; each backbone node
    relays in its own slot of the first frame after it receives.  The
    returned value is the slot index by which every node (backbone or
    not) has heard the message.

    Args:
        graph: the full topology.
        backbone: a CDS containing ``source`` or adjacent to it.
        source: the originating node.
        slots: precomputed schedule (default: :func:`distance2_coloring`).

    Raises:
        ValueError: if the broadcast cannot reach everyone (backbone
            not a CDS, or source detached).
    """
    members = set(backbone)
    if slots is None:
        slots = distance2_coloring(graph, members | {source})
    else:
        slots = dict(slots)
        slots.setdefault(source, max(slots.values(), default=-1) + 1)
    frame = max(slots.values()) + 1

    # Dijkstra over receive times: a relay's transmit time is the first
    # occurrence of its own slot strictly after it received.
    import heapq

    receive: dict[N, int] = {}
    heap: list[tuple[int, int, N]] = [(-1, 0, source)]
    tie = 0
    while heap:
        at, _, v = heapq.heappop(heap)
        if v in receive:
            continue
        receive[v] = at
        if v != source and v not in members:
            continue  # only backbone nodes relay
        own = slots[v]
        base = (at // frame) * frame + own
        t = base if base > at else base + frame
        for u in graph.neighbors(v):
            if u not in receive:
                tie += 1
                heapq.heappush(heap, (t, tie, u))
    unreached = set(graph.nodes()) - set(receive)
    if unreached:
        raise ValueError(f"{len(unreached)} nodes unreachable; backbone not a CDS?")
    return max(receive.values())


def _key(node):
    try:
        return (0, node)
    except TypeError:  # pragma: no cover - defensive
        return (1, repr(node))
