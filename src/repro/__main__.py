"""``python -m repro`` delegates to the CLI.

The ``__main__`` guard is load-bearing: spawn/forkserver
``multiprocessing`` workers (the solve daemon's pool) re-import the
main module during bootstrap, and an unguarded entry point would run
the whole CLI inside every worker.
"""

if __name__ == "__main__":
    from .cli import main

    raise SystemExit(main())
