"""``python -m repro`` delegates to the CLI."""

from .cli import main

raise SystemExit(main())
