"""Terminal rendering of deployments and backbones.

No plotting stack is assumed: deployments are rasterized onto a
character grid, with roles distinguished by glyph —

* ``D`` — dominator (phase-1 MIS node),
* ``C`` — connector (phase-2 node),
* ``o`` — ordinary node,
* ``*`` — several nodes sharing one cell (the densest role wins).

Used by the examples; also handy in a REPL::

    >>> from repro.viz import render_deployment
    >>> print(render_deployment(points, result))       # doctest: +SKIP
"""

from __future__ import annotations

from typing import Sequence

from .geometry.point import Point
from .cds.base import CDSResult

__all__ = ["render_deployment", "render_backbone_legend"]

_ROLE_RANK = {"o": 0, "C": 1, "D": 2}


def render_deployment(
    points: Sequence[Point],
    result: CDSResult | None = None,
    width: int = 60,
    border: bool = True,
) -> str:
    """Render a deployment as fixed-width text.

    Args:
        points: node positions.
        result: optional CDS whose dominators/connectors get glyphs;
            when the result has no phase split, all members render ``C``.
        width: character columns for the field (rows keep aspect ratio;
            terminal cells are ~2x taller than wide, which the row
            scaling compensates).
        border: frame the field.

    Returns:
        The multi-line string (no trailing newline).
    """
    if not points:
        return "(empty deployment)"
    if width < 4:
        raise ValueError("width must be at least 4")
    dominators = set(result.dominators) if result is not None else set()
    connectors = set(result.connectors) if result is not None else set()
    members = set(result.nodes) if result is not None else set()

    min_x = min(p.x for p in points)
    max_x = max(p.x for p in points)
    min_y = min(p.y for p in points)
    max_y = max(p.y for p in points)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    height = max(2, round(width * span_y / span_x / 2.0))

    grid = [[" "] * width for _ in range(height)]

    def cell(p: Point) -> tuple[int, int]:
        col = round((p.x - min_x) / span_x * (width - 1))
        row = round((max_y - p.y) / span_y * (height - 1))
        return row, col

    occupancy: dict[tuple[int, int], int] = {}
    for p in points:
        if p in dominators:
            glyph = "D"
        elif p in connectors or (p in members and not dominators):
            glyph = "C"
        else:
            glyph = "o"
        row, col = cell(p)
        occupancy[(row, col)] = occupancy.get((row, col), 0) + 1
        current = grid[row][col]
        if current == " " or _ROLE_RANK.get(glyph, 0) >= _ROLE_RANK.get(current, -1):
            grid[row][col] = glyph
    for (row, col), count in occupancy.items():
        if count > 1 and grid[row][col] == "o":
            grid[row][col] = "*"

    lines = ["".join(r) for r in grid]
    if border:
        top = "+" + "-" * width + "+"
        lines = [top] + [f"|{line}|" for line in lines] + [top]
    return "\n".join(lines)


def render_backbone_legend() -> str:
    """The glyph legend used by :func:`render_deployment`."""
    return "D dominator   C connector   o node   * crowded cell"
