"""Reproduction of Wan, Wang & Yao, "Two-Phased Approximation Algorithms
for Minimum CDS in Wireless Ad Hoc Networks" (ICDCS 2008).

Public API tour:

* :mod:`repro.geometry` — points, disks, packings, stars, the Figure 1/2
  tightness constructions.
* :mod:`repro.graphs` — unit-disk graphs, generators, validators.
* :mod:`repro.mis` — phase-1 MIS algorithms and exact ``alpha(G)``.
* :mod:`repro.cds` — the paper's two algorithms (``waf_cds``,
  ``greedy_connector_cds``), every stated bound, exact ``gamma_c``.
* :mod:`repro.baselines` — the related-work CDS algorithms.
* :mod:`repro.distributed` — the message-passing protocol renditions.
* :mod:`repro.analysis` — theorem checkers and ratio measurement.
* :mod:`repro.experiments` — one runnable experiment per paper artifact.

Quick start::

    from repro.graphs import random_connected_udg
    from repro.cds import waf_cds, greedy_connector_cds

    points, graph = random_connected_udg(n=60, side=6.0, seed=1)
    print(waf_cds(graph).size, greedy_connector_cds(graph).size)
"""

from .cds import (
    CDSResult,
    connected_domination_number,
    greedy_connector_cds,
    minimum_cds,
    waf_cds,
)
from .graphs import Graph, random_connected_udg, unit_disk_graph
from .mis import first_fit_mis, independence_number

__version__ = "1.0.0"

__all__ = [
    "CDSResult",
    "Graph",
    "connected_domination_number",
    "first_fit_mis",
    "greedy_connector_cds",
    "independence_number",
    "minimum_cds",
    "random_connected_udg",
    "unit_disk_graph",
    "waf_cds",
    "__version__",
]
